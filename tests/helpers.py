"""Shared test helpers (importable, unlike ``conftest``).

Living in a module with a unique name avoids the classic pytest pitfall
where ``tests/conftest.py`` and ``benchmarks/conftest.py`` both shadow the
module name ``conftest`` and whichever directory pytest touches first wins.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.serializability import (
    SerializabilityScheme,
    TransactionPayload,
    Version,
)


def payload(
    reads: Iterable[Tuple[str, Version]] = (),
    writes: Iterable[Tuple[str, object]] = (),
    commit_version: Optional[Version] = None,
    tiebreak: str = "t",
) -> TransactionPayload:
    """Shorthand for building well-formed payloads in tests."""
    return TransactionPayload.make(
        reads=reads, writes=writes, commit_version=commit_version, tiebreak=tiebreak
    )


def rw_payload(key: str, version: int = 0, value: object = 1, tiebreak: str = "t") -> TransactionPayload:
    """A payload that reads ``key`` at ``version`` and writes it."""
    return payload(
        reads=[(key, (version, ""))], writes=[(key, value)], tiebreak=tiebreak
    )


def read_payload(key: str, version: int = 0) -> TransactionPayload:
    return payload(reads=[(key, (version, ""))])


def shard_key(scheme: SerializabilityScheme, shard: str, hint: str = "key") -> str:
    """Find a key that the scheme maps to the given shard."""
    return scheme.sharding.key_for_shard(shard, hint=hint)
