"""Integration tests for the failure-free path of both TCS protocols."""

import pytest

from repro.cluster import Cluster
from repro.core.types import Decision, Phase, Status

from helpers import payload, read_payload, rw_payload, shard_key


PROTOCOLS = ["message-passing", "rdma"]


@pytest.fixture(params=PROTOCOLS)
def cluster(request):
    return Cluster(num_shards=2, replicas_per_shard=2, protocol=request.param, seed=11)


def test_single_shard_transaction_commits(cluster):
    assert cluster.certify(rw_payload("x", tiebreak="a")) is Decision.COMMIT


def test_multi_shard_transaction_commits(cluster):
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    multi = payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 2)],
        tiebreak="m",
    )
    assert cluster.certify(multi) is Decision.COMMIT


def test_conflicting_transaction_aborts(cluster):
    first = rw_payload("x", version=0, tiebreak="a")
    stale = rw_payload("x", version=0, tiebreak="b")
    assert cluster.certify(first) is Decision.COMMIT
    assert cluster.certify(stale) is Decision.ABORT


def test_version_chain_commits(cluster):
    first = rw_payload("x", version=0, tiebreak="a")
    assert cluster.certify(first) is Decision.COMMIT
    second = payload(reads=[("x", first.commit_version)], writes=[("x", 2)], tiebreak="b")
    assert cluster.certify(second) is Decision.COMMIT


def test_read_only_transaction_on_fresh_version_commits(cluster):
    first = rw_payload("x", version=0, tiebreak="a")
    cluster.certify(first)
    assert cluster.certify(payload(reads=[("x", first.commit_version)])) is Decision.COMMIT


def test_multi_shard_abort_if_any_shard_votes_abort(cluster):
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    first = rw_payload(key0, version=0, tiebreak="a")
    assert cluster.certify(first) is Decision.COMMIT
    # Conflicts on shard-0 only, but the global decision must be abort.
    multi = payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 9), (key1, 9)],
        tiebreak="b",
    )
    assert cluster.certify(multi) is Decision.ABORT


def test_history_is_correct_and_invariants_hold(cluster):
    payloads = [rw_payload(f"k{i}", tiebreak=str(i)) for i in range(6)]
    payloads.append(rw_payload("k0", version=0, tiebreak="stale"))
    cluster.certify_many(payloads)
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []


def test_decision_latency_matches_paper_claims(cluster):
    """5 message delays to the client, 4 with a co-located client (Section 3)."""
    cluster.certify(rw_payload("x", tiebreak="a"))
    assert cluster.protocol_latencies() == [5.0]
    assert cluster.colocated_latencies() == [4.0]
    assert cluster.client_latencies() == [6.0]  # + the submission hop


def test_leader_and_followers_record_the_transaction(cluster):
    p = rw_payload("x", tiebreak="a")
    shard = cluster.scheme.sharding.shard_of("x")
    txn = cluster.submit(p)
    cluster.run_until_decided([txn])
    cluster.run()
    members = [cluster.replica(pid) for pid in cluster.members_of(shard)]
    for replica in members:
        assert txn in replica.certification_order()
        slot = replica.slot_of[txn]
        assert replica.phase_arr[slot] is Phase.DECIDED
        assert replica.dec_arr[slot] is Decision.COMMIT
        assert replica.vote_arr[slot] is Decision.COMMIT


def test_uninvolved_shard_does_not_see_the_transaction(cluster):
    key0 = shard_key(cluster.scheme, "shard-0")
    txn = cluster.submit(rw_payload(key0, tiebreak="a"))
    cluster.run_until_decided([txn])
    cluster.run()
    for pid in cluster.members_of("shard-1"):
        assert txn not in cluster.replica(pid).certification_order()


def test_empty_payload_commits_immediately(cluster):
    assert cluster.certify(cluster.scheme.empty_payload()) is Decision.COMMIT


def test_concurrent_disjoint_transactions_all_commit(cluster):
    payloads = [rw_payload(f"key{i}", tiebreak=str(i)) for i in range(8)]
    decisions = cluster.certify_many(payloads)
    assert all(d is Decision.COMMIT for d in decisions.values())
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_concurrent_conflicting_transactions_one_commits(cluster):
    conflicting = [rw_payload("hot", version=0, tiebreak=str(i)) for i in range(4)]
    decisions = cluster.certify_many(conflicting)
    commits = [d for d in decisions.values() if d is Decision.COMMIT]
    assert len(commits) == 1
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_followers_match_leader_logs_after_load(cluster):
    payloads = [rw_payload(f"k{i}", tiebreak=str(i)) for i in range(10)]
    cluster.certify_many(payloads)
    cluster.run()
    for shard in cluster.shards:
        leader = cluster.replica(cluster.leader_of(shard))
        for pid in cluster.followers_of(shard):
            follower = cluster.replica(pid)
            for slot, txn in follower.txn_arr.items():
                assert leader.txn_arr.get(slot) == txn
                assert leader.vote_arr.get(slot) == follower.vote_arr.get(slot)


def test_coordinator_is_not_member_of_involved_shard_by_default(cluster):
    p = rw_payload("x", tiebreak="a")
    shard = cluster.scheme.sharding.shard_of("x")
    txn = cluster.submit(p)
    cluster.run_until_decided([txn])
    entry = cluster.coordinator_entries()[txn]
    assert entry.decided and entry.decision is Decision.COMMIT
    coordinator_pids = [
        pid
        for pid, replica in cluster.replicas.items()
        if txn in getattr(replica, "_coordinated", {})
    ]
    assert coordinator_pids
    assert all(pid not in cluster.members_of(shard) for pid in coordinator_pids)


def test_snapshot_isolation_cluster_commits_stale_reader():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, isolation="snapshot-isolation", seed=7)
    writer = rw_payload("x", version=0, tiebreak="w")
    assert cluster.certify(writer) is Decision.COMMIT
    # Under serializability this read-only transaction would abort; under the
    # write-write-conflict-only scheme it commits.
    assert cluster.certify(read_payload("x", version=0)) is Decision.COMMIT
    assert cluster.certify(rw_payload("x", version=0, tiebreak="s")) is Decision.ABORT


def test_explicit_coordinator_choice_is_respected(cluster):
    coordinator = cluster.members_of("shard-1")[0]
    txn = cluster.submit(rw_payload("x", tiebreak="a"), coordinator=coordinator)
    cluster.run_until_decided([txn])
    assert txn in cluster.replica(coordinator)._coordinated


def test_f_zero_single_replica_shards_still_commit():
    cluster = Cluster(num_shards=2, replicas_per_shard=1, seed=3)
    assert cluster.certify(rw_payload("x", tiebreak="a")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_three_replicas_per_shard_commit():
    cluster = Cluster(num_shards=2, replicas_per_shard=3, seed=3)
    assert cluster.certify(rw_payload("x", tiebreak="a")) is Decision.COMMIT
    assert cluster.protocol_latencies() == [5.0]
