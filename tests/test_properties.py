"""Property-based tests (hypothesis).

Three families:

* the certification-scheme side conditions the paper requires (1), (3), (4),
  (5) hold for arbitrary payload populations;
* the TCS checker's graph construction agrees with the brute-force
  linearization search on small histories;
* end-to-end: for arbitrary small workloads (with contention) driven through
  either protocol, the recorded history is always correct and the replica
  invariants always hold.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.serializability import (
    KeyHashSharding,
    SerializabilityScheme,
    SnapshotIsolationScheme,
    TransactionPayload,
)
from repro.core.types import Decision
from repro.spec.checker import TCSChecker
from repro.spec.history import History


SHARDS = ["shard-0", "shard-1"]
KEYS = ["alpha", "beta", "gamma", "delta"]

SER = SerializabilityScheme(KeyHashSharding(SHARDS))
SI = SnapshotIsolationScheme(KeyHashSharding(SHARDS))


@st.composite
def payloads(draw, max_version=3):
    """Random well-formed payloads over a small key space."""
    read_keys = draw(st.sets(st.sampled_from(KEYS), min_size=1, max_size=3))
    reads = []
    for key in sorted(read_keys):
        version = draw(st.integers(min_value=0, max_value=max_version))
        reads.append((key, (version, "")))
    write_keys = draw(st.sets(st.sampled_from(sorted(read_keys)), max_size=len(read_keys)))
    writes = [(key, draw(st.integers(0, 100))) for key in sorted(write_keys)]
    tiebreak = draw(st.text(alphabet="abcdef", min_size=1, max_size=3))
    return TransactionPayload.make(reads=reads, writes=writes, tiebreak=tiebreak)


@st.composite
def payload_sets(draw):
    return draw(st.lists(payloads(), min_size=0, max_size=4))


# ----------------------------------------------------------------------
# scheme side conditions
# ----------------------------------------------------------------------
@given(left=payload_sets(), right=payload_sets(), candidate=payloads())
@settings(max_examples=60, deadline=None)
def test_global_certification_is_distributive(left, right, candidate):
    for scheme in (SER, SI):
        assert scheme.check_distributive_global([left, right], candidate)


@given(left=payload_sets(), right=payload_sets(), candidate=payloads())
@settings(max_examples=60, deadline=None)
def test_shard_local_functions_are_distributive(left, right, candidate):
    for scheme in (SER, SI):
        for shard in SHARDS:
            assert scheme.check_distributive_shard(shard, [left, right], candidate)


@given(committed=payload_sets(), candidate=payloads())
@settings(max_examples=60, deadline=None)
def test_global_and_shard_local_functions_match(committed, candidate):
    for scheme in (SER, SI):
        assert scheme.check_matching(committed, candidate)


@given(prepared=payload_sets(), candidate=payloads())
@settings(max_examples=60, deadline=None)
def test_prepared_check_is_no_weaker_than_committed_check(prepared, candidate):
    for scheme in (SER, SI):
        for shard in SHARDS:
            assert scheme.check_prepared_stronger(shard, prepared, candidate)


@given(pending=payloads(), candidate=payloads())
@settings(max_examples=60, deadline=None)
def test_prepared_check_commutativity(pending, candidate):
    for scheme in (SER, SI):
        for shard in SHARDS:
            assert scheme.check_prepared_commutes(shard, pending, candidate)


@given(committed=payload_sets())
@settings(max_examples=30, deadline=None)
def test_empty_payload_always_certifies(committed):
    for scheme in (SER, SI):
        for shard in SHARDS:
            assert scheme.check_empty_payload_commits(shard, committed)


# ----------------------------------------------------------------------
# checker: graph construction vs exhaustive search
# ----------------------------------------------------------------------
@given(population=st.lists(payloads(max_version=1), min_size=1, max_size=5), data=st.data())
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_graph_checker_agrees_with_exhaustive_search(population, data):
    history = History()
    for index, payload in enumerate(population):
        history.record_certify(f"t{index}", payload, float(index))
    for index in range(len(population)):
        decision = data.draw(st.sampled_from([Decision.COMMIT, Decision.ABORT]))
        history.record_decide(f"t{index}", decision, float(len(population) + index))
    checker = TCSChecker(SER)
    assert checker.check(history).ok == checker.check_exhaustive(history).ok


# ----------------------------------------------------------------------
# end-to-end protocol properties
# ----------------------------------------------------------------------
@st.composite
def workloads(draw):
    """A small batch of possibly-conflicting payloads."""
    count = draw(st.integers(min_value=1, max_value=6))
    result = []
    for index in range(count):
        key = draw(st.sampled_from(KEYS))
        result.append(
            TransactionPayload.make(
                reads=[(key, (0, ""))], writes=[(key, index)], tiebreak=f"w{index}"
            )
        )
    return result


@given(batch=workloads(), seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_message_passing_protocol_always_correct(batch, seed):
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=seed)
    cluster.certify_many(batch)
    cluster.run()
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []
    # Conflicting transactions on the same key: exactly one commits per key.
    by_key = {}
    for txn in cluster.history.certified():
        payload = cluster.history.payload_of(txn)
        key = next(iter(payload.written_objects))
        if cluster.history.decision_of(txn) is Decision.COMMIT:
            by_key.setdefault(key, []).append(txn)
    for key, committed in by_key.items():
        assert len(committed) == 1


@given(batch=workloads(), seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_rdma_protocol_always_correct(batch, seed):
    cluster = Cluster(num_shards=2, replicas_per_shard=2, protocol="rdma", seed=seed)
    cluster.certify_many(batch)
    cluster.run()
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []


@given(
    batch=workloads(),
    seed=st.integers(min_value=0, max_value=10_000),
    crash_follower=st.booleans(),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_protocol_correct_across_reconfiguration(batch, seed, crash_follower):
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=seed)
    half = max(1, len(batch) // 2)
    cluster.certify_many(batch[:half])
    crashed = (
        cluster.crash_follower("shard-0") if crash_follower else cluster.crash_leader("shard-0")
    )
    cluster.reconfigure("shard-0", suspects=[crashed])
    cluster.certify_many(batch[half:])
    cluster.run()
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []
