"""Tests for the metrics helpers and the invariant checker."""

import pytest

from repro.analysis.metrics import (
    ExperimentReport,
    LatencySummary,
    format_table,
    leader_load,
    messages_per_transaction,
    percentile,
    summarize,
)
from repro.cluster import Cluster
from repro.core.types import Decision, Phase
from repro.runtime.network import MessageStats
from repro.spec.invariants import check_invariants

from helpers import rw_payload


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_summarize_basic_statistics():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.median == pytest.approx(2.5)
    assert summary.minimum == 1.0 and summary.maximum == 4.0
    assert set(summary.as_dict()) == {"count", "mean", "median", "p99", "min", "max"}


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_percentile_nearest_rank():
    sample = sorted([1.0, 2.0, 3.0, 4.0, 5.0])
    assert percentile(sample, 0.0) == 1.0
    assert percentile(sample, 1.0) == 5.0
    assert percentile(sample, 0.5) == 3.0
    with pytest.raises(ValueError):
        percentile(sample, 1.5)
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_leader_load_and_messages_per_transaction():
    stats = MessageStats()
    for _ in range(6):
        stats.record_send("leader", object())
    for _ in range(4):
        stats.record_delivery("leader", object())
    assert leader_load(stats, ["leader"], num_transactions=2) == pytest.approx(5.0)
    assert leader_load(stats, [], num_transactions=2) == 0.0
    assert messages_per_transaction(stats, 3) == pytest.approx(2.0)
    assert messages_per_transaction(stats, 0) == 0.0


def test_format_table_alignment():
    table = format_table(["name", "value"], [["a", 1.23456], ["long-name", 7]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "value" in lines[0]
    assert "1.23" in table


def test_experiment_report_render():
    report = ExperimentReport(
        experiment="E1", claim="latency", headers=["protocol", "delays"]
    )
    report.add_row("ours", 5.0)
    report.add_row("baseline", 7.0)
    text = report.render()
    assert "E1" in text and "ours" in text and "7.00" in text


# ----------------------------------------------------------------------
# invariant checker
# ----------------------------------------------------------------------
def test_invariants_clean_cluster_has_no_violations():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=81)
    cluster.certify_many([rw_payload(f"k{i}", tiebreak=str(i)) for i in range(5)])
    cluster.run()
    assert check_invariants(cluster.member_replicas_by_shard(), cluster.history) == []


def _tamper(cluster):
    shard = "shard-0"
    members = [cluster.replica(p) for p in cluster.members_of(shard)]
    return shard, members


def test_invariants_detect_vote_divergence():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=82)
    cluster.certify(rw_payload("x", tiebreak="a"))
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    follower = cluster.replica(cluster.followers_of(shard)[0])
    slot = next(iter(follower.vote_arr))
    follower.vote_arr[slot] = Decision.ABORT
    violations = check_invariants(cluster.member_replicas_by_shard(), cluster.history)
    assert any("vote-agreement" in v.invariant for v in violations)


def test_invariants_detect_decision_divergence():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=83)
    cluster.certify(rw_payload("x", tiebreak="a"))
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    follower = cluster.replica(cluster.followers_of(shard)[0])
    slot = next(iter(follower.dec_arr))
    follower.dec_arr[slot] = Decision.ABORT
    violations = check_invariants(cluster.member_replicas_by_shard(), cluster.history)
    assert any("decision-agreement" in v.invariant for v in violations)


def test_invariants_detect_duplicate_transaction_slots():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=84)
    cluster.certify(rw_payload("x", tiebreak="a"))
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    leader = cluster.replica(cluster.leader_of(shard))
    slot = max(leader.txn_arr)
    leader.txn_arr[slot + 1] = leader.txn_arr[slot]
    violations = check_invariants(cluster.member_replicas_by_shard(), cluster.history)
    assert any("unique-slots" in v.invariant for v in violations)


def test_invariants_detect_log_divergence():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=85)
    cluster.certify(rw_payload("x", tiebreak="a"))
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    follower = cluster.replica(cluster.followers_of(shard)[0])
    slot = next(iter(follower.txn_arr))
    follower.txn_arr[slot] = "phantom-transaction"
    violations = check_invariants(cluster.member_replicas_by_shard(), cluster.history)
    assert any("log-agreement" in v.invariant for v in violations)


def test_invariants_detect_commit_with_abort_vote():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=86)
    cluster.certify(rw_payload("x", tiebreak="a"))
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    leader = cluster.replica(cluster.leader_of(shard))
    slot = next(iter(leader.dec_arr))
    leader.vote_arr[slot] = Decision.ABORT
    violations = check_invariants({shard: [leader]}, None)
    assert any("commit-implies-commit-vote" in v.invariant for v in violations)


def test_violation_string_rendering():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=87)
    cluster.certify(rw_payload("x", tiebreak="a"))
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    leader = cluster.replica(cluster.leader_of(shard))
    slot = next(iter(leader.dec_arr))
    leader.vote_arr[slot] = Decision.ABORT
    violations = check_invariants({shard: [leader]}, None)
    assert all(str(v) for v in violations)
