"""Unit tests for the Multi-Paxos replicated state machine substrate."""

from dataclasses import dataclass

import pytest

from repro.baselines.paxos import PaxosGroup, RsmCommand, RsmResponse, StateMachine
from repro.runtime.events import Scheduler
from repro.runtime.network import Network
from repro.runtime.process import Process


class AppendLog(StateMachine):
    """A trivial state machine: appends commands and returns the log length."""

    def __init__(self):
        self.log = []

    def apply(self, command):
        self.log.append(command)
        return len(self.log)


class RsmClient(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.responses = {}
        self._next = 0

    def request(self, leader, command):
        self._next += 1
        self.send(leader, RsmCommand(command=command, request_id=self._next))
        return self._next

    def on_rsm_response(self, msg, sender):
        self.responses[msg.request_id] = msg.result


def build(size=3):
    scheduler = Scheduler()
    network = Network(scheduler)
    group = PaxosGroup(network, name="g", size=size, state_machine_factory=AppendLog)
    client = RsmClient("client")
    network.register(client)
    return scheduler, network, group, client


def test_single_command_replicated_to_all():
    scheduler, network, group, client = build()
    rid = client.request(group.leader, "cmd-1")
    scheduler.run()
    assert client.responses[rid] == 1
    for replica in group.replicas:
        assert replica.state_machine.log == ["cmd-1"]
        assert replica.applied_upto == 0


def test_commands_applied_in_submission_order():
    scheduler, network, group, client = build()
    for i in range(10):
        client.request(group.leader, f"cmd-{i}")
    scheduler.run()
    expected = [f"cmd-{i}" for i in range(10)]
    for replica in group.replicas:
        assert replica.state_machine.log == expected


def test_non_leader_forwards_to_leader():
    scheduler, network, group, client = build()
    follower = group.pids[1]
    client.request(follower, "via-follower")
    scheduler.run()
    assert group.leader_replica.state_machine.log == ["via-follower"]


def test_group_size_one_works():
    scheduler, network, group, client = build(size=1)
    rid = client.request(group.leader, "solo")
    scheduler.run()
    assert client.responses[rid] == 1


def test_replication_survives_minority_acceptor_crash():
    scheduler, network, group, client = build(size=3)
    network.crash(group.pids[2])
    rid = client.request(group.leader, "with-one-down")
    scheduler.run()
    assert client.responses[rid] == 1
    for pid in group.pids[:2]:
        assert group.replica(pid).state_machine.log == ["with-one-down"]


def test_no_progress_without_majority():
    scheduler, network, group, client = build(size=3)
    network.crash(group.pids[1])
    network.crash(group.pids[2])
    rid = client.request(group.leader, "stuck")
    scheduler.run()
    assert rid not in client.responses


def test_leader_change_preserves_chosen_commands():
    scheduler, network, group, client = build(size=3)
    for i in range(3):
        client.request(group.leader, f"old-{i}")
    scheduler.run()
    # The old leader crashes; a follower takes over with a higher ballot.
    network.crash(group.leader)
    new_leader = group.replica(group.pids[1])
    new_leader.become_leader()
    scheduler.run()
    assert new_leader.leading
    client.request(new_leader.pid, "new-era")
    scheduler.run()
    assert new_leader.state_machine.log[:3] == ["old-0", "old-1", "old-2"]
    assert "new-era" in new_leader.state_machine.log
    # The surviving acceptor converges to the same log.
    other = group.replica(group.pids[2])
    assert other.state_machine.log == new_leader.state_machine.log


def test_deposed_leader_stops_leading():
    scheduler, network, group, client = build(size=3)
    old_leader = group.leader_replica
    new_leader = group.replica(group.pids[1])
    new_leader.become_leader()
    scheduler.run()
    assert new_leader.leading
    assert not old_leader.leading


def test_ballots_are_totally_ordered_by_round_then_pid():
    scheduler, network, group, client = build(size=3)
    first = group.replica(group.pids[1]).become_leader()
    second = group.replica(group.pids[2]).become_leader()
    assert second > first or second[0] > first[0]
