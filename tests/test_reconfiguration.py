"""Integration tests for per-shard reconfiguration (Figure 1, lines 33-69)."""

import pytest

from repro.cluster import Cluster
from repro.core.messages import CsViewChange
from repro.core.types import Decision, Status

from helpers import payload, rw_payload, shard_key


@pytest.fixture
def cluster():
    return Cluster(num_shards=2, replicas_per_shard=2, spares_per_shard=2, seed=21)


def commit_some(cluster, count=3, prefix="k"):
    payloads = [rw_payload(f"{prefix}{i}", tiebreak=f"{prefix}{i}") for i in range(count)]
    decisions = cluster.certify_many(payloads)
    assert all(d is Decision.COMMIT for d in decisions.values())
    return payloads


def test_reconfiguration_replaces_crashed_follower(cluster):
    commit_some(cluster)
    crashed = cluster.crash_follower("shard-0")
    assert cluster.reconfigure("shard-0", suspects=[crashed])
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2
    assert crashed not in config.members
    assert len(config.members) == 2
    # A fresh spare has been drafted in and initialised.
    new_member = [p for p in config.members if p.startswith("shard-0/spare")]
    assert new_member
    assert cluster.replica(new_member[0]).initialized


def test_reconfiguration_after_leader_crash_promotes_follower(cluster):
    commit_some(cluster)
    old_leader = cluster.crash_leader("shard-0")
    assert cluster.reconfigure("shard-0", suspects=[old_leader])
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2
    assert old_leader not in config.members
    new_leader = cluster.replica(config.leader)
    assert new_leader.status is Status.LEADER
    assert new_leader.initialized


def test_certification_continues_after_follower_replacement(cluster):
    committed = commit_some(cluster)
    crashed = cluster.crash_follower("shard-0")
    cluster.reconfigure("shard-0", suspects=[crashed])
    post = rw_payload("post", tiebreak="post")
    assert cluster.certify(post) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_certification_continues_after_leader_replacement(cluster):
    commit_some(cluster)
    old_leader = cluster.crash_leader("shard-0")
    cluster.reconfigure("shard-0", suspects=[old_leader])
    assert cluster.certify(rw_payload("post", tiebreak="post")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_committed_transactions_survive_reconfiguration(cluster):
    """Invariant 2: accepted transactions persist into higher epochs."""
    committed = commit_some(cluster, count=4)
    old_leader = cluster.crash_leader("shard-0")
    cluster.reconfigure("shard-0", suspects=[old_leader])
    new_config = cluster.current_configuration("shard-0")
    decided_txns = set(cluster.history.committed())
    for pid in new_config.members:
        replica = cluster.replica(pid)
        recorded = set(replica.txn_arr.values())
        for txn in decided_txns:
            if "shard-0" in cluster.directory.shards_of(txn):
                assert txn in recorded


def test_conflict_detection_preserved_across_reconfiguration(cluster):
    first = rw_payload("x", version=0, tiebreak="a")
    assert cluster.certify(first) is Decision.COMMIT
    old_leader = cluster.crash_leader(cluster.scheme.sharding.shard_of("x"))
    cluster.reconfigure(cluster.scheme.sharding.shard_of("x"), suspects=[old_leader])
    stale = rw_payload("x", version=0, tiebreak="b")
    assert cluster.certify(stale) is Decision.ABORT


def test_other_shards_keep_processing_during_reconfiguration(cluster):
    """Per-shard reconfiguration does not disturb unaffected shards."""
    key1 = shard_key(cluster.scheme, "shard-1")
    crashed = cluster.crash_follower("shard-0")
    # Do not run the reconfiguration to completion yet: submit to shard-1
    # while shard-0 is being probed.
    cluster.reconfigure("shard-0", run=False, suspects=[crashed])
    decision = cluster.certify(rw_payload(key1, tiebreak="other"))
    assert decision is Decision.COMMIT


def test_epoch_monotonically_increases_over_reconfigurations(cluster):
    epochs = [cluster.current_configuration("shard-0").epoch]
    for round_ in range(3):
        crashed = cluster.crash_follower("shard-0")
        assert cluster.reconfigure("shard-0", suspects=[crashed])
        epochs.append(cluster.current_configuration("shard-0").epoch)
        assert cluster.certify(rw_payload(f"r{round_}", tiebreak=f"r{round_}")) in (
            Decision.COMMIT,
            Decision.ABORT,
        )
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)


def test_reconfiguration_requires_spares_or_survivors(cluster):
    """With no spares left, the new configuration shrinks to the survivors."""
    cluster.spare_pools["shard-0"]._available.clear()
    crashed = cluster.crash_follower("shard-0")
    cluster.reconfigure("shard-0", suspects=[crashed])
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2
    assert len(config.members) == 1
    assert cluster.certify(rw_payload("after", tiebreak="after")) is Decision.COMMIT


def test_probing_traverses_past_non_operational_epoch():
    """If a reconfiguration attempt installs a configuration whose only live
    members are fresh (its new leader dies before transferring state), the
    next reconfiguration probes *past* it, down to an older epoch that still
    holds the data (Vertical-Paxos-style traversal; FaRM's single-epoch
    lookback would get stuck here)."""
    cluster = Cluster(num_shards=2, replicas_per_shard=3, spares_per_shard=3, seed=23)
    shard = "shard-0"
    r0, r1, r2 = cluster.members_of(shard)
    first = rw_payload("k0", version=0, tiebreak="first")
    assert cluster.certify(first) is Decision.COMMIT

    # r2 crashes; r0 reconfigures, excluding r1 and r2 from the new
    # membership, so epoch 2 = (r0, fresh, fresh).
    cluster.crash(r2)
    cluster.reconfigure(shard, initiator=r0, suspects=[r1, r2], run=False)

    def kill_new_leader_once_epoch2_is_introduced() -> bool:
        config = cluster.config_service.last_configuration(shard)
        if config is not None and config.epoch == 2:
            cluster.crash(config.leader)
            return True
        return False

    cluster.scheduler.run_until(kill_new_leader_once_epoch2_is_introduced, max_events=100_000)
    cluster.run()
    epoch2 = cluster.config_service.last_configuration(shard)
    assert epoch2.epoch == 2
    # Epoch 2 never activated: its surviving members are uninitialised spares.
    for pid in epoch2.members:
        replica = cluster.replica(pid)
        assert replica.crashed or not replica.initialized

    # A further reconfiguration must traverse down to epoch 1 and find r1.
    assert cluster.reconfigure(shard, initiator=r1)
    config = cluster.current_configuration(shard)
    assert config.epoch >= 3
    assert config.leader == r1
    assert cluster.replica(r1).initialized

    # The shard is operational again and remembers its history: a stale
    # re-write of k0 must still abort.
    assert cluster.certify(rw_payload("k0", version=0, tiebreak="stale")) is Decision.ABORT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_spurious_suspicion_reconfiguration_is_harmless(cluster):
    """Reconfiguring a shard whose leader is only *suspected* (but alive)
    bumps the epoch and keeps the system correct."""
    commit_some(cluster)
    shard = "shard-0"
    old_leader_pid = cluster.leader_of(shard)
    follower = cluster.followers_of(shard)[0]
    cluster.reconfigure(shard, initiator=follower, suspects=[old_leader_pid])
    config = cluster.current_configuration(shard)
    assert config.epoch == 2
    assert cluster.certify(rw_payload("fresh", tiebreak="fresh")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_losing_undecided_transaction_is_safe(cluster):
    """Section 3, "Losing undecided transactions": a prepared-but-undecided
    transaction may be lost by a reconfiguration; later transactions whose
    votes depended on it remain correct."""
    shard = cluster.scheme.sharding.shard_of("hot")
    other_shard = "shard-1" if shard == "shard-0" else "shard-0"
    leader_pid = cluster.leader_of(shard)
    follower_pid = cluster.followers_of(shard)[0]
    # Coordinate t1 from a follower of the other shard, so that crashing the
    # coordinator later does not decapitate that shard.
    coordinator = cluster.followers_of(other_shard)[0]

    # t1 reads+writes "hot"; block the coordinator's ACCEPT from reaching the
    # follower so t1 is prepared at the leader but never persisted.
    cluster.network.block(coordinator, follower_pid)
    t1 = cluster.submit(rw_payload("hot", version=0, tiebreak="t1"), coordinator=coordinator)
    cluster.run()
    assert cluster.history.decision_of(t1) is None

    # t2 writes a different key on the same shard; its vote was computed in a
    # context that included prepared-but-uncommitted t1.
    key_other = shard_key(cluster.scheme, shard, hint="cold")
    t2 = cluster.submit(
        rw_payload(key_other, version=0, tiebreak="t2"),
        coordinator=cluster.leader_of(other_shard),
    )
    cluster.run()
    assert cluster.history.decision_of(t2) is Decision.COMMIT

    # The leader and t1's coordinator now crash: t1 is lost forever.
    cluster.crash(leader_pid)
    cluster.crash(coordinator)
    cluster.reconfigure(shard, initiator=follower_pid, suspects=[leader_pid])
    post_key = shard_key(cluster.scheme, shard, hint="post")
    assert cluster.certify(rw_payload(post_key, tiebreak="post")) is Decision.COMMIT

    # t1 was never decided and the overall history is still correct.
    assert cluster.history.decision_of(t1) is None
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []


# ----------------------------------------------------------------------
# SparePool exhaustion and concurrent probe races
# ----------------------------------------------------------------------
def test_spare_pool_exhaustion_shrinks_configuration_progressively(cluster):
    """Repeated failures drain the pool one spare at a time; once it is
    empty, membership recomputation must still publish a valid (smaller)
    configuration instead of wedging the shard."""
    pool = cluster.spare_pools["shard-0"]
    assert len(pool) == 2
    sizes = []
    epochs = []
    for round_ in range(3):
        crashed = cluster.crash_follower("shard-0")
        assert cluster.reconfigure("shard-0", suspects=[crashed])
        config = cluster.current_configuration("shard-0")
        sizes.append(len(config.members))
        epochs.append(config.epoch)
        assert crashed not in config.members
        assert config.leader in config.members
        # Every published member is either initialised or a fresh spare
        # awaiting its NEW_STATE (never a crashed process).
        for pid in config.members:
            assert not cluster.replica(pid).crashed
        assert cluster.certify(rw_payload(f"round{round_}", tiebreak=f"r{round_}")) is Decision.COMMIT
    # Two rounds were topped up from the pool; the third had nothing left
    # and shrank to the survivors.
    assert sizes == [2, 2, 1]
    assert len(pool) == 0
    assert epochs == sorted(epochs) and len(set(epochs)) == 3
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_concurrent_reconfigurations_race_to_one_winner(cluster):
    """Two processes probe the same shard concurrently: both drive the same
    recon epoch, exactly one compare-and-swap wins, and the loser's attempt
    leaves no dangling state."""
    commit_some(cluster)
    crashed = cluster.crash_follower("shard-0")
    service = cluster.config_service
    cas_before = service.cas_attempts
    initiators = [
        cluster.replica(cluster.leader_of("shard-0")),
        cluster.replica(cluster.members_of("shard-1")[0]),
    ]
    for initiator in initiators:
        initiator.suspect(crashed)
        assert initiator.reconfigure("shard-0")  # both start probing
    cluster.run()
    assert service.cas_attempts >= cas_before + 2  # the race really happened
    introduced = sum(r.reconfigurations_introduced for r in initiators)
    assert introduced == 1  # exactly one CAS won
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2
    assert crashed not in config.members
    assert cluster.replica(config.leader).is_leader
    assert cluster.certify(rw_payload("after-race", tiebreak="after")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_suspicion_push_races_timeout_reconfigure_to_one_winner(cluster):
    """A service-pushed CS_VIEW_CHANGE (suspicion-driven, unsolicited) racing
    a timeout-driven ``reconfigure()`` of the same shard: both run the
    ordinary probe/CAS path, exactly one introduction wins, and neither
    initiator is left wedged in its probing state."""
    commit_some(cluster)
    crashed = cluster.crash_follower("shard-0")
    service = cluster.config_service
    cas_before = service.cas_attempts
    pushed = cluster.replica(cluster.leader_of("shard-0"))
    timed_out = cluster.replica(cluster.members_of("shard-1")[0])
    timed_out.suspect(crashed)
    assert timed_out.reconfigure("shard-0")  # the retry-timeout path
    service.send(  # the detector path: confirmed suspicion, pushed back out
        pushed.pid, CsViewChange(shard="shard-0", epoch=1, suspects=(crashed,))
    )
    cluster.run()
    assert service.cas_attempts >= cas_before + 2  # the race really happened
    assert pushed.unsolicited_reconfigurations == 1
    introduced = (
        pushed.reconfigurations_introduced + timed_out.reconfigurations_introduced
    )
    assert introduced == 1  # exactly one CAS won
    assert not pushed.probing and not timed_out.probing
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2
    assert crashed not in config.members
    assert cluster.certify(rw_payload("after-push", tiebreak="ap")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_concurrent_probe_race_with_exhausted_pool(cluster):
    """The race of the previous test combined with an empty spare pool: the
    winning reconfigurer must publish a valid smaller configuration."""
    cluster.spare_pools["shard-0"]._available.clear()
    crashed = cluster.crash_follower("shard-0")
    initiators = [
        cluster.replica(cluster.leader_of("shard-0")),
        cluster.replica(cluster.members_of("shard-1")[0]),
    ]
    for initiator in initiators:
        initiator.suspect(crashed)
        assert initiator.reconfigure("shard-0")
    cluster.run()
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2
    assert len(config.members) == 1  # shrank: no spares to top up with
    assert config.leader in config.members
    assert cluster.certify(rw_payload("small", tiebreak="small")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []
