"""Tests for the snapshot-read fast path (``repro.core.reads``).

Three layers:

* the MVCC store primitives (``read_at`` bisection, out-of-order
  ``install``) that back every replica's applied store;
* the :class:`ReplicaReadEngine` state machine in isolation — pending-writer
  refusal, watermark advance, lease bookkeeping, broken-mode accounting;
* the end-to-end path on a live cluster — leader serves, certified-path
  fallback, the read-heavy scenario's safety, the stale-lease ablation's
  checker-visible cycle, and the baseline's watermark parity.
"""

import pytest

from repro.baselines.cluster import BaselineCluster
from repro.cluster import Cluster
from repro.core.reads import DEFAULT_LEASE, ReadPolicy, ReplicaReadEngine
from repro.core.serializability import VERSION_ZERO
from repro.core.types import Decision
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.spec import ReadSpec
from repro.spec.checker import TCSChecker
from repro.store.kv import VersionedKVStore

from helpers import payload, rw_payload, shard_key


# ----------------------------------------------------------------------
# store primitives
# ----------------------------------------------------------------------

def test_read_at_returns_newest_version_at_or_below():
    store = VersionedKVStore()
    store.seed("x", "v0")
    store.install("x", "v1", (1, "a"))
    store.install("x", "v3", (3, "c"))
    assert store.read_at("x", (0, "")).value == "v0"
    assert store.read_at("x", (1, "a")).value == "v1"
    assert store.read_at("x", (2, "b")).value == "v1"  # between versions
    assert store.read_at("x", (3, "c")).value == "v3"
    assert store.read_at("x", (9, "z")).value == "v3"  # latest fast path


def test_read_at_missing_object_and_below_first_version():
    store = VersionedKVStore()
    assert store.read_at("ghost", (5, "x")) is None
    store.install("x", "v2", (2, "b"))  # no version-zero seed
    assert store.read_at("x", (1, "a")) is None
    assert store.read_at("x", (2, "b")).value == "v2"


def test_install_tolerates_out_of_order_and_duplicate_versions():
    store = VersionedKVStore()
    assert store.install("x", "v3", (3, "c"))
    assert store.install("x", "v1", (1, "a"))  # arrives late, sorts first
    assert not store.install("x", "v3", (3, "c"))  # duplicate is a no-op
    assert [v.version for v in store.history_of("x")] == [(1, "a"), (3, "c")]
    assert store.read("x").value == "v3"
    assert store.read_at("x", (2, "b")).value == "v1"


# ----------------------------------------------------------------------
# ReplicaReadEngine in isolation
# ----------------------------------------------------------------------

class _StubReplica:
    def __init__(self):
        self.vote_arr = {}
        self.payload_arr = {}
        self.dec_arr = {}
        self.phase_arr = {}
        self.decision_listeners = []
        self.now = 0.0
        self.pid = "stub/r0"


def _engine(mode="snapshot", lease=DEFAULT_LEASE):
    replica = _StubReplica()
    engine = ReplicaReadEngine(replica, ReadPolicy(mode=mode, lease=lease))
    engine.note_lease(expires_at=1_000.0, granted=True)
    return replica, engine


def test_engine_refuses_reads_with_pending_writer_then_serves():
    replica, engine = _engine()
    engine.seed({"x": "init"})
    p = rw_payload("x", value="new", tiebreak="w")
    replica.vote_arr[3] = Decision.COMMIT
    replica.payload_arr[3] = p
    engine.note_prepared(3)
    status, reads = engine.serve(("x",), now=1.0)
    assert (status, reads) == ("pending", None)
    assert engine.reads_refused_pending == 1
    # The decision installs the write, clears the pending count and
    # advances the closed-timestamp watermark.
    listener = replica.decision_listeners[0]
    listener(3, "t-w", Decision.COMMIT)
    assert engine.watermark == p.commit_version
    status, reads = engine.serve(("x",), now=2.0)
    assert status == "ok"
    assert reads == [("x", "new", p.commit_version)]
    assert engine.reads_served == 1


def test_engine_abort_decisions_release_pending_without_installing():
    replica, engine = _engine()
    engine.seed({"x": "init"})
    replica.vote_arr[1] = Decision.COMMIT
    replica.payload_arr[1] = rw_payload("x", value="doomed", tiebreak="a")
    engine.note_prepared(1)
    replica.decision_listeners[0](1, "t-a", Decision.ABORT)
    assert engine.watermark == VERSION_ZERO
    status, reads = engine.serve(("x",), now=1.0)
    assert status == "ok"
    assert reads == [("x", "init", VERSION_ZERO)]


def test_engine_refuses_on_expired_lease_and_wants_renewal():
    replica, engine = _engine(lease=10.0)
    engine.lease_expires = 5.0
    assert engine.serve(("x",), now=5.0) == ("lease", None)
    assert engine.reads_refused_lease == 1
    assert engine.lease_wants_renewal(now=5.0)
    engine.note_lease(expires_at=50.0, granted=True)
    assert not engine.lease_wants_renewal(now=5.0)


def test_deposed_leader_stale_epoch_grant_is_fenced():
    replica, engine = _engine(lease=10.0)
    engine.lease_expires = float("-inf")
    engine.note_epoch(2)  # a view change deposed and re-elected around us
    # An in-flight grant echoing the old epoch arrives after the fence: it
    # must not re-arm the lease (the deposed leader would serve snapshot
    # reads against a configuration that no longer exists).
    engine.note_lease(expires_at=2_000.0, granted=True, epoch=1)
    assert engine.stale_grants == 1
    assert engine.lease_expires == float("-inf")
    assert engine.serve(("x",), now=0.0) == ("lease", None)
    # A grant echoing the current epoch is accepted as usual.
    engine.note_lease(expires_at=2_000.0, granted=True, epoch=2)
    assert engine.stale_grants == 1
    assert engine.lease_expires == 2_000.0


def test_broken_engine_serves_anyway_and_counts_stale():
    replica, engine = _engine(mode="broken-snapshot")
    engine.seed({"x": "old"})
    engine.lease_expires = float("-inf")  # no valid lease
    status, reads = engine.serve(("x",), now=7.0)
    assert status == "ok"
    assert reads == [("x", "old", VERSION_ZERO)]
    assert engine.stale_serves == 1
    assert engine.reads_refused_lease == 0


def test_read_policy_validation():
    with pytest.raises(ValueError):
        ReadPolicy(mode="psychic").validate()
    with pytest.raises(ValueError):
        ReadPolicy(mode="snapshot", lease=0.0).validate()
    assert not ReadPolicy().enabled  # certified default stays inert


# ----------------------------------------------------------------------
# end to end on a live cluster
# ----------------------------------------------------------------------

@pytest.fixture
def read_cluster():
    cluster = Cluster(num_shards=2, num_clients=1, seed=11, read=ReadPolicy(mode="snapshot"))
    cluster.run()  # deliver the bootstrap lease grants
    return cluster


def test_fast_path_serves_committed_write(read_cluster):
    cluster = read_cluster
    key = shard_key(cluster.scheme, "shard-0")
    cluster.seed_read_stores({key: "seeded"})
    write = rw_payload(key, value="fresh", tiebreak="w")
    assert cluster.certify(write) is Decision.COMMIT
    txn = cluster.submit_read((key,), fallback_payload=payload(reads=[(key, write.commit_version)]))
    cluster.run_until_decided([txn])
    assert cluster.decision_of(txn) is Decision.COMMIT
    client = cluster.clients[0]
    assert client.reads_served == 1 and client.read_fallbacks == 0
    (obj, value, version) = client.read_results[txn][0]
    assert (obj, value, version) == (key, "fresh", write.commit_version)
    # The decide event carries the versioned read, so the checker sees it.
    decided = cluster.history.effective_payload_of(txn)
    assert dict(decided.read_set)[key] == write.commit_version
    assert cluster.check()[0].ok


def test_read_before_lease_grant_falls_back_to_certification():
    cluster = Cluster(num_shards=2, num_clients=1, seed=12, read=ReadPolicy(mode="snapshot"))
    key = shard_key(cluster.scheme, "shard-0")
    # No cluster.run(): the lease grants are still in flight when the read
    # arrives, so the leader must refuse and the client must certify.
    txn = cluster.submit_read((key,), fallback_payload=payload(reads=[(key, VERSION_ZERO)]))
    cluster.run_until_decided([txn])
    client = cluster.clients[0]
    assert cluster.decision_of(txn) is Decision.COMMIT
    assert client.reads_served == 0
    assert client.read_fallbacks == 1
    assert client.read_fallback_reasons == {"lease": 1}
    assert cluster.check()[0].ok


def test_multi_shard_objects_are_rejected_by_submit_read(read_cluster):
    cluster = read_cluster
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    with pytest.raises(ValueError):
        cluster.submit_read(
            (key0, key1),
            fallback_payload=payload(reads=[(key0, VERSION_ZERO), (key1, VERSION_ZERO)]),
        )


def test_watermark_tracks_highest_applied_commit(read_cluster):
    cluster = read_cluster
    key = shard_key(cluster.scheme, "shard-0")
    first = rw_payload(key, value=1, tiebreak="w1")
    assert cluster.certify(first) is Decision.COMMIT
    second = payload(reads=[(key, first.commit_version)], writes=[(key, 2)], tiebreak="w2")
    assert cluster.certify(second) is Decision.COMMIT
    cluster.run()  # drain the slot-decision installs
    leader = cluster.replicas[cluster.leader_of("shard-0")]
    assert leader.read_engine.watermark == second.commit_version
    assert leader.read_engine.store.read(key).value == 2


def test_baseline_watermark_parity():
    """The 2PC-over-Paxos baseline keeps the same applied store and
    closed-timestamp watermark, so read-ratio comparisons against it are
    apples to apples."""
    cluster = BaselineCluster(
        num_shards=2, failures_tolerated=1, seed=13, read=ReadPolicy(mode="snapshot")
    )
    key = shard_key(cluster.scheme, "shard-0")
    cluster.seed_read_stores({key: "seeded"})
    write = rw_payload(key, value="fresh", tiebreak="w")
    assert cluster.certify(write) is Decision.COMMIT
    assert cluster.watermark_of("shard-0") == write.commit_version


# ----------------------------------------------------------------------
# scenarios: the safe fast path and the broken-lease ablation
# ----------------------------------------------------------------------

def test_read_heavy_scenario_is_safe_and_mostly_fast_path():
    result = ScenarioRunner(get_scenario("read-heavy-steady-state")).run()
    assert result.passed
    assert result.read_model.startswith("snapshot")
    assert result.reads_served > result.read_fallbacks
    assert result.read_stale_serves == 0


def test_stale_lease_ablation_is_flagged_with_a_cycle_witness():
    runner = ScenarioRunner(get_scenario("stale-lease-ablation"))
    result = runner.run()
    assert result.passed  # expect_safe=False and the checker fired
    assert not result.safety_ok
    assert "cycle" in result.check_reason
    assert result.read_stale_serves > 0
    # The offline checker agrees and can name the transactions on the cycle.
    check = TCSChecker(runner.cluster.scheme).check(runner.cluster.history)
    assert not check.ok
    assert len(check.cycle) >= 2


def test_same_fault_schedule_is_safe_with_the_guards_on():
    """Flipping only the read mode from broken-snapshot to snapshot (lease
    and pending guards enforced) turns every would-be stale serve into a
    certified-path fallback and the history is serializable again."""
    broken = get_scenario("stale-lease-ablation")
    fixed = broken.with_overrides(
        read=ReadSpec(mode="snapshot", lease=10.0), expect_safe=True
    )
    result = ScenarioRunner(fixed).run()
    assert result.passed
    assert result.safety_ok
    assert result.reads_served == 0  # the blocked lease refuses everything
    assert result.read_fallbacks > 0
    assert result.read_stale_serves == 0
