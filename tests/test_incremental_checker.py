"""Tests for the online TCS checker: differential equivalence with the batch
oracle on randomized histories, violation detection at the introducing event,
the conflict-index fallback, and the incremental invariant monitor."""

import random

import pytest

from repro.core.certification import PairwiseConflictIndex
from repro.core.serializability import (
    KeyHashSharding,
    SerializabilityScheme,
    SnapshotIsolationScheme,
    TransactionPayload,
)
from repro.core.types import Decision
from repro.spec.checker import TCSChecker
from repro.spec.history import History
from repro.spec.incremental import IncrementalTCSChecker
from repro.spec.invariants import InvariantMonitor, check_invariants

from helpers import payload


SHARDS = ["shard-0", "shard-1"]


@pytest.fixture
def scheme():
    return SerializabilityScheme(KeyHashSharding(SHARDS))


class _NoIndexScheme(SerializabilityScheme):
    """Serializability without an incremental conflict index (exercises the
    pairwise fallback path of the online checker)."""

    def make_conflict_index(self):
        return None


# ----------------------------------------------------------------------
# randomized differential: batch oracle vs online checker
# ----------------------------------------------------------------------
def _random_history(scheme, seed: int, n: int = 20, keys: int = 4) -> History:
    """A random interleaving of certify/decide events.

    Decisions mostly follow the certification function evaluated against the
    transactions committed so far (which yields a correct history — the
    decide order is a legal linearization), but are randomly flipped with
    small probability, so both safe and unsafe histories arise."""
    rng = random.Random(seed)
    history = History()
    versions = {f"k{i}": (0, "") for i in range(keys)}
    committed_payloads = []
    pending = []
    made = 0
    while made < n or pending:
        if made < n and (not pending or rng.random() < 0.55):
            made += 1
            txn = f"t{made}"
            chosen = rng.sample(list(versions), rng.randint(1, 3))
            reads = [
                (k, versions[k] if rng.random() < 0.7 else (max(0, versions[k][0] - 1), ""))
                for k in chosen
            ]
            writes = [(k, made) for k, _ in reads[: rng.randint(0, len(chosen))]]
            try:
                p = TransactionPayload.make(reads=reads, writes=writes, tiebreak=txn)
            except ValueError:
                made -= 1
                continue
            history.record_certify(txn, p, time=float(len(history.events)))
            pending.append((txn, p))
        else:
            txn, p = pending.pop(rng.randrange(len(pending)))
            decision = scheme.global_certify(committed_payloads, p)
            if rng.random() < 0.08:  # inject occasional wrong decisions
                decision = Decision.COMMIT if decision is Decision.ABORT else Decision.ABORT
            history.record_decide(txn, decision, time=float(len(history.events)))
            if decision is Decision.COMMIT:
                committed_payloads.append(p)
                for key, _ in p.write_set:
                    if p.commit_version > versions[key]:
                        versions[key] = p.commit_version
    return history


@pytest.mark.parametrize(
    "scheme_factory",
    [
        lambda: SerializabilityScheme(KeyHashSharding(SHARDS)),
        lambda: SnapshotIsolationScheme(KeyHashSharding(SHARDS)),
        lambda: _NoIndexScheme(KeyHashSharding(SHARDS)),
    ],
    ids=["serializability", "snapshot-isolation", "pairwise-fallback"],
)
def test_differential_batch_vs_incremental(scheme_factory):
    scheme = scheme_factory()
    verdicts = {True: 0, False: 0}
    for seed in range(60):
        history = _random_history(scheme, seed)
        batch = TCSChecker(scheme).check(history)
        online = IncrementalTCSChecker(scheme, history=history).result()
        assert batch.ok == online.ok, (
            f"seed {seed}: batch={batch.ok} ({batch.reason}) "
            f"online={online.ok} ({online.reason})"
        )
        verdicts[batch.ok] += 1
        if online.ok:
            # The online witness must itself be a legal linearization.
            payloads = {t: history.payload_of(t) for t in online.linearization}
            legal, reason = TCSChecker(scheme)._legal(online.linearization, payloads)
            assert legal, f"seed {seed}: {reason}"
            position = {t: i for i, t in enumerate(online.linearization)}
            for a, b in history.real_time_pairs(online.linearization):
                assert position[a] < position[b], f"seed {seed}: rt order broken"
    # The random histories genuinely exercised both verdicts.
    assert verdicts[True] > 0 and verdicts[False] > 0


def test_live_subscription_equals_replay(scheme):
    """Attaching before events are recorded (the runner's mode) must reach
    the same verdict as replaying a finished history."""
    for seed in (3, 7, 11):
        recorded = _random_history(scheme, seed)
        live_history = History()
        live = IncrementalTCSChecker(scheme, history=live_history)
        for event in recorded.events:
            if event.kind == "certify":
                live_history.record_certify(event.txn, event.payload, event.time)
            else:
                live_history.record_decide(event.txn, event.decision, event.time)
        replayed = IncrementalTCSChecker(scheme, history=recorded)
        assert live.ok == replayed.ok
        assert live.result().cycle == replayed.result().cycle
        live.detach()


# ----------------------------------------------------------------------
# violations are reported at the event that introduces them
# ----------------------------------------------------------------------
def test_conflict_cycle_detected_at_introducing_decide(scheme):
    """Two mutually conflicting transactions both commit: the cycle exists
    the moment the second one is decided."""
    checker = IncrementalTCSChecker(scheme)
    a = payload(reads=[("x", (0, ""))], writes=[("x", 1)], tiebreak="a")
    b = payload(reads=[("x", (0, ""))], writes=[("x", 2)], tiebreak="b")
    checker.observe_certify("ta", a)
    checker.observe_certify("tb", b)
    checker.observe_decide("ta", Decision.COMMIT)
    assert checker.ok  # one commit alone is fine
    checker.observe_decide("tb", Decision.COMMIT)
    assert not checker.ok
    assert checker.violation_at_event == 3  # 0-based: the fourth observed event
    assert set(checker.result().cycle) == {"ta", "tb"}
    assert "cycle" in checker.result().reason


def test_real_time_cycle_detected_online(scheme):
    """A transaction that commits after reading a version already overwritten
    by a *decided* transaction closes a real-time/conflict cycle."""
    checker = IncrementalTCSChecker(scheme)
    writer = payload(reads=[("x", (0, ""))], writes=[("x", 1)], tiebreak="w")
    checker.observe_certify("tw", writer)
    checker.observe_decide("tw", Decision.COMMIT)
    # Certified *after* tw decided, but still read x at version 0.
    stale = payload(reads=[("x", (0, ""))], writes=[("x", 9)], tiebreak="s")
    checker.observe_certify("ts", stale)
    assert checker.ok
    checker.observe_decide("ts", Decision.COMMIT)
    assert not checker.ok
    assert "ts" in checker.result().cycle and "tw" in checker.result().cycle
    # Batch oracle agrees on the same history.
    history = History()
    history.record_certify("tw", writer, 0.0)
    history.record_decide("tw", Decision.COMMIT, 1.0)
    history.record_certify("ts", stale, 2.0)
    history.record_decide("ts", Decision.COMMIT, 3.0)
    assert not TCSChecker(scheme).check(history).ok


def test_contradiction_flagged_as_violation(scheme):
    history = History()
    checker = IncrementalTCSChecker(scheme, history=history)
    history.record_certify("t1", payload(reads=[("x", (0, ""))], tiebreak="t"), 0.0)
    history.record_decide("t1", Decision.COMMIT, 1.0)
    assert checker.ok
    history.record_decide("t1", Decision.ABORT, 2.0)
    assert not checker.ok
    assert "contradictory" in checker.violation.reason
    assert checker.violation.cycle == ["t1"]


def test_checker_freezes_after_first_violation(scheme):
    checker = IncrementalTCSChecker(scheme)
    a = payload(reads=[("x", (0, ""))], writes=[("x", 1)], tiebreak="a")
    b = payload(reads=[("x", (0, ""))], writes=[("x", 2)], tiebreak="b")
    checker.observe_certify("ta", a)
    checker.observe_certify("tb", b)
    checker.observe_decide("ta", Decision.COMMIT)
    checker.observe_decide("tb", Decision.COMMIT)
    first = checker.result()
    checker.observe_certify("tc", payload(reads=[("y", (0, ""))], tiebreak="c"))
    checker.observe_decide("tc", Decision.COMMIT)
    assert checker.result() is first


def test_attach_twice_rejected(scheme):
    history = History()
    checker = IncrementalTCSChecker(scheme, history=history)
    with pytest.raises(RuntimeError, match="already attached"):
        checker.attach(history)
    checker.detach()
    checker2 = IncrementalTCSChecker(scheme)
    checker2.attach(history)
    checker2.detach()


def test_pairwise_fallback_index_matches_scheme(scheme):
    index = PairwiseConflictIndex(scheme)
    a = payload(reads=[("x", (0, ""))], writes=[("x", 1)], tiebreak="a")
    stale = payload(reads=[("x", (0, ""))], writes=[("x", 2)], tiebreak="b")
    assert index.register("ta", a) == ([], [])
    successors, predecessors = index.register("tb", stale)
    # ta's payload aborts tb (overwrote x@0) and vice versa: mutual conflict.
    assert successors == ["ta"] and predecessors == ["ta"]


# ----------------------------------------------------------------------
# differential under non-unit latency: the online and batch checkers must
# agree on histories shaped by random delay distributions
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "latency_kwargs",
    [
        dict(model="uniform", low=0.5, high=1.5),
        dict(model="lognormal", mean=1.5, sigma=1.0),
        dict(model="exponential", mean=1.0),
        dict(
            model="regions",
            regions=("eu", "us", "ap"),
            intra=0.5,
            links=(("eu", "us", 3.0), ("eu", "ap", 5.0), ("us", "ap", 4.0)),
            jitter=0.25,
        ),
    ],
    ids=["uniform", "lognormal", "exponential", "regions"],
)
def test_online_and_final_agree_under_non_unit_latency(latency_kwargs):
    """Random delays reorder deliveries (and thus certify/decide events);
    whatever history results, the online verdict must match the batch
    oracle's, and safe protocols must stay safe."""
    from dataclasses import replace

    from repro.scenarios import LatencySpec, get_scenario, run_scenario

    base = get_scenario("steady-state")
    spec = base.with_overrides(
        latency=LatencySpec(**latency_kwargs),
        workload=replace(base.workload, txns=40),
    )
    online = run_scenario(spec, check_mode="online")
    final = run_scenario(spec, check_mode="final")
    assert online.check_ok == final.check_ok
    assert online.check_ok and online.passed and final.passed
    # The history itself is identical across check modes (same seed, same
    # delay draws), so the verdicts were computed over the same events.
    assert online.txns_submitted == final.txns_submitted
    assert online.committed == final.committed
    assert online.duration == final.duration


def test_online_flags_violation_under_non_unit_latency():
    """The broken-RDMA ablation must still be caught online when the unsafe
    interleaving is driven by explicit channel delays on top of a jittered
    base model (delay-channel extras compose with the LatencySpec)."""
    from repro.scenarios import LatencySpec, ScenarioRunner, get_scenario

    spec = get_scenario("ablation-safety-demo").with_overrides(
        latency=LatencySpec(model="fixed", value=1.0, jitter=0.05),
        check_mode="online",
    )
    result = ScenarioRunner(spec).run()
    assert not result.safety_ok
    assert result.passed  # unsafe was the expectation


# ----------------------------------------------------------------------
# the Figure 4a ablation, caught online
# ----------------------------------------------------------------------
def test_broken_rdma_ablation_flagged_online():
    from repro.scenarios import ScenarioRunner, get_scenario

    spec = get_scenario("ablation-safety-demo").with_overrides(check_mode="online")
    runner = ScenarioRunner(spec)
    result = runner.run()
    assert not result.safety_ok
    assert result.passed  # unsafe was the expectation
    violation = runner.checker.violation
    assert violation is not None
    assert violation.cycle, "the online violation must carry a concrete witness"
    assert runner.checker.violation_at_event is not None
    assert "contradictory" in result.check_reason


# ----------------------------------------------------------------------
# incremental invariant monitor
# ----------------------------------------------------------------------
def test_invariant_monitor_matches_history_scan():
    from repro.cluster import Cluster
    from helpers import shard_key

    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=5)
    monitor = InvariantMonitor(cluster.history)
    payloads = [
        payload(
            reads=[(shard_key(cluster.scheme, "shard-0", hint=f"m{i}"), (0, ""))],
            writes=[(shard_key(cluster.scheme, "shard-0", hint=f"m{i}"), i)],
            tiebreak=f"m{i}",
        )
        for i in range(8)
    ]
    cluster.certify_many(payloads)
    scanned = check_invariants(cluster.member_replicas_by_shard(), cluster.history)
    streamed = check_invariants(cluster.member_replicas_by_shard(), monitor=monitor)
    assert scanned == streamed == []
    assert monitor.decisions == cluster.history.decided()
    monitor.detach()


def test_invariant_monitor_reports_contradiction():
    history = History()
    monitor = InvariantMonitor(history)
    history.record_certify("t1", payload(reads=[("x", (0, ""))], tiebreak="t"), 0.0)
    history.record_decide("t1", Decision.COMMIT, 1.0)
    history.record_decide("t1", Decision.ABORT, 2.0)
    assert len(monitor.violations) == 1
    assert "Inv. 4b" in monitor.violations[0].invariant
    violations = check_invariants({}, monitor=monitor)
    assert monitor.violations[0] in violations


# ----------------------------------------------------------------------
# streaming-run garbage collection
# ----------------------------------------------------------------------
def test_gc_bounds_memory_on_streaming_run(scheme):
    """The regression test for unbounded workloads: 100k transactions in a
    closed-loop-style stream (a small in-flight window, everything decided)
    must leave the garbage-collected checker with a bounded graph, while the
    un-collected baseline retains every node."""
    checker = IncrementalTCSChecker(scheme, gc=True, gc_interval=128)
    txns = 100_000
    keys = 64
    window = 8
    versions = {f"k{i}": (0, "") for i in range(keys)}
    pending = []
    for i in range(txns):
        key = f"k{i % keys}"
        txn = f"t{i}"
        read_version = versions[key]
        p = TransactionPayload.make(
            reads=[(key, read_version)], writes=[(key, i)], tiebreak=txn
        )
        checker.observe_certify(txn, p)
        pending.append((txn, p, key))
        if len(pending) >= window:
            done, done_payload, done_key = pending.pop(0)
            checker.observe_decide(done, Decision.COMMIT)
            if done_payload.commit_version > versions[done_key]:
                versions[done_key] = done_payload.commit_version
    for txn, _, _ in pending:
        checker.observe_decide(txn, Decision.COMMIT)
    assert checker.ok, checker.result().reason
    stats = checker.stats
    assert stats["events_processed"] == 2 * txns
    # Without GC the graph holds ~2 nodes per transaction (txn + frontier);
    # with it, only the recent window plus the GC interval's worth survives.
    assert stats["txns_pruned"] > 0.95 * txns
    assert stats["nodes"] < 2_000
    assert stats["edges"] < 10_000
    # The witness shrinks with the graph: only live transactions remain.
    assert len(checker.linearization()) < 2_000


def test_gc_prunes_nothing_while_everything_is_concurrent(scheme):
    checker = IncrementalTCSChecker(scheme, gc=True, gc_interval=10_000)
    p1 = payload(reads=[("a", (0, ""))], writes=[("a", 1)], tiebreak="t1")
    p2 = payload(reads=[("b", (0, ""))], writes=[("b", 1)], tiebreak="t2")
    checker.observe_certify("t1", p1)
    checker.observe_certify("t2", p2)  # concurrent with t1, stays undecided
    checker.observe_decide("t1", Decision.COMMIT)
    assert checker.collect() == 0  # t2 was certified before decide(t1)
    assert checker.txns_pruned == 0
    checker.observe_decide("t2", Decision.COMMIT)
    checker.observe_certify("t3", payload(reads=[("c", (0, ""))], tiebreak="t3"))
    # t3 was certified after both decisions: both become collectable.
    assert checker.collect() > 0
    assert checker.txns_pruned == 2
    assert checker.ok


def test_gc_flags_conflict_with_retired_history(scheme):
    """A committed transaction that certification orders *before* retired
    history is an immediate real-time violation — the per-object horizon
    must keep flagging it after the writer's identity is gone."""
    stale = payload(reads=[("x", (0, ""))], writes=[("x", 0)], tiebreak="stale")
    fresh = payload(reads=[("x", (0, ""))], writes=[("x", 1)], tiebreak="fresh")

    def drive(checker):
        checker.observe_certify("t1", fresh)
        checker.observe_decide("t1", Decision.COMMIT)
        # t2 is certified strictly after decide(t1)...
        checker.observe_certify("t2", stale)
        collected = checker.collect()
        # ... but read the version t1 overwrote: committing it orders it
        # before t1 in the conflict graph — a conflict/real-time cycle.
        checker.observe_decide("t2", Decision.COMMIT)
        return collected

    plain = IncrementalTCSChecker(scheme)
    drive(plain)
    collected = IncrementalTCSChecker(scheme, gc=True, gc_interval=10_000)
    pruned = drive(collected)
    assert pruned > 0 and collected.txns_pruned == 1  # t1 really was retired
    assert not plain.ok and not collected.ok
    assert "garbage-collected" in collected.result().reason
    assert collected.result().cycle == ["t2"]


@pytest.mark.parametrize(
    "scheme_factory",
    [
        lambda: SerializabilityScheme(KeyHashSharding(SHARDS)),
        lambda: SnapshotIsolationScheme(KeyHashSharding(SHARDS)),
        lambda: _NoIndexScheme(KeyHashSharding(SHARDS)),
    ],
    ids=["serializability", "snapshot-isolation", "pairwise-fallback"],
)
def test_gc_differential_matches_unpruned_verdicts(scheme_factory):
    """Aggressive collection (every commit) must never change the verdict
    reached on the same history without collection — for the indexed schemes
    and for the pairwise fallback (which tracks retired ids instead)."""
    scheme = scheme_factory()
    verdicts = {True: 0, False: 0}
    for seed in range(40):
        history = _random_history(scheme, seed)
        plain = IncrementalTCSChecker(scheme, history=history).result()
        collected = IncrementalTCSChecker(
            scheme, history=history, gc=True, gc_interval=1
        ).result()
        assert plain.ok == collected.ok, (
            f"seed {seed}: plain={plain.ok} ({plain.reason}) "
            f"collected={collected.ok} ({collected.reason})"
        )
        verdicts[plain.ok] += 1
    assert verdicts[True] > 0 and verdicts[False] > 0


def test_pairwise_fallback_gc_drops_retired_entries():
    """The pairwise fallback really retires entries now: retired
    transactions leave the live scan (so it stays bounded by the undecided
    window instead of growing with history), the checker's retired-id set
    stays empty, and conflicts against retired history are still flagged
    via the RETIRED sentinel."""
    scheme = _NoIndexScheme(KeyHashSharding(SHARDS))
    checker = IncrementalTCSChecker(scheme, gc=True, gc_interval=16)
    uncollected = IncrementalTCSChecker(scheme)
    for i in range(400):
        p = payload(
            reads=[(f"k{i}", (0, ""))], writes=[(f"k{i}", i)], tiebreak=f"t{i}"
        )
        for each in (checker, uncollected):
            each.observe_certify(f"t{i}", p)
            each.observe_decide(f"t{i}", Decision.COMMIT)
    checker.collect()
    assert checker.ok and uncollected.ok  # differential: same verdict
    index = checker._conflicts
    assert isinstance(index, PairwiseConflictIndex)
    assert checker.txns_pruned >= 350
    # The un-collected index keeps all 400 entries; the collected one keeps
    # only the unretired tail (id entries are gone, distinct payloads stay
    # as the anonymous retired set used for RETIRED flagging).
    assert uncollected._conflicts.live_entries == 400
    assert index.live_entries <= 400 - checker.txns_pruned
    assert index.retired_payload_count == checker.txns_pruned
    # retire() returning True means the checker never falls back to
    # tracking retired ids itself.
    assert checker._retired_fallback is None
    # A late transaction ordered before retired history must still fail.
    stale = payload(reads=[("k0", (0, ""))], writes=[("k0", -1)], tiebreak="stale")
    checker.observe_certify("stale", stale)
    checker.observe_decide("stale", Decision.COMMIT)
    assert not checker.ok
    assert "garbage-collected" in checker.result().reason
    assert checker.result().cycle == ["stale"]


def test_pairwise_fallback_retire_unknown_txn_returns_false(scheme):
    index = PairwiseConflictIndex(scheme)
    a = payload(reads=[("x", (0, ""))], writes=[("x", 1)], tiebreak="a")
    index.register("ta", a)
    assert not index.retire("unknown", None)
    assert index.retire("ta", None)  # payload recovered from the entry
    assert index.live_entries == 0 and index.retired_payload_count == 1
    # Retiring deduplicates identical payloads (hashable frozen dataclass).
    index.register("tb", a)
    assert index.retire("tb", a)
    assert index.retired_payload_count == 1


def test_gc_through_scenario_runner():
    from repro.scenarios import ScenarioRunner, get_scenario

    spec = get_scenario("steady-state").with_overrides(check_gc=True)
    runner = ScenarioRunner(spec)
    result = runner.run()
    assert result.passed
    runner.checker.collect()  # final sweep regardless of the interval
    assert runner.checker.txns_pruned > 0
    assert runner.checker.stats["nodes"] < 2 * result.committed


def test_gc_stalls_visibly_behind_a_never_decided_transaction(scheme):
    """Exactness requires retaining everything a stuck (never-decided)
    transaction could still order against: collection must stop at its
    certify point — and the stats must make the stall observable."""
    checker = IncrementalTCSChecker(scheme, gc=True, gc_interval=10_000)
    stuck = payload(reads=[("s", (0, ""))], tiebreak="stuck")
    checker.observe_certify("stuck", stuck)  # certified before any commit
    versions = {"k": (0, "")}
    for i in range(50):
        p = TransactionPayload.make(
            reads=[("k", versions["k"])], writes=[("k", i)], tiebreak=f"t{i}"
        )
        checker.observe_certify(f"t{i}", p)
        checker.observe_decide(f"t{i}", Decision.COMMIT)
        versions["k"] = p.commit_version
    assert checker.collect() == 0  # pinned: "stuck" predates every decision
    stats = checker.stats
    assert stats["watermark"] == -1 and stats["undecided"] == 1
    assert stats["txns_pruned"] == 0
    # Once the stuck transaction decides, collection resumes in full.
    checker.observe_decide("stuck", Decision.ABORT)
    checker.observe_certify("t-after", payload(reads=[("z", (0, ""))], tiebreak="a"))
    assert checker.collect() > 0
    assert checker.stats["watermark"] > 0 and checker.stats["undecided"] == 1
    assert checker.txns_pruned == 50
    assert checker.ok
