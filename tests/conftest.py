"""Shared test helpers."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import pytest

from repro.core.serializability import (
    KeyHashSharding,
    SerializabilityScheme,
    TransactionPayload,
    Version,
    VERSION_ZERO,
)


def payload(
    reads: Iterable[Tuple[str, Version]] = (),
    writes: Iterable[Tuple[str, object]] = (),
    commit_version: Optional[Version] = None,
    tiebreak: str = "t",
) -> TransactionPayload:
    """Shorthand for building well-formed payloads in tests."""
    return TransactionPayload.make(
        reads=reads, writes=writes, commit_version=commit_version, tiebreak=tiebreak
    )


def rw_payload(key: str, version: int = 0, value: object = 1, tiebreak: str = "t") -> TransactionPayload:
    """A payload that reads ``key`` at ``version`` and writes it."""
    return payload(
        reads=[(key, (version, ""))], writes=[(key, value)], tiebreak=tiebreak
    )


def read_payload(key: str, version: int = 0) -> TransactionPayload:
    return payload(reads=[(key, (version, ""))])


@pytest.fixture
def two_shard_scheme() -> SerializabilityScheme:
    return SerializabilityScheme(KeyHashSharding(["shard-0", "shard-1"]))


def shard_key(scheme: SerializabilityScheme, shard: str, hint: str = "key") -> str:
    """Find a key that the scheme maps to the given shard."""
    for i in range(10_000):
        candidate = f"{hint}-{i}"
        if scheme.sharding.shard_of(candidate) == shard:
            return candidate
    raise RuntimeError(f"could not find a key for shard {shard}")
