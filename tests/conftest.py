"""Shared pytest fixtures.  Plain helper functions live in ``helpers.py``
(an importable module name; ``conftest`` would collide with
``benchmarks/conftest.py`` when pytest runs both directories)."""

from __future__ import annotations

import pytest

from repro.core.serializability import KeyHashSharding, SerializabilityScheme


@pytest.fixture
def two_shard_scheme() -> SerializabilityScheme:
    return SerializabilityScheme(KeyHashSharding(["shard-0", "shard-1"]))
