"""Unit tests for core protocol types."""

import pytest

from repro.core.types import (
    BOTTOM,
    Configuration,
    Decision,
    GlobalConfiguration,
    Phase,
    Status,
)


def test_decision_meet_operator():
    assert Decision.COMMIT.meet(Decision.COMMIT) is Decision.COMMIT
    assert Decision.COMMIT.meet(Decision.ABORT) is Decision.ABORT
    assert Decision.ABORT.meet(Decision.COMMIT) is Decision.ABORT
    assert Decision.ABORT.meet(Decision.ABORT) is Decision.ABORT


def test_decision_and_operator_is_meet():
    assert (Decision.COMMIT & Decision.ABORT) is Decision.ABORT
    assert (Decision.COMMIT & Decision.COMMIT) is Decision.COMMIT


def test_meet_all_empty_is_commit():
    assert Decision.meet_all([]) is Decision.COMMIT


def test_meet_all_aborts_if_any_abort():
    assert Decision.meet_all([Decision.COMMIT, Decision.ABORT, Decision.COMMIT]) is Decision.ABORT
    assert Decision.meet_all([Decision.COMMIT] * 5) is Decision.COMMIT


def test_decision_leq_order():
    assert Decision.ABORT.leq(Decision.COMMIT)
    assert Decision.ABORT.leq(Decision.ABORT)
    assert Decision.COMMIT.leq(Decision.COMMIT)
    assert not Decision.COMMIT.leq(Decision.ABORT)


def test_bottom_is_a_singleton_with_repr():
    from repro.core.types import _Bottom

    assert _Bottom() is BOTTOM
    assert repr(BOTTOM) == "⊥"


def test_configuration_leader_must_be_member():
    with pytest.raises(ValueError):
        Configuration(epoch=1, members=("a", "b"), leader="c")


def test_configuration_rejects_duplicate_members():
    with pytest.raises(ValueError):
        Configuration(epoch=1, members=("a", "a"), leader="a")


def test_configuration_followers():
    config = Configuration(epoch=1, members=("a", "b", "c"), leader="b")
    assert config.followers == ("a", "c")


def test_global_configuration_validates_leaders():
    with pytest.raises(ValueError):
        GlobalConfiguration(epoch=1, members={"s": ("a",)}, leaders={"s": "b"})


def test_global_configuration_queries():
    config = GlobalConfiguration(
        epoch=2,
        members={"s0": ("a", "b"), "s1": ("c", "d")},
        leaders={"s0": "a", "s1": "c"},
    )
    assert set(config.all_processes()) == {"a", "b", "c", "d"}
    assert config.shard_of("d") == "s1"
    assert config.shard_of("zz") is None
    assert config.followers("s0") == ("b",)


def test_enums_have_expected_values():
    assert Phase.START.value == "start"
    assert Phase.PREPARED.value == "prepared"
    assert Phase.DECIDED.value == "decided"
    assert Status.LEADER.value == "leader"
    assert Status.FOLLOWER.value == "follower"
    assert Status.RECONFIGURING.value == "reconfiguring"
