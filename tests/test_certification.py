"""Unit tests for the certification framework and its concrete schemes."""

import pytest

from repro.core.serializability import (
    EMPTY_PAYLOAD,
    ExplicitSharding,
    KeyHashSharding,
    SerializabilityScheme,
    SnapshotIsolationScheme,
    TransactionPayload,
    version_after,
    VERSION_ZERO,
)
from repro.core.types import Decision

from helpers import payload, rw_payload, read_payload, shard_key


# ----------------------------------------------------------------------
# payload well-formedness
# ----------------------------------------------------------------------
def test_payload_requires_written_objects_to_be_read():
    with pytest.raises(ValueError):
        TransactionPayload.make(reads=[], writes=[("x", 1)])


def test_payload_requires_commit_version_above_reads():
    with pytest.raises(ValueError):
        TransactionPayload.make(
            reads=[("x", (5, ""))], writes=[("x", 1)], commit_version=(5, "")
        )


def test_payload_rejects_two_versions_of_same_object():
    with pytest.raises(ValueError):
        TransactionPayload.make(reads=[("x", (1, "")), ("x", (2, ""))])


def test_payload_rejects_duplicate_writes():
    with pytest.raises(ValueError):
        TransactionPayload(
            read_set=frozenset([("x", (0, ""))]),
            write_set=frozenset([("x", 1), ("x", 2)]),
            commit_version=(1, ""),
        ).validate()


def test_payload_make_auto_versions():
    p = TransactionPayload.make(reads=[("x", (3, "a")), ("y", (1, "b"))], writes=[("x", 9)], tiebreak="me")
    assert p.commit_version == (4, "me")
    assert p.read_version("x") == (3, "a")
    assert p.read_version("zzz") is None
    assert p.read_objects == {"x", "y"}
    assert p.written_objects == {"x"}


def test_empty_payload_properties():
    assert EMPTY_PAYLOAD.is_empty()
    assert not rw_payload("x").is_empty()


def test_version_after():
    assert version_after([], "t") == (1, "t")
    assert version_after([(3, "a"), (7, "b")], "t") == (8, "t")
    assert VERSION_ZERO < version_after([], "t")


# ----------------------------------------------------------------------
# sharding functions
# ----------------------------------------------------------------------
def test_key_hash_sharding_is_deterministic_and_total():
    sharding = KeyHashSharding(["s0", "s1", "s2"])
    for key in ["a", "b", "account-7", "key-123"]:
        assert sharding.shard_of(key) == sharding.shard_of(key)
        assert sharding.shard_of(key) in {"s0", "s1", "s2"}


def test_key_hash_sharding_requires_shards():
    with pytest.raises(ValueError):
        KeyHashSharding([])


def test_explicit_sharding():
    sharding = ExplicitSharding({"x": "s0", "y": "s1"}, default="s1")
    assert sharding.shard_of("x") == "s0"
    assert sharding.shard_of("unknown") == "s1"
    strict = ExplicitSharding({"x": "s0"})
    with pytest.raises(KeyError):
        strict.shard_of("unknown")


# ----------------------------------------------------------------------
# serializability scheme: global f
# ----------------------------------------------------------------------
@pytest.fixture
def scheme():
    return SerializabilityScheme(KeyHashSharding(["shard-0", "shard-1"]))


def test_global_commit_when_no_conflicts(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = rw_payload("y", version=0, tiebreak="b")
    assert scheme.global_certify([t1], t2) is Decision.COMMIT


def test_global_abort_when_read_overwritten(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")  # writes x at version (1, a)
    t2 = rw_payload("x", version=0, tiebreak="b")  # read x at version 0 -> stale
    assert scheme.global_certify([t1], t2) is Decision.ABORT


def test_global_commit_when_read_version_is_current(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = payload(reads=[("x", t1.commit_version)], writes=[("x", 2)], tiebreak="b")
    assert scheme.global_certify([t1], t2) is Decision.COMMIT


def test_global_read_only_transaction_aborts_on_stale_read(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    stale_reader = read_payload("x", version=0)
    assert scheme.global_certify([t1], stale_reader) is Decision.ABORT


def test_global_empty_history_commits_everything(scheme):
    assert scheme.global_certify([], rw_payload("x")) is Decision.COMMIT


def test_empty_payload_always_commits(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    assert scheme.global_certify([t1], scheme.empty_payload()) is Decision.COMMIT
    for shard in scheme.shards():
        assert scheme.check_empty_payload_commits(shard, [t1])


# ----------------------------------------------------------------------
# serializability scheme: shard-local f_s and g_s
# ----------------------------------------------------------------------
def test_shard_local_check_ignores_other_shards(scheme):
    key0 = shard_key(scheme, "shard-0")
    key1 = shard_key(scheme, "shard-1")
    writer = rw_payload(key1, version=0, tiebreak="w")
    reader = read_payload(key1, version=0)
    # Shard 0 does not manage key1, so it sees no conflict.
    assert scheme.shard_certify_committed("shard-0", [writer], reader) is Decision.COMMIT
    assert scheme.shard_certify_committed("shard-1", [writer], reader) is Decision.ABORT


def test_prepared_check_aborts_read_write_conflict(scheme):
    key = shard_key(scheme, "shard-0")
    prepared_writer = rw_payload(key, version=0, tiebreak="p")
    reader = read_payload(key, version=0)
    assert scheme.shard_certify_prepared("shard-0", [prepared_writer], reader) is Decision.ABORT


def test_prepared_check_aborts_write_read_conflict(scheme):
    key = shard_key(scheme, "shard-0")
    prepared_reader = read_payload(key, version=0)
    writer = rw_payload(key, version=0, tiebreak="w")
    assert scheme.shard_certify_prepared("shard-0", [prepared_reader], writer) is Decision.ABORT


def test_prepared_check_commits_disjoint_transactions(scheme):
    key_a = shard_key(scheme, "shard-0", hint="alpha")
    key_b = shard_key(scheme, "shard-0", hint="beta")
    assert key_a != key_b
    prepared = rw_payload(key_a, version=0, tiebreak="p")
    other = rw_payload(key_b, version=0, tiebreak="o")
    assert scheme.shard_certify_prepared("shard-0", [prepared], other) is Decision.COMMIT


def test_vote_combines_committed_and_prepared_checks(scheme):
    key = shard_key(scheme, "shard-0")
    committed = [rw_payload(key, version=0, tiebreak="c")]
    fresh = payload(reads=[(key, committed[0].commit_version)], writes=[(key, 3)], tiebreak="f")
    assert scheme.vote("shard-0", committed, [], fresh) is Decision.COMMIT
    # A prepared conflicting transaction flips the vote to abort.
    prepared = [payload(reads=[(key, committed[0].commit_version)], writes=[(key, 9)], tiebreak="p")]
    assert scheme.vote("shard-0", committed, prepared, fresh) is Decision.ABORT


def test_projection_splits_payload_by_shard(scheme):
    key0 = shard_key(scheme, "shard-0")
    key1 = shard_key(scheme, "shard-1")
    combined = payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 2)],
        tiebreak="c",
    )
    proj0 = scheme.project(combined, "shard-0")
    proj1 = scheme.project(combined, "shard-1")
    assert proj0.read_objects == {key0} and proj0.written_objects == {key0}
    assert proj1.read_objects == {key1} and proj1.written_objects == {key1}
    assert proj0.commit_version == proj1.commit_version == combined.commit_version


def test_shards_of_uses_read_and_write_sets(scheme):
    key0 = shard_key(scheme, "shard-0")
    key1 = shard_key(scheme, "shard-1")
    assert scheme.shards_of(rw_payload(key0)) == {"shard-0"}
    multi = payload(reads=[(key0, (0, "")), (key1, (0, ""))], writes=[(key0, 1)])
    assert scheme.shards_of(multi) == {"shard-0", "shard-1"}
    assert scheme.shards_of(scheme.empty_payload()) == set()


def test_matching_condition_on_examples(scheme):
    key0 = shard_key(scheme, "shard-0")
    key1 = shard_key(scheme, "shard-1")
    committed = [rw_payload(key0, tiebreak="a"), rw_payload(key1, tiebreak="b")]
    for candidate in [
        read_payload(key0, version=0),
        rw_payload(key1, version=0, tiebreak="x"),
        payload(reads=[(key0, committed[0].commit_version)], writes=[(key0, 5)], tiebreak="y"),
    ]:
        assert scheme.check_matching(committed, candidate)


# ----------------------------------------------------------------------
# snapshot isolation scheme
# ----------------------------------------------------------------------
@pytest.fixture
def si_scheme():
    return SnapshotIsolationScheme(KeyHashSharding(["shard-0", "shard-1"]))


def test_si_allows_stale_reads_but_not_stale_writes(si_scheme):
    writer = rw_payload("x", version=0, tiebreak="w")
    stale_reader = read_payload("x", version=0)
    stale_writer = rw_payload("x", version=0, tiebreak="s")
    assert si_scheme.global_certify([writer], stale_reader) is Decision.COMMIT
    assert si_scheme.global_certify([writer], stale_writer) is Decision.ABORT


def test_si_prepared_check_only_write_write(si_scheme):
    key = "x"
    prepared_writer = rw_payload(key, version=0, tiebreak="p")
    shard = si_scheme.sharding.shard_of(key)
    reader = read_payload(key, version=0)
    other_writer = rw_payload(key, version=0, tiebreak="o")
    assert si_scheme.shard_certify_prepared(shard, [prepared_writer], reader) is Decision.COMMIT
    assert si_scheme.shard_certify_prepared(shard, [prepared_writer], other_writer) is Decision.ABORT


def test_si_weaker_than_serializability(scheme, si_scheme):
    """Everything serializability commits, snapshot isolation commits too."""
    writer = rw_payload("x", version=0, tiebreak="w")
    candidates = [
        read_payload("x", version=0),
        rw_payload("y", version=0, tiebreak="y"),
        payload(reads=[("x", writer.commit_version)], writes=[("x", 2)], tiebreak="z"),
    ]
    for candidate in candidates:
        if scheme.global_certify([writer], candidate) is Decision.COMMIT:
            assert si_scheme.global_certify([writer], candidate) is Decision.COMMIT
