"""Unit tests for the TCS specification: histories and the correctness checker."""

import pytest

from repro.core.serializability import KeyHashSharding, SerializabilityScheme
from repro.core.types import Decision
from repro.spec.checker import TCSChecker
from repro.spec.history import History

from helpers import payload, read_payload, rw_payload


@pytest.fixture
def scheme():
    return SerializabilityScheme(KeyHashSharding(["shard-0", "shard-1"]))


def checker(scheme):
    return TCSChecker(scheme)


# ----------------------------------------------------------------------
# history recording
# ----------------------------------------------------------------------
def test_history_records_events_in_order():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    history.record_decide("t1", Decision.COMMIT, time=5.0)
    assert [e.kind for e in history.events] == ["certify", "decide"]
    assert history.decision_of("t1") is Decision.COMMIT
    assert history.is_complete()
    assert history.committed() == ["t1"]


def test_history_rejects_double_certify():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    with pytest.raises(ValueError):
        history.record_certify("t1", rw_payload("x"), time=2.0)


def test_history_rejects_decide_without_certify():
    history = History()
    with pytest.raises(ValueError):
        history.record_decide("t1", Decision.COMMIT, time=1.0)


def test_history_pending_and_completeness():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    history.record_certify("t2", rw_payload("y"), time=1.0)
    history.record_decide("t1", Decision.ABORT, time=2.0)
    assert history.pending() == {"t2"}
    assert not history.is_complete()
    assert history.committed() == []


def test_history_duplicate_decide_is_idempotent():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    history.record_decide("t1", Decision.COMMIT, time=2.0)
    history.record_decide("t1", Decision.COMMIT, time=3.0)
    assert len([e for e in history.events if e.kind == "decide"]) == 1
    assert history.contradictions == []


def test_history_records_contradictions():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    history.record_decide("t1", Decision.COMMIT, time=2.0)
    history.record_decide("t1", Decision.ABORT, time=3.0)
    assert history.contradictions == [("t1", Decision.COMMIT, Decision.ABORT)]


def test_real_time_order():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    history.record_decide("t1", Decision.COMMIT, time=2.0)
    history.record_certify("t2", rw_payload("y"), time=3.0)
    history.record_decide("t2", Decision.COMMIT, time=4.0)
    assert history.real_time_precedes("t1", "t2")
    assert not history.real_time_precedes("t2", "t1")
    assert history.real_time_pairs() == [("t1", "t2")]


def test_concurrent_transactions_have_no_real_time_order():
    history = History()
    history.record_certify("t1", rw_payload("x"), time=1.0)
    history.record_certify("t2", rw_payload("y"), time=1.0)
    history.record_decide("t1", Decision.COMMIT, time=2.0)
    history.record_decide("t2", Decision.COMMIT, time=2.0)
    assert history.real_time_pairs() == []


# ----------------------------------------------------------------------
# checker
# ----------------------------------------------------------------------
def _sequential(scheme, entries):
    """Build a sequential history certify/decide one at a time."""
    history = History()
    time = 0.0
    for txn, p, decision in entries:
        history.record_certify(txn, p, time)
        time += 1
        history.record_decide(txn, decision, time)
        time += 1
    return history


def test_checker_accepts_conflict_free_history(scheme):
    history = _sequential(
        scheme,
        [
            ("t1", rw_payload("x", tiebreak="a"), Decision.COMMIT),
            ("t2", rw_payload("y", tiebreak="b"), Decision.COMMIT),
        ],
    )
    result = checker(scheme).check(history)
    assert result.ok
    assert set(result.linearization) == {"t1", "t2"}


def test_checker_accepts_version_chain(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = payload(reads=[("x", t1.commit_version)], writes=[("x", 2)], tiebreak="b")
    history = _sequential(
        scheme, [("t1", t1, Decision.COMMIT), ("t2", t2, Decision.COMMIT)]
    )
    assert checker(scheme).check(history).ok


def test_checker_rejects_two_committed_stale_writers(scheme):
    """Two transactions that both read x@0 and both write x cannot both commit."""
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = rw_payload("x", version=0, tiebreak="b")
    history = History()
    history.record_certify("t1", t1, 0.0)
    history.record_certify("t2", t2, 0.0)
    history.record_decide("t1", Decision.COMMIT, 1.0)
    history.record_decide("t2", Decision.COMMIT, 1.0)
    result = checker(scheme).check(history)
    assert not result.ok
    assert result.cycle


def test_checker_respects_real_time_order(scheme):
    """A committed stale read is fine if concurrent, but not if it started
    after the conflicting writer was already decided."""
    writer = rw_payload("x", version=0, tiebreak="w")
    stale_reader = read_payload("x", version=0)
    # Concurrent: reader certified before the writer's decision -> legal
    # linearization puts the reader first.
    history = History()
    history.record_certify("w", writer, 0.0)
    history.record_certify("r", stale_reader, 0.0)
    history.record_decide("w", Decision.COMMIT, 1.0)
    history.record_decide("r", Decision.COMMIT, 1.0)
    assert checker(scheme).check(history).ok
    # Real-time ordered: reader certified after the writer decided -> cannot
    # be legally linearized before it -> violation.
    late = History()
    late.record_certify("w", writer, 0.0)
    late.record_decide("w", Decision.COMMIT, 1.0)
    late.record_certify("r", stale_reader, 2.0)
    late.record_decide("r", Decision.COMMIT, 3.0)
    result = checker(scheme).check(late)
    assert not result.ok


def test_checker_ignores_aborted_transactions(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = rw_payload("x", version=0, tiebreak="b")
    history = _sequential(
        scheme, [("t1", t1, Decision.COMMIT), ("t2", t2, Decision.ABORT)]
    )
    assert checker(scheme).check(history).ok


def test_checker_flags_contradictory_decisions(scheme):
    history = History()
    history.record_certify("t1", rw_payload("x"), 0.0)
    history.record_decide("t1", Decision.COMMIT, 1.0)
    history.record_decide("t1", Decision.ABORT, 2.0)
    result = checker(scheme).check(history)
    assert not result.ok
    assert "contradictory" in result.reason


def test_checker_empty_history_ok(scheme):
    assert checker(scheme).check(History()).ok


def test_exhaustive_checker_agrees_with_graph_checker(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = rw_payload("y", version=0, tiebreak="b")
    t3 = read_payload("x", version=0)
    history = History()
    for name, p in [("t1", t1), ("t2", t2), ("t3", t3)]:
        history.record_certify(name, p, 0.0)
    for name in ["t1", "t2", "t3"]:
        history.record_decide(name, Decision.COMMIT, 1.0)
    graph = checker(scheme).check(history)
    brute = checker(scheme).check_exhaustive(history)
    assert graph.ok == brute.ok is True


def test_exhaustive_checker_rejects_impossible_history(scheme):
    t1 = rw_payload("x", version=0, tiebreak="a")
    t2 = rw_payload("x", version=0, tiebreak="b")
    history = History()
    history.record_certify("t1", t1, 0.0)
    history.record_certify("t2", t2, 0.0)
    history.record_decide("t1", Decision.COMMIT, 1.0)
    history.record_decide("t2", Decision.COMMIT, 1.0)
    assert not checker(scheme).check_exhaustive(history).ok


def test_exhaustive_checker_size_limit(scheme):
    history = History()
    for i in range(9):
        history.record_certify(f"t{i}", rw_payload(f"k{i}", tiebreak=str(i)), 0.0)
        history.record_decide(f"t{i}", Decision.COMMIT, 1.0)
    with pytest.raises(ValueError):
        checker(scheme).check_exhaustive(history, limit=8)


def test_check_decisions_unique(scheme):
    history = History()
    history.record_certify("t1", rw_payload("x"), 0.0)
    history.record_decide("t1", Decision.COMMIT, 1.0)
    assert checker(scheme).check_decisions_unique(history).ok
