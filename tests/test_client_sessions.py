"""Unit and integration tests for the resilient client-session layer:
coordinator routing, timeout-driven re-submission with failover,
duplicate-safe certification, and configuration-change awareness."""

import pytest

from repro.baselines.cluster import BaselineCluster
from repro.client import ClientSession, CoordinatorRouter, RetryPolicy, StaticRouter
from repro.cluster import Cluster
from repro.core.messages import CertifyRequest, TxnDecision
from repro.core.types import Decision

from helpers import rw_payload, shard_key


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError, match="timeout"):
        RetryPolicy(timeout=-1.0)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(timeout=1.0, backoff=0.0)
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(timeout=1.0, max_attempts=0)
    assert not RetryPolicy().enabled
    assert RetryPolicy(timeout=5.0).enabled


def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(timeout=10.0, backoff=2.0, max_attempts=4)
    assert [policy.delay(attempt) for attempt in (1, 2, 3)] == [10.0, 20.0, 40.0]


# ----------------------------------------------------------------------
# CoordinatorRouter
# ----------------------------------------------------------------------
def _router():
    return CoordinatorRouter(
        shards=["shard-0", "shard-1"],
        members={"shard-0": ("a0", "a1"), "shard-1": ("b0", "b1")},
        leaders={"shard-0": "a0", "shard-1": "b0"},
        epochs={"shard-0": 1, "shard-1": 1},
    )


def test_router_prefers_uninvolved_shards():
    router = _router()
    for _ in range(8):
        assert router.pick(["shard-0"]) in ("b0", "b1")
    # Every shard involved: fall back to involved members.
    assert router.pick(["shard-0", "shard-1"]) in ("a0", "a1", "b0", "b1")


def test_router_failover_excludes_tried_coordinators():
    router = _router()
    first = router.pick(["shard-0"])
    second = router.pick(["shard-0"], exclude=(first,))
    assert second != first
    # With everything tried, exclusion is dropped rather than failing.
    assert router.pick(["shard-0"], exclude=("b0", "b1")) in ("b0", "b1")


def test_router_applies_config_changes_monotonically():
    router = _router()
    router.note_config_change("shard-1", 2, ("b1", "spare"), "b1")
    assert router.members["shard-1"] == ("b1", "spare")
    assert router.leaders["shard-1"] == "b1"
    # A stale (lower-epoch) update must not regress the view.
    router.note_config_change("shard-1", 1, ("b0", "b1"), "b0")
    assert router.members["shard-1"] == ("b1", "spare")
    assert router.epochs["shard-1"] == 2


def test_static_router_round_robins():
    router = StaticRouter(["c0", "c1"])
    picks = {router.pick([]) for _ in range(4)}
    assert picks == {"c0", "c1"}
    assert router.pick([], exclude=("c0",)) == "c1"
    with pytest.raises(ValueError):
        StaticRouter([])


# ----------------------------------------------------------------------
# session failover after a coordinator crash
# ----------------------------------------------------------------------
def test_session_resubmits_after_coordinator_crash():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=7,
        retry=RetryPolicy(timeout=15.0, backoff=2.0, max_attempts=4),
    )
    session = cluster.sessions[0]
    key = shard_key(cluster.scheme, "shard-0")
    coordinator = cluster.members_of("shard-1")[0]
    cluster.crash(coordinator)  # dies before the request arrives
    txn = cluster.submit(rw_payload(key, tiebreak="t"), coordinator=coordinator)
    assert cluster.run_until_decided([txn])
    assert cluster.history.decision_of(txn) is Decision.COMMIT
    assert session.retries >= 1
    assert session.failovers >= 1
    assert session.inflight == 0  # timer cancelled on decision
    stats = cluster.retry_stats()
    assert stats.retries == session.retries
    assert stats.orphaned == 0


def test_session_orphans_after_max_attempts():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=7,
        retry=RetryPolicy(timeout=10.0, backoff=1.0, max_attempts=2),
    )
    # Nobody can answer: every replica is dead.
    for replica in cluster.replicas.values():
        cluster.crash(replica.pid)
    txn = cluster.submit(rw_payload("k", tiebreak="t"))
    cluster.run()
    session = cluster.sessions[0]
    assert cluster.history.decision_of(txn) is None
    assert session.orphaned == [txn]
    assert cluster.retry_stats().orphaned == 1
    assert session.retries == 1  # one re-submission, then gave up


def test_timeout_config_refresh_throttles_by_backed_off_window():
    """The refresh throttle compares against the *current* attempt's backoff
    window, not the base timeout — a late-attempt timeout whose window is
    ``delay(attempts)`` long must not re-read the configuration every base
    timeout (the old rule multiplied config-service traffic under backoff)."""
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=7,
        retry=RetryPolicy(timeout=10.0, backoff=3.0, max_attempts=9),
    )
    session = cluster.sessions[0]
    key = shard_key(cluster.scheme, "shard-0")
    for pid in list(cluster.members_of("shard-0")):
        cluster.crash(pid)  # nobody can decide: the submission stays in flight
    txn = cluster.submit(rw_payload(key, tiebreak="t"))
    state = session._inflight[txn]
    state.timer.cancel()  # drive _on_timeout by hand below
    state.attempts = 3  # current backoff window: delay(3) = 90 delays
    session._last_refresh_at = cluster.scheduler.now
    cluster.scheduler.schedule(20.0, lambda: None)
    cluster.run()  # 20 delays since the last refresh: > base timeout, < window
    session._on_timeout(txn)
    assert session.config_refreshes == 0  # throttled: the window is 90 long
    state.timer.cancel()
    state.attempts = 3  # _on_timeout advanced it; restore the same window
    cluster.scheduler.schedule(95.0, lambda: None)
    cluster.run()
    session._on_timeout(txn)
    assert session.config_refreshes == 1  # a full window elapsed: allowed


def test_late_decision_resurrects_orphan():
    """A decision that straggles in after the session gave the transaction
    up means nothing was lost: the orphan count must be corrected."""
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=7,
        retry=RetryPolicy(timeout=10.0, backoff=1.0, max_attempts=2),
    )
    for replica in cluster.replicas.values():
        cluster.crash(replica.pid)
    txn = cluster.submit(rw_payload("k", tiebreak="t"))
    cluster.run()
    session = cluster.sessions[0]
    assert session.orphaned == [txn]
    cluster.clients[0].on_txn_decision(
        TxnDecision(txn=txn, decision=Decision.COMMIT), "late-coordinator"
    )
    assert session.orphaned == []
    assert cluster.retry_stats().orphaned == 0
    assert cluster.history.decision_of(txn) is Decision.COMMIT


def test_duplicate_requests_are_deduplicated_not_recertified():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=3)
    payload = rw_payload("dup", tiebreak="dup")
    coordinator_pid = cluster.members_of("shard-1")[0]
    txn = cluster.submit(payload, coordinator=coordinator_pid)
    assert cluster.run_until_decided([txn])
    coordinator = cluster.replicas[coordinator_pid]
    entry = coordinator.coordinated(txn)
    assert entry is not None and entry.decided
    slots_before = dict(cluster.replicas[cluster.leader_of("shard-0")].slot_of)

    # A duplicate arrives after the decision: the coordinator must re-answer
    # from the decision cache without re-driving certification.
    client = cluster.clients[0]
    client.send(coordinator_pid, CertifyRequest(txn=txn, payload=payload, request_id=2))
    cluster.run()
    assert coordinator.duplicate_certify_requests == 1
    assert client.duplicate_decisions >= 1
    assert cluster.history.contradictions == []
    slots_after = dict(cluster.replicas[cluster.leader_of("shard-0")].slot_of)
    assert slots_after == slots_before  # no new certification slots


def test_duplicate_to_unrelated_member_answers_from_slot_cache():
    """A retry can land at a replica that never coordinated the transaction
    but is a member of an involved shard with the decision persisted: it
    answers from its own certification order."""
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=3)
    key = shard_key(cluster.scheme, "shard-0")
    payload = rw_payload(key, tiebreak="t")
    txn = cluster.submit(payload, coordinator=cluster.members_of("shard-1")[0])
    assert cluster.run_until_decided([txn])
    cluster.run()
    member = cluster.replicas[cluster.leader_of("shard-0")]
    assert member.coordinated(txn) is None
    cluster.clients[0].send(member.pid, CertifyRequest(txn=txn, payload=payload, request_id=2))
    cluster.run()
    assert member.duplicate_certify_requests == 1
    assert cluster.history.contradictions == []


def test_aggressive_timeout_duplicates_are_safe_end_to_end():
    """Sub-RTT timeouts force concurrent duplicate submissions to several
    coordinators; certification must stay exactly-once-decided."""
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=11,
        retry=RetryPolicy(timeout=2.0, backoff=1.0, max_attempts=6),
    )
    payloads = [rw_payload(f"k{i}", tiebreak=f"k{i}") for i in range(20)]
    txns = [cluster.submit(p) for p in payloads]
    assert cluster.run_until_decided(txns)
    cluster.run()  # drain every duplicate answer
    assert cluster.history.contradictions == []
    assert all(cluster.history.decision_of(t) is not None for t in txns)
    stats = cluster.retry_stats()
    assert stats.retries > 0
    assert stats.duplicate_requests > 0
    result, violations = cluster.check()
    assert result.ok and violations == []


# ----------------------------------------------------------------------
# configuration-change awareness
# ----------------------------------------------------------------------
def test_sessions_learn_about_reconfigurations():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=21,
        retry=RetryPolicy(timeout=50.0),
    )
    assert cluster.router.epochs["shard-0"] == 1
    crashed = cluster.crash_follower("shard-0")
    cluster.reconfigure("shard-0", suspects=[crashed])
    # The configuration service pushed CONFIG_CHANGE to the subscribed
    # clients; the shared router follows the new epoch and membership.
    assert cluster.router.epochs["shard-0"] == 2
    assert crashed not in cluster.router.members["shard-0"]
    assert cluster.router.config_updates >= 1


def test_timeout_refreshes_configuration_view():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=5,
        retry=RetryPolicy(timeout=12.0, backoff=2.0, max_attempts=4),
    )
    session = cluster.sessions[0]
    key = shard_key(cluster.scheme, "shard-0")
    coordinator = cluster.members_of("shard-1")[0]
    cluster.crash(coordinator)
    txn = cluster.submit(rw_payload(key, tiebreak="t"), coordinator=coordinator)
    assert cluster.run_until_decided([txn])
    assert session.config_refreshes >= 1


def test_without_retry_behaviour_is_unchanged():
    """Sessions are inert with a disabled policy: no timers, no metric
    drift, and the legacy coordinator picking stays in place."""
    with_sessions = Cluster(num_shards=2, replicas_per_shard=2, seed=9)
    payloads = [rw_payload(f"k{i}", tiebreak=f"k{i}") for i in range(10)]
    decisions = with_sessions.certify_many(payloads)
    assert all(d is not None for d in decisions.values())
    stats = with_sessions.retry_stats()
    assert stats.retries == stats.failovers == stats.orphaned == 0
    assert stats.duplicate_requests == 0


# ----------------------------------------------------------------------
# RDMA protocol parity
# ----------------------------------------------------------------------
def test_rdma_sessions_failover_and_dedup():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        protocol="rdma",
        seed=13,
        retry=RetryPolicy(timeout=15.0, backoff=2.0, max_attempts=4),
    )
    key = shard_key(cluster.scheme, "shard-0")
    coordinator = cluster.members_of("shard-1")[0]
    cluster.crash(coordinator)
    txn = cluster.submit(rw_payload(key, tiebreak="t"), coordinator=coordinator)
    assert cluster.run_until_decided([txn])
    assert cluster.history.decision_of(txn) is Decision.COMMIT
    assert cluster.retry_stats().retries >= 1


# ----------------------------------------------------------------------
# 2PC-over-Paxos baseline parity
# ----------------------------------------------------------------------
def test_baseline_sessions_and_dedup():
    cluster = BaselineCluster(
        num_shards=2,
        failures_tolerated=1,
        num_coordinators=2,
        seed=17,
        retry=RetryPolicy(timeout=4.0, backoff=1.0, max_attempts=5),
    )
    payloads = [rw_payload(f"k{i}", tiebreak=f"k{i}") for i in range(10)]
    txns = [cluster.submit(p) for p in payloads]
    assert cluster.run_until_decided(txns)
    cluster.run()
    assert all(cluster.history.decision_of(t) is not None for t in txns)
    assert cluster.history.contradictions == []
    stats = cluster.retry_stats()
    assert stats.retries > 0  # the 4-delay timeout is below the 2PC path
    assert stats.orphaned == 0
    check, _ = cluster.check()
    assert check.ok


def test_baseline_duplicate_answered_from_decision_cache():
    cluster = BaselineCluster(num_shards=2, failures_tolerated=1, seed=19)
    payload = rw_payload("k", tiebreak="k")
    txn = cluster.submit(payload)
    assert cluster.run_until_decided([txn])
    cluster.run()
    coordinator = cluster.coordinators[0]
    cluster.clients[0].send(coordinator.pid, CertifyRequest(txn=txn, payload=payload, request_id=2))
    cluster.run()
    assert coordinator.duplicate_certify_requests == 1
    assert cluster.history.contradictions == []
