"""Tests specific to the RDMA-based protocol (Figures 7-8)."""

import pytest

from repro.cluster import Cluster
from repro.core.types import Decision, Status

from helpers import payload, rw_payload, shard_key


@pytest.fixture
def cluster():
    return Cluster(num_shards=2, replicas_per_shard=2, protocol="rdma", seed=41)


def test_initial_members_have_open_connections(cluster):
    all_members = [pid for shard in cluster.shards for pid in cluster.members_of(shard)]
    for pid in all_members:
        replica = cluster.replica(pid)
        assert replica.rdma.connections == set(all_members) - {pid}


def test_followers_persist_votes_without_accept_ack_messages(cluster):
    txn = cluster.submit(rw_payload("x", tiebreak="a"))
    cluster.run_until_decided([txn])
    cluster.run()
    stats = cluster.message_stats
    # No ACCEPT_ACK messages exist in the RDMA protocol: followers are
    # persisted by one-sided writes and NIC-level acks.
    assert stats.sent_by_type.get("AcceptAck", 0) == 0
    assert stats.sent_by_type.get("RdmaWrite", 0) > 0
    assert stats.sent_by_type.get("RdmaAck", 0) > 0


def test_global_reconfiguration_bumps_every_shard(cluster):
    cluster.certify(rw_payload("x", tiebreak="a"))
    crashed = cluster.crash_follower("shard-1")
    assert cluster.reconfigure(initiator=cluster.leader_of("shard-0"), suspects=[crashed])
    config = cluster.config_service.last_configuration()
    assert config.epoch == 2
    # Every live replica of every shard moved to the new system-wide epoch.
    for shard in cluster.shards:
        for pid in config.members[shard]:
            assert cluster.replica(pid).epoch == 2
    assert crashed not in config.members["shard-1"]


def test_certification_continues_after_global_reconfiguration(cluster):
    first = rw_payload("x", version=0, tiebreak="a")
    assert cluster.certify(first) is Decision.COMMIT
    crashed = cluster.crash_follower("shard-0")
    assert cluster.reconfigure(initiator=cluster.leader_of("shard-1"), suspects=[crashed])
    # Conflict detection survives: a stale rewrite of x aborts, a fresh one commits.
    assert cluster.certify(rw_payload("x", version=0, tiebreak="stale")) is Decision.ABORT
    fresh = payload(reads=[("x", first.commit_version)], writes=[("x", 2)], tiebreak="b")
    assert cluster.certify(fresh) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_leader_crash_recovered_by_global_reconfiguration(cluster):
    assert cluster.certify(rw_payload("x", tiebreak="a")) is Decision.COMMIT
    crashed = cluster.crash_leader("shard-0")
    initiator = cluster.leader_of("shard-1")
    assert cluster.reconfigure(initiator=initiator, suspects=[crashed])
    config = cluster.config_service.last_configuration()
    assert config.leaders["shard-0"] != crashed
    assert cluster.certify(rw_payload("y", tiebreak="b")) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_probed_processes_close_connections(cluster):
    """Closing RDMA connections on PROBE is what restores safety (Section 5)."""
    follower = cluster.followers_of("shard-0")[0]
    replica = cluster.replica(follower)
    assert replica.rdma.connections  # open initially
    cluster.reconfigure(initiator=cluster.leader_of("shard-1"), run=False)
    # Run just far enough for probes to arrive.
    cluster.run(max_time=5.0)
    assert replica.status in (Status.RECONFIGURING, Status.FOLLOWER, Status.LEADER)
    # After the reconfiguration completes, connections are re-established to
    # the members of the new configuration.
    cluster.run()
    config = cluster.config_service.last_configuration()
    expected_peers = set(config.all_processes())
    if follower in expected_peers:
        assert replica.rdma.connections <= expected_peers
        assert replica.rdma.connections  # reconnected


def test_new_leader_flushes_before_state_transfer(cluster):
    """The flush() call on NEW_CONFIG means every write acked before the
    reconfiguration is reflected in the state the new leader transfers."""
    txn = cluster.submit(rw_payload("x", tiebreak="a"))
    cluster.run_until_decided([txn])
    cluster.run()
    crashed = cluster.crash_leader("shard-0")
    cluster.reconfigure(initiator=cluster.leader_of("shard-1"), suspects=[crashed])
    config = cluster.config_service.last_configuration()
    for pid in config.members["shard-0"]:
        replica = cluster.replica(pid)
        assert txn in replica.certification_order()


def test_rdma_history_correct_under_concurrent_conflicts(cluster):
    conflicting = [rw_payload("hot", version=0, tiebreak=str(i)) for i in range(5)]
    disjoint = [rw_payload(f"k{i}", tiebreak=f"d{i}") for i in range(5)]
    decisions = cluster.certify_many(conflicting + disjoint)
    commits = [d for d in decisions.values() if d is Decision.COMMIT]
    assert len(commits) == 1 + 5
    result, violations = cluster.check()
    assert result.ok and violations == []
