"""Tests for the scenario engine: spec validation, fault scheduling,
decision watchers, determinism and the CLI."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster, ProtocolSpec, protocol_names, protocol_spec, register_protocol
from repro.core.serializability import TransactionPayload
from repro.core.types import Decision
from repro.scenarios import (
    DEFAULT_GRID,
    FaultStep,
    LatencySpec,
    RetrySpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    run_latency_sweep,
    run_scenario,
    scenario_names,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.spec.history import History


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_protocol():
    with pytest.raises(ScenarioError, match="unknown protocol"):
        ScenarioSpec(name="x", protocol="carrier-pigeon").validate()


def test_spec_rejects_unknown_fault_action():
    with pytest.raises(ScenarioError, match="unknown fault action"):
        FaultStep(at=1.0, action="set-on-fire").validate()


def test_spec_rejects_shardless_crash_leader():
    with pytest.raises(ScenarioError, match="requires a shard"):
        FaultStep(at=1.0, action="crash-leader").validate()


def test_spec_rejects_late_channel_delay():
    with pytest.raises(ScenarioError, match="setup step"):
        FaultStep(at=5.0, action="delay-channel", src="a", dst="b", delay=1.0).validate()


def test_spec_rejects_baseline_with_faults():
    spec = ScenarioSpec(
        name="x",
        protocol="2pc-paxos",
        replicas_per_shard=3,
        faults=(FaultStep(at=1.0, action="crash-leader", shard="shard-0"),),
    )
    with pytest.raises(ScenarioError, match="baseline"):
        spec.validate()


def test_spec_rejects_bad_workload():
    with pytest.raises(ScenarioError, match="writes_per_txn"):
        WorkloadSpec(kind="uniform", reads_per_txn=1, writes_per_txn=2).validate()
    with pytest.raises(ScenarioError, match="unknown workload kind"):
        WorkloadSpec(kind="chaos").validate()
    with pytest.raises(ScenarioError, match="coordinator"):
        WorkloadSpec(kind="uniform", coordinator="leader:shard-0").validate()


def test_with_overrides_revalidates():
    spec = get_scenario("steady-state")
    with pytest.raises(ScenarioError):
        spec.with_overrides(protocol="nope")
    assert spec.with_overrides(seed=9).seed == 9
    # The original is untouched (specs are frozen values).
    assert spec.seed != 9 or spec is not spec.with_overrides(seed=9)


def test_fault_schedule_orders_by_time_then_declaration():
    spec = ScenarioSpec(
        name="x",
        faults=(
            FaultStep(at=20.0, action="retry-stalled"),
            FaultStep(at=0.0, action="heal"),
            FaultStep(at=20.0, action="reconfigure", shard="shard-0"),
            FaultStep(at=5.0, action="crash-leader", shard="shard-0"),
        ),
    )
    ordered = [(step.at, step.action) for step in spec.fault_schedule]
    assert ordered == [
        (0.0, "heal"),
        (5.0, "crash-leader"),
        (20.0, "retry-stalled"),
        (20.0, "reconfigure"),
    ]


# ----------------------------------------------------------------------
# fault execution
# ----------------------------------------------------------------------
def test_fault_schedule_executes_in_order():
    spec = ScenarioSpec(
        name="fault-order",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=40, batch=8, num_keys=64),
        faults=(
            FaultStep(at=20.5, action="crash-follower", shard="shard-0"),
            FaultStep(at=21.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=60.5, action="retry-stalled"),
        ),
    )
    runner = ScenarioRunner(spec)
    result = runner.run()
    assert result.passed
    kinds = [note.split(": ", 1)[1].split(" ")[0] for note in result.faults_executed]
    assert kinds == ["crash", "reconfigure", "retry"]
    times = [float(note.split(":", 1)[0][2:]) for note in result.faults_executed]
    assert times == sorted(times)
    # The reconfiguration auto-suspected the crashed follower and moved past it.
    assert runner.cluster.current_configuration("shard-0").epoch == 2


def test_setup_steps_apply_before_workload():
    spec = ScenarioSpec(
        name="setup-delay",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=5, batch=5, num_keys=16),
        faults=(
            FaultStep(at=0.0, action="delay-channel",
                      src="leader:shard-0", dst="follower:shard-0", delay=7.0),
        ),
    )
    runner = ScenarioRunner(spec)
    result = runner.run()
    assert result.passed
    assert result.faults_executed[0].startswith("t=0:")


def test_crash_leader_under_load_recovers_every_transaction():
    result = run_scenario(get_scenario("leader-crash-under-load"))
    assert result.passed
    assert result.undecided == 0
    assert result.committed > 0


def test_ablation_scenario_reports_expected_violation():
    result = run_scenario(get_scenario("ablation-safety-demo"))
    assert not result.safety_ok
    assert result.contradictions > 0
    assert result.passed  # unsafe was the expectation


# ----------------------------------------------------------------------
# check modes
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_check_mode():
    with pytest.raises(ScenarioError, match="unknown check_mode"):
        ScenarioSpec(name="x", check_mode="psychic").validate()


def test_check_mode_round_trip():
    """off / final / online agree on a safe run; the mode is carried through
    to the result and its dict form."""
    spec = get_scenario("steady-state").with_overrides(
        workload=replace(get_scenario("steady-state").workload, txns=40)
    )
    results = {
        mode: run_scenario(spec, check_mode=mode) for mode in ("off", "final", "online")
    }
    for mode, result in results.items():
        assert result.check_mode == mode
        assert result.as_dict()["check_mode"] == mode
        assert result.check_ok and result.passed
        assert result.check_reason == ""
    # The verdict-independent metrics are identical across modes.
    base = {k: v for k, v in results["off"].as_dict().items()
            if k not in ("check_mode", "check_reason")}
    for mode in ("final", "online"):
        other = {k: v for k, v in results[mode].as_dict().items()
                 if k not in ("check_mode", "check_reason")}
        assert other == base


def test_online_mode_flags_ablation_with_reason():
    result = run_scenario(get_scenario("ablation-safety-demo"), check_mode="online")
    assert not result.safety_ok
    assert result.passed
    assert "contradictory" in result.check_reason


def test_online_and_final_agree_under_faults():
    spec = get_scenario("leader-crash-under-load")
    online = run_scenario(spec, check_mode="online")
    final = run_scenario(spec, check_mode="final")
    assert online.check_ok == final.check_ok
    assert online.passed and final.passed


# ----------------------------------------------------------------------
# fault-matrix scenario pack
# ----------------------------------------------------------------------
def test_spec_rejects_partition_without_target():
    with pytest.raises(ScenarioError, match="requires a target"):
        FaultStep(at=1.0, action="partition").validate()


def test_spec_rejects_block_channel_without_endpoints():
    with pytest.raises(ScenarioError, match="requires src and dst"):
        FaultStep(at=1.0, action="block-channel", src="a").validate()


def test_scenario_pack_registered():
    names = set(scenario_names())
    assert {"follower-partition", "cascading-crashes",
            "config-service-outage", "closed-loop-think"} <= names


@pytest.mark.parametrize(
    "name", ["follower-partition", "cascading-crashes", "config-service-outage"]
)
def test_fault_matrix_scenarios_stay_safe(name):
    result = run_scenario(get_scenario(name))
    assert result.passed
    assert result.committed > 0
    assert result.faults_executed  # the schedule actually fired


def test_partition_blocks_messages_until_heal():
    spec = ScenarioSpec(
        name="partition-probe",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=30, batch=6, num_keys=64),
        faults=(
            FaultStep(at=10.5, action="partition", target="follower:shard-0"),
            FaultStep(at=60.5, action="heal"),
        ),
    )
    result = ScenarioRunner(spec).run()
    assert result.passed
    assert result.messages_sent > result.messages_delivered  # drops happened


# ----------------------------------------------------------------------
# closed-loop clients with think times
# ----------------------------------------------------------------------
def test_spec_rejects_negative_think_time_and_spanning_think():
    with pytest.raises(ScenarioError, match="think_time"):
        WorkloadSpec(think_time=-1.0).validate()
    with pytest.raises(ScenarioError, match="closed-loop"):
        WorkloadSpec(kind="spanning", think_time=2.0).validate()


def test_closed_loop_decides_every_transaction():
    result = run_scenario(get_scenario("closed-loop-think"))
    assert result.passed
    assert result.undecided == 0
    assert result.committed + result.aborted == result.txns_submitted == 120


def test_think_time_stretches_virtual_duration():
    base = get_scenario("steady-state").with_overrides(
        workload=replace(get_scenario("steady-state").workload, txns=40)
    )
    eager = ScenarioRunner(base.with_overrides(
        workload=replace(base.workload, think_time=0.001, sessions=8)
    )).run()
    thinky = ScenarioRunner(base.with_overrides(
        workload=replace(base.workload, think_time=10.0, sessions=8)
    )).run()
    assert eager.passed and thinky.passed
    assert thinky.duration > eager.duration


def test_closed_loop_is_deterministic():
    spec = get_scenario("closed-loop-think")
    first = ScenarioRunner(spec).run()
    second = ScenarioRunner(spec).run()
    assert first.as_dict() == second.as_dict()


# ----------------------------------------------------------------------
# latency sweeps and the WAN pack
# ----------------------------------------------------------------------
def test_spec_rejects_bad_latency():
    with pytest.raises(ScenarioError, match="unknown latency model"):
        ScenarioSpec(name="x", latency=LatencySpec(model="warp")).validate()


def test_latency_sweep_runs_grid_in_order():
    spec = get_scenario("steady-state").with_overrides(
        workload=replace(get_scenario("steady-state").workload, txns=30)
    )
    sweep = run_latency_sweep(spec)
    assert sweep.passed
    assert [label for label, _ in sweep.points] == [p.describe() for p in DEFAULT_GRID]
    assert len(sweep.curve()) == len(DEFAULT_GRID) >= 3
    # Every point ran the same workload; only the delay distribution varied.
    for _, result in sweep.points:
        assert result.txns_submitted == 30
        assert result.phases is not None
    assert sweep.result_for("unit").latency.mean == pytest.approx(6.0)
    with pytest.raises(KeyError):
        sweep.result_for("warp")


def test_latency_sweep_is_deterministic():
    import json

    spec = get_scenario("steady-state").with_overrides(
        workload=replace(get_scenario("steady-state").workload, txns=30)
    )
    grid = (
        LatencySpec(),
        LatencySpec(model="exponential", mean=1.0),
        LatencySpec(model="lognormal", mean=1.5, sigma=0.8),
    )
    first = run_latency_sweep(spec, grid)
    second = run_latency_sweep(spec, grid)
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )


def test_phase_breakdown_separates_protocol_from_network_cost():
    """Doubling every link delay (fixed:2 vs unit) must double the pure
    network phases while the certify phase scales with its message count —
    the property that makes sweep curves interpretable."""
    base = get_scenario("steady-state").with_overrides(
        workload=replace(get_scenario("steady-state").workload, txns=30)
    )
    unit = ScenarioRunner(base).run()
    doubled = ScenarioRunner(
        base.with_overrides(latency=LatencySpec(model="fixed", value=2.0))
    ).run()
    assert unit.phases.submit_to_certify.mean == pytest.approx(1.0)
    assert doubled.phases.submit_to_certify.mean == pytest.approx(2.0)
    assert doubled.phases.decide_to_client.mean == pytest.approx(
        2 * unit.phases.decide_to_client.mean
    )
    assert doubled.phases.certify_to_decide.mean == pytest.approx(
        2 * unit.phases.certify_to_decide.mean
    )


def test_wan_pack_registered():
    assert {"wan-steady-state", "wan-cross-region-contention",
            "wan-leader-crash", "wan-heavy-tail"} <= set(scenario_names())


@pytest.mark.parametrize(
    "name",
    ["wan-steady-state", "wan-cross-region-contention",
     "wan-leader-crash", "wan-heavy-tail"],
)
def test_wan_scenarios_stay_safe(name):
    result = run_scenario(get_scenario(name))
    assert result.passed
    assert result.committed > 0
    # The WAN pack decides everything: wan-leader-crash used to lose a few
    # certify requests in flight to the crashed coordinator, but the client
    # sessions now re-submit them after the timeout (see the scenario
    # description), so even it must reach zero undecided transactions.
    assert result.undecided == 0
    if name == "wan-leader-crash":
        assert result.retries > 0
        assert result.orphaned == 0


def test_wan_latency_reflects_cross_region_links():
    """The 3-region commit path costs several cross-region hops: client
    latency under the WAN model must be far above the unit-latency variant
    of the same workload."""
    wan = run_scenario(get_scenario("wan-steady-state"))
    unit = run_scenario(
        get_scenario("wan-steady-state"), latency=LatencySpec()
    )
    assert wan.passed and unit.passed
    assert wan.latency.mean > 2 * unit.latency.mean


# ----------------------------------------------------------------------
# the resilience pack: client sessions, failover, duplicate-safe delivery
# ----------------------------------------------------------------------
def test_resilience_pack_registered():
    assert {"coordinator-crash-storm", "failover-under-wan-tail",
            "duplicate-delivery-fuzz"} <= set(scenario_names())


def test_spec_rejects_bad_retry():
    with pytest.raises(ScenarioError, match="retry timeout"):
        ScenarioSpec(name="x", retry=RetrySpec(timeout=-1.0)).validate()
    with pytest.raises(ScenarioError, match="backoff"):
        ScenarioSpec(name="x", retry=RetrySpec(timeout=1.0, backoff=0.5)).validate()
    with pytest.raises(ScenarioError, match="max_attempts"):
        ScenarioSpec(name="x", retry=RetrySpec(timeout=1.0, max_attempts=0)).validate()


def test_retry_spec_describe():
    assert RetrySpec().describe() == "off"
    assert RetrySpec(timeout=30.0, backoff=1.5, max_attempts=6).describe() == (
        "timeout=30,backoff=1.5,max_attempts=6"
    )


@pytest.mark.parametrize(
    "name", ["coordinator-crash-storm", "failover-under-wan-tail"]
)
def test_failover_scenarios_decide_everything(name):
    result = run_scenario(get_scenario(name))
    assert result.passed
    assert result.undecided == 0
    assert result.orphaned == 0
    assert result.retries > 0  # sessions actually routed around the crashes
    assert result.failovers > 0
    assert result.committed > 0


def test_duplicate_delivery_fuzz_preserves_decision_uniqueness():
    result = run_scenario(get_scenario("duplicate-delivery-fuzz"))
    assert result.passed
    assert result.check_mode == "online"
    assert result.undecided == 0
    assert result.contradictions == 0
    # The sub-RTT timeout really did flood the coordinators with duplicates,
    # and they answered from decision caches instead of re-certifying.
    assert result.retries >= result.txns_submitted
    assert result.duplicate_requests > 0
    assert result.as_dict()["retry_model"].startswith("timeout=3")


def test_retry_metrics_are_zero_without_sessions():
    result = run_scenario(get_scenario("steady-state"))
    assert result.retry_model == "off"
    assert result.retries == result.failovers == result.orphaned == 0
    assert result.duplicate_requests == 0


def test_retry_scenarios_are_deterministic():
    spec = get_scenario("duplicate-delivery-fuzz")
    first = ScenarioRunner(spec).run()
    second = ScenarioRunner(spec).run()
    assert first.as_dict() == second.as_dict()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scenario,overrides",
    [
        ("steady-state", {"workload": replace(get_scenario("steady-state").workload, txns=40)}),
        ("rdma-steady-state", {"workload": replace(get_scenario("rdma-steady-state").workload, txns=40)}),
        ("ablation-safety-demo", {}),
    ],
    ids=["message-passing", "rdma", "broken-rdma"],
)
def test_same_seed_same_result(scenario, overrides):
    spec = get_scenario(scenario)
    if overrides:
        spec = spec.with_overrides(**overrides)
    first = ScenarioRunner(spec).run()
    second = ScenarioRunner(spec).run()
    # as_dict excludes wall-clock time; everything else must be identical.
    assert first.as_dict() == second.as_dict()


def test_different_seed_changes_workload():
    spec = get_scenario("hot-key-contention").with_overrides(
        workload=replace(get_scenario("hot-key-contention").workload, txns=40)
    )
    base = ScenarioRunner(spec).run()
    other = ScenarioRunner(spec.with_overrides(seed=99)).run()
    assert base.as_dict() != other.as_dict()


# ----------------------------------------------------------------------
# decision watchers
# ----------------------------------------------------------------------
def test_watcher_tracks_explicit_transactions():
    history = History()
    history.record_certify("t1", None, 0.0)
    history.record_certify("t2", None, 0.0)
    with history.watch(["t1", "t2"]) as watcher:
        assert not watcher.done
        history.record_decide("t1", Decision.COMMIT, 1.0)
        assert watcher.outstanding == 1
        history.record_decide("t2", Decision.ABORT, 2.0)
        assert watcher.done


def test_watcher_tracks_future_certifies_in_all_mode():
    history = History()
    with history.watch() as watcher:
        assert watcher.done  # nothing pending yet
        history.record_certify("t1", None, 0.0)
        assert not watcher.done
        history.record_decide("t1", Decision.COMMIT, 1.0)
        assert watcher.done
    # Closed: listeners removed, later events do not reach the watcher.
    history.record_certify("t2", None, 2.0)
    assert watcher.done


def test_client_decision_callbacks_fire_once_per_transaction():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=1)
    client = cluster.clients[0]
    seen = []

    def record(txn, decision):
        seen.append((txn, decision))

    client.add_decision_callback(record)
    payload = TransactionPayload.make(
        reads=[("k", (0, ""))], writes=[("k", 1)], tiebreak="t"
    )
    txn = cluster.submit(payload)
    assert cluster.run_until_decided([txn])
    cluster.run()  # drain duplicate decision deliveries
    assert seen == [(txn, Decision.COMMIT)]
    client.remove_decision_callback(record)
    second = cluster.submit(
        TransactionPayload.make(reads=[("j", (0, ""))], writes=[("j", 1)], tiebreak="u")
    )
    assert cluster.run_until_decided([second])
    assert len(seen) == 1  # removed callback no longer fires


def test_run_until_decided_does_not_rescan_history(monkeypatch):
    """The decision-watcher path: the per-event predicate must not evaluate
    the full history (the old implementation called ``decision_of`` once per
    transaction per fired event)."""
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=3)
    payloads = [
        TransactionPayload.make(
            reads=[(f"k{i}", (0, ""))], writes=[(f"k{i}", i)], tiebreak=str(i)
        )
        for i in range(20)
    ]
    txns = [cluster.submit(p) for p in payloads]

    calls = {"decision_of": 0, "certified": 0}
    original_decision_of = cluster.history.decision_of
    original_certified = cluster.history.certified

    def counting_decision_of(txn):
        calls["decision_of"] += 1
        return original_decision_of(txn)

    def counting_certified():
        calls["certified"] += 1
        return original_certified()

    monkeypatch.setattr(cluster.history, "decision_of", counting_decision_of)
    monkeypatch.setattr(cluster.history, "certified", counting_certified)
    assert cluster.run_until_decided(txns)
    events = cluster.scheduler.events_fired
    assert events > 50  # the run actually did work
    # Watcher setup checks each txn once; per-event cost is an O(1) counter.
    assert calls["decision_of"] <= len(txns)
    assert calls["certified"] == 0
    for txn in txns:
        assert original_decision_of(txn) is not None


# ----------------------------------------------------------------------
# protocol registry
# ----------------------------------------------------------------------
def test_protocol_registry_knows_all_variants():
    assert set(protocol_names()) >= {"message-passing", "rdma", "broken-rdma"}
    assert protocol_spec("rdma").global_config
    assert not protocol_spec("message-passing").global_config


def test_protocol_registry_rejects_duplicates_and_unknowns():
    with pytest.raises(ValueError, match="already registered"):
        register_protocol(
            ProtocolSpec(name="rdma", replica_cls=object, config_service_cls=object)
        )
    with pytest.raises(ValueError, match="unknown protocol"):
        protocol_spec("smoke-signals")
    with pytest.raises(ValueError, match="unknown protocol"):
        Cluster(protocol="smoke-signals")


def test_broken_rdma_post_build_opens_all_connections():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, protocol="broken-rdma")
    replica = next(iter(cluster.replicas.values()))
    assert len(replica.rdma.connections) == len(cluster.replicas) - 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert scenarios_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_cli_run_shorthand_and_overrides(capsys):
    assert scenarios_main(["steady-state", "--txns", "20", "--json"]) == 0
    import json

    data = json.loads(capsys.readouterr().out)
    assert data["txns_submitted"] == 20
    assert data["passed"] is True


def test_cli_check_mode_and_think_time_overrides(capsys):
    assert scenarios_main(
        ["steady-state", "--txns", "20", "--check-mode", "final",
         "--think-time", "2.0", "--json"]
    ) == 0
    import json

    data = json.loads(capsys.readouterr().out)
    assert data["check_mode"] == "final"
    assert data["passed"] is True


def test_cli_sweep(capsys):
    assert scenarios_main(
        ["sweep", "steady-state", "--txns", "20", "--protocols", "message-passing,rdma"]
    ) == 0
    out = capsys.readouterr().out
    assert out.count("scenario: steady-state") == 2


def test_cli_run_latency_override(capsys):
    assert scenarios_main(
        ["steady-state", "--txns", "20",
         "--latency", "lognormal:mean=1.5,sigma=0.8", "--json"]
    ) == 0
    import json

    data = json.loads(capsys.readouterr().out)
    assert data["latency_model"] == "lognormal(mean=1.5,sigma=0.8)"
    assert data["passed"] is True
    assert data["phases"]["certify_to_decide"]["mean"] > 0


def test_cli_latency_sweep_grid(capsys):
    assert scenarios_main(
        ["sweep", "steady-state", "--txns", "20",
         "--protocols", "message-passing",
         "--latency", "unit",
         "--latency", "uniform:low=0.5,high=1.5",
         "--latency", "lognormal:mean=1.5,sigma=0.8",
         "--json"]
    ) == 0
    import json

    data = json.loads(capsys.readouterr().out)
    sweep = data["message-passing"]
    assert sweep["passed"] is True
    assert [row["latency_model"] for row in sweep["curve"]] == [
        "unit", "uniform(low=0.5,high=1.5)", "lognormal(mean=1.5,sigma=0.8)"
    ]
    assert len(sweep["points"]) == 3


def test_cli_latency_sweep_is_deterministic(capsys):
    argv = ["sweep", "steady-state", "--txns", "20",
            "--protocols", "message-passing", "--latency", "default", "--json"]
    assert scenarios_main(argv) == 0
    first = capsys.readouterr().out
    assert scenarios_main(argv) == 0
    second = capsys.readouterr().out
    assert first == second  # byte-identical JSON, grid of 4 points
    import json

    assert len(json.loads(first)["message-passing"]["points"]) == 4


def test_cli_rejects_bad_latency_point(capsys):
    with pytest.raises(SystemExit) as excinfo:
        scenarios_main(["steady-state", "--latency", "warp:speed=9"])
    assert excinfo.value.code == 2
