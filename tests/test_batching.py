"""Tests for the protocol-level batching pipeline.

Covers the policy/batcher building blocks, end-to-end equivalence of the
batched and unbatched protocols (all three coordinator variants, validated
online and against the batch checker oracle), the retry/dedup interaction
(a retried transaction arriving while batching is active must be deduped
and re-answered from the decision caches), the batching scenario pack and
the ``sweep --batch`` driver/CLI.
"""

import json
from dataclasses import replace

import pytest

from repro.baselines.cluster import BaselineCluster
from repro.client import RetryPolicy
from repro.cluster import Cluster
from repro.core.batching import BatchPolicy, MessageBatcher
from repro.core.messages import CertifyRequest
from repro.core.types import Decision
from repro.runtime.events import FlushTimer, Scheduler
from repro.runtime.network import Network
from repro.runtime.process import Process
from repro.scenarios import (
    DEFAULT_BATCH_GRID,
    BatchSpec,
    ScenarioError,
    ScenarioRunner,
    get_scenario,
    parse_batch,
    parse_batch_grid,
    run_batch_sweep,
    run_scenario,
    scenario_names,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.spec.checker import TCSChecker

from helpers import rw_payload, shard_key


ADAPTIVE = BatchPolicy(size=8)
LINGER = BatchPolicy(size=8, linger=2.0, adaptive=False)


def distinct_payloads(n, prefix="k"):
    return [rw_payload(f"{prefix}{i}", value=i, tiebreak=f"t{i}") for i in range(n)]


# ----------------------------------------------------------------------
# policy validation
# ----------------------------------------------------------------------
def test_policy_disabled_by_default():
    assert not BatchPolicy().enabled
    assert not BatchPolicy(size=1).enabled
    assert BatchPolicy().describe() == "off"
    assert BatchPolicy(size=8).describe() == "size=8,adaptive"
    assert BatchPolicy(size=8, linger=1.5, adaptive=False).describe() == "size=8,linger=1.5"


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(size=-1),
        dict(size=8, linger=-1.0, adaptive=False),
        dict(size=8, linger=2.0, adaptive=True),  # adaptive excludes linger
        dict(size=8, linger=0.0, adaptive=False),  # no liveness without a cap
    ],
)
def test_policy_rejects_invalid_combinations(kwargs):
    with pytest.raises(ValueError):
        BatchPolicy(**kwargs)


def test_batch_spec_validation_maps_to_scenario_error():
    with pytest.raises(ScenarioError):
        BatchSpec(size=8, linger=2.0, adaptive=True).validate()
    spec = get_scenario("steady-state")
    with pytest.raises(ScenarioError):
        spec.with_overrides(batch=BatchSpec(size=-3))


# ----------------------------------------------------------------------
# batcher unit behaviour
# ----------------------------------------------------------------------
class _Recorder(Process):
    """Records every delivered message with its arrival time."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def handle(self, message, sender):  # bypass on_<type> dispatch
        self.received.append((self.now, message))


def _harness():
    scheduler = Scheduler()
    network = Network(scheduler)
    sender, receiver = _Recorder("src"), _Recorder("dst")
    network.register(sender)
    network.register(receiver)
    return scheduler, sender, receiver


def test_size_cap_flushes_immediately():
    scheduler, sender, receiver = _harness()
    batcher = MessageBatcher(sender, BatchPolicy(size=3), wrap=tuple)
    for i in range(3):
        batcher.add("dst", i)
    assert batcher.pending_messages == 0  # size cap flushed synchronously
    scheduler.run()
    assert receiver.received == [(1.0, (0, 1, 2))]
    assert batcher.batches_sent == 1 and batcher.messages_batched == 3
    assert batcher.size_counts == {3: 1}


def test_adaptive_flush_coalesces_the_instant():
    scheduler, sender, receiver = _harness()
    batcher = MessageBatcher(sender, BatchPolicy(size=100), wrap=tuple)
    batcher.add("dst", "a")
    batcher.add("dst", "b")
    assert batcher.pending_for("dst") == 2  # below cap: waits for the flush
    scheduler.run()
    # One batch, flushed at the end of instant 0, delivered one delay later.
    assert receiver.received == [(1.0, ("a", "b"))]


def test_linger_delays_the_flush():
    scheduler, sender, receiver = _harness()
    batcher = MessageBatcher(
        sender, BatchPolicy(size=100, linger=2.0, adaptive=False), wrap=tuple
    )
    batcher.add("dst", "a")
    batcher.add("dst", "b")
    scheduler.run()
    # Armed at t=0 by the first add, flushed at t=2, delivered at t=3.
    assert receiver.received == [(3.0, ("a", "b"))]


def test_flush_timer_is_idempotent_and_cancellable():
    scheduler = Scheduler()
    timer = FlushTimer(scheduler)
    fired = []
    timer.arm(5.0, fired.append, "first")
    timer.arm(1.0, fired.append, "second")  # ignored: already armed
    assert timer.armed
    timer.cancel()
    assert not timer.armed
    scheduler.run()
    assert fired == []
    timer.arm(1.0, fired.append, "third")
    scheduler.run()
    assert fired == ["third"]


def test_on_flush_hook_sees_the_batch_before_send():
    scheduler, sender, receiver = _harness()
    seen = []
    batcher = MessageBatcher(
        sender,
        BatchPolicy(size=2),
        wrap=tuple,
        on_flush=lambda dst, items: seen.append((dst, items)),
    )
    batcher.add("dst", 1)
    batcher.add("dst", 2)
    assert seen == [("dst", (1, 2))]


# ----------------------------------------------------------------------
# end-to-end equivalence: batching must be invisible to correctness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", [ADAPTIVE, LINGER], ids=["adaptive", "linger"])
@pytest.mark.parametrize("protocol", ["message-passing", "rdma"])
def test_batched_cluster_decides_everything_and_checks(protocol, policy):
    unbatched = Cluster(num_shards=3, replicas_per_shard=2, protocol=protocol)
    batched = Cluster(num_shards=3, replicas_per_shard=2, protocol=protocol, batch=policy)
    payloads = distinct_payloads(40)
    plain = unbatched.certify_many(list(payloads))
    decided = batched.certify_many(list(payloads))
    # Conflict-free workload: batching may not change a single decision.
    assert set(decided.values()) == {Decision.COMMIT}
    assert len(decided) == len(plain) == 40
    for cluster in (unbatched, batched):
        check, violations = cluster.check()
        assert check.ok and not violations
    assert batched.message_stats.total_sent < unbatched.message_stats.total_sent
    stats = batched.batch_stats()
    assert stats.batches > 0 and stats.mean_size > 1.0
    assert unbatched.batch_stats().batches == 0


@pytest.mark.parametrize("policy", [ADAPTIVE, LINGER], ids=["adaptive", "linger"])
def test_batched_baseline_decides_everything_and_checks(policy):
    unbatched = BaselineCluster(num_shards=2, failures_tolerated=1)
    batched = BaselineCluster(num_shards=2, failures_tolerated=1, batch=policy)
    payloads = distinct_payloads(40)
    plain = unbatched.certify_many(list(payloads))
    decided = batched.certify_many(list(payloads))
    assert set(decided.values()) == {Decision.COMMIT}
    assert len(decided) == len(plain) == 40
    check, _ = batched.check()
    assert check.ok
    assert batched.message_stats.total_sent < unbatched.message_stats.total_sent
    assert batched.batch_stats().batches > 0


@pytest.mark.parametrize(
    "batch",
    [BatchSpec(size=16), BatchSpec(size=16, linger=1.0, adaptive=False)],
    ids=["adaptive", "linger"],
)
def test_differential_batched_vs_unbatched_scenario_histories(batch):
    """The same contended scenario, batched and unbatched: both histories
    must pass the online checker *and* the batch-checker oracle — batching
    may reshape the schedule, never the semantics."""
    base = get_scenario("hot-key-contention")
    base = base.with_overrides(workload=replace(base.workload, txns=80))
    results = {}
    for label, spec in (("off", base), ("on", base.with_overrides(batch=batch))):
        runner = ScenarioRunner(spec)
        result = runner.run()
        assert result.passed and result.undecided == 0, label
        oracle = TCSChecker(runner.cluster.scheme).check(runner.cluster.history)
        assert oracle.ok, (label, oracle.reason)
        results[label] = result
    assert results["on"].messages_sent < results["off"].messages_sent
    assert results["on"].batches > 0


def test_adaptive_batching_adds_no_virtual_latency():
    """Flush-on-idle coalesces same-instant messages only, so the commit
    path stays the paper's message-delay count: client latency under unit
    delays is identical with and without batching."""
    base = get_scenario("steady-state")
    base = base.with_overrides(workload=replace(base.workload, txns=60))
    off = ScenarioRunner(base).run()
    on = ScenarioRunner(base.with_overrides(batch=BatchSpec(size=32))).run()
    assert on.latency.mean == off.latency.mean
    assert on.latency.p99 == off.latency.p99
    assert on.messages_sent < off.messages_sent
    assert on.phases.queue_wait is not None and on.phases.queue_wait.maximum == 0.0


def test_linger_batching_shows_up_as_queue_wait():
    base = get_scenario("steady-state")
    base = base.with_overrides(
        workload=replace(base.workload, txns=60),
        batch=BatchSpec(size=32, linger=2.0, adaptive=False),
    )
    result = ScenarioRunner(base).run()
    assert result.passed
    queue = result.phases.queue_wait
    assert queue is not None and 0.0 < queue.mean <= 2.0
    # The prepare-stage linger is accounted separately as queue_wait; the
    # certify phase keeps the 4-delay protocol path plus the ACCEPT relay's
    # own linger (every batching stage pays the time cap).
    assert 4.0 <= result.phases.certify_to_decide.mean <= 4.0 + 2.0
    # The client edges pay their own linger too: requests queue in the
    # client's batcher before the one-delay hop, replies in the
    # coordinator's.
    assert 1.0 <= result.phases.submit_to_certify.mean <= 1.0 + 2.0
    assert 1.0 <= result.phases.decide_to_client.mean <= 1.0 + 2.0


# ----------------------------------------------------------------------
# retry/dedup x batching: all three coordinator paths
# ----------------------------------------------------------------------
def _decided_duplicate_case(cluster, coordinator_pid, key):
    payload = rw_payload(key, tiebreak="dup")
    txn = cluster.submit(payload, coordinator=coordinator_pid)
    assert cluster.run_until_decided([txn])
    cluster.run()
    client = cluster.clients[0]
    client.send(coordinator_pid, CertifyRequest(txn=txn, payload=payload, request_id=2))
    cluster.run()
    return txn, client


@pytest.mark.parametrize("protocol", ["message-passing", "rdma"])
def test_batched_duplicate_reanswered_from_decision_cache(protocol):
    cluster = Cluster(
        num_shards=2, replicas_per_shard=2, protocol=protocol, seed=3, batch=ADAPTIVE
    )
    coordinator_pid = cluster.members_of("shard-1")[0]
    key = shard_key(cluster.scheme, "shard-0")
    leader = cluster.replicas[cluster.leader_of("shard-0")]
    txn, client = _decided_duplicate_case(cluster, coordinator_pid, key)
    slots_before = dict(leader.slot_of)
    coordinator = cluster.replicas[coordinator_pid]
    assert coordinator.duplicate_certify_requests == 1
    assert client.duplicate_decisions >= 1
    assert cluster.history.contradictions == []
    assert dict(leader.slot_of) == slots_before  # no re-certification
    check, _ = cluster.check()
    assert check.ok


def test_batched_duplicate_reanswered_by_baseline_coordinator():
    cluster = BaselineCluster(num_shards=2, failures_tolerated=1, seed=19, batch=ADAPTIVE)
    coordinator = cluster.coordinators[0]
    payload = rw_payload("k", tiebreak="k")
    txn = cluster.submit(payload)
    assert cluster.run_until_decided([txn])
    cluster.run()
    cluster.clients[0].send(
        coordinator.pid, CertifyRequest(txn=txn, payload=payload, request_id=2)
    )
    cluster.run()
    assert coordinator.duplicate_certify_requests == 1
    assert cluster.clients[0].duplicate_decisions >= 1
    assert cluster.history.contradictions == []


def test_duplicate_landing_inside_a_pending_batch_is_safe():
    """A retried request that arrives while the original still sits in the
    coordinator's un-flushed batch must not yield a second decision."""
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=5,
        batch=BatchPolicy(size=64, linger=50.0, adaptive=False),
    )
    coordinator_pid = cluster.members_of("shard-1")[0]
    key = shard_key(cluster.scheme, "shard-0")
    payload = rw_payload(key, tiebreak="dup")
    txn = cluster.submit(payload, coordinator=coordinator_pid)
    coordinator = cluster.replicas[coordinator_pid]
    # Run past the client batcher's linger (flush at t=50, delivery at
    # t=51) but stop before the coordinator's own linger expires: the
    # PREPARE is still queued in its batcher.
    cluster.run(max_time=51.5)
    assert coordinator._prepare_batcher.pending_messages > 0
    cluster.clients[0].send(
        coordinator_pid, CertifyRequest(txn=txn, payload=payload, request_id=2)
    )
    cluster.run()
    assert coordinator.duplicate_certify_requests == 1
    assert cluster.history.decision_of(txn) is not None
    assert cluster.history.contradictions == []
    check, violations = cluster.check()
    assert check.ok and not violations


def test_rdma_accept_batch_ack_keeps_enqueue_time_shard():
    """NIC acks for a pending ACCEPT batch must be attributed to the shard
    recorded when the accepts were enqueued (mirroring the unbatched
    per-send closure) — a reconfiguration mutating the coordinator's
    membership view while the batch lingers must not orphan the acks."""
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        protocol="rdma",
        batch=BatchPolicy(size=64, linger=10.0, adaptive=False),
    )
    coordinator_pid = cluster.members_of("shard-1")[0]
    key = shard_key(cluster.scheme, "shard-0")
    txn = cluster.submit(rw_payload(key, tiebreak="t"), coordinator=coordinator_pid)
    coordinator = cluster.replicas[coordinator_pid]
    while coordinator._accept_batcher.pending_messages == 0:
        assert cluster.scheduler.step(), "accept never reached the batcher"
    # A membership change lands while the batch is still pending: the
    # coordinator's view no longer lists the follower the batch targets.
    follower = cluster.followers_of("shard-0")[0]
    coordinator.members["shard-0"] = tuple(
        pid for pid in coordinator.members["shard-0"] if pid != follower
    )
    cluster.run()
    entry = coordinator.coordinated(txn)
    assert entry is not None
    assert None not in entry.rdma_acks
    assert follower in entry.rdma_acks.get("shard-0", set())
    assert cluster.history.decision_of(txn) is not None


def test_session_retries_with_batching_stay_exactly_once_decided():
    """Sub-RTT session timeouts under linger batching: nearly every
    transaction is re-submitted to several coordinators while batches are
    still queued, and certification must stay exactly-once-decided."""
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=2,
        seed=11,
        retry=RetryPolicy(timeout=3.0, backoff=1.0, max_attempts=6),
        batch=BatchPolicy(size=4, linger=2.0, adaptive=False),
    )
    txns = [cluster.submit(p) for p in distinct_payloads(30)]
    assert cluster.run_until_decided(txns)
    cluster.run()
    assert all(cluster.history.decision_of(t) is not None for t in txns)
    assert cluster.history.contradictions == []
    stats = cluster.retry_stats()
    assert stats.retries > 0 and stats.orphaned == 0
    check, _ = cluster.check()
    assert check.ok


@pytest.mark.parametrize(
    "name",
    [
        "duplicate-delivery-fuzz",
        "coordinator-crash-storm",
        "failover-under-wan-tail",
        "wan-leader-crash",
    ],
)
def test_resilience_pack_still_drains_under_batching(name):
    """The resilience pack's zero-undecided guarantee must survive
    batching: pending batches die with a crashed coordinator, sessions
    re-submit, and dedup keeps duplicates single-decision."""
    result = run_scenario(get_scenario(name), batch=BatchSpec(size=8))
    assert result.passed
    assert result.undecided == 0 and result.orphaned == 0
    assert result.batches > 0


# ----------------------------------------------------------------------
# scenario pack, sweep driver and CLI
# ----------------------------------------------------------------------
def test_batch_scenarios_registered():
    assert {"batch-saturation", "batch-vs-unbatched-wan"} <= set(scenario_names())


def test_batch_saturation_scenario_passes_online_checked():
    result = run_scenario(get_scenario("batch-saturation"))
    assert result.passed and result.check_mode == "online"
    assert result.undecided == 0
    assert result.batches > 0 and result.mean_batch_size > 1.5
    assert result.batch_model == "size=32,adaptive"


def test_batch_vs_unbatched_wan_pair():
    spec = get_scenario("batch-vs-unbatched-wan")
    batched = run_scenario(spec)
    unbatched = run_scenario(spec, batch=BatchSpec())
    assert batched.passed and unbatched.passed
    assert batched.messages_sent < unbatched.messages_sent
    assert batched.phases.queue_wait.mean > 0.0


def test_result_dict_carries_batch_columns():
    result = run_scenario(
        get_scenario("steady-state"),
        batch=BatchSpec(size=8),
        workload=replace(get_scenario("steady-state").workload, txns=30),
    )
    data = result.as_dict()
    assert data["batch_model"] == "size=8,adaptive"
    assert data["batches"] == result.batches > 0
    assert data["mean_batch_size"] > 0
    assert sum(data["batch_sizes"].values()) == result.batches
    json.dumps(data)  # JSON-serialisable, batch histogram included


def test_parse_batch_points():
    assert not parse_batch("off").enabled
    assert parse_batch("32") == BatchSpec(size=32)
    assert parse_batch("16:linger=2") == BatchSpec(size=16, linger=2.0, adaptive=False)
    assert parse_batch("8:adaptive=true") == BatchSpec(size=8, adaptive=True)
    grid = parse_batch_grid(["default"])
    assert grid == DEFAULT_BATCH_GRID
    for bad in ("eight", "8:linger=x", "8:foo=1", "8:adaptive=maybe", "8:linger"):
        with pytest.raises(ScenarioError):
            parse_batch(bad)


def test_batch_sweep_driver_and_determinism():
    base = get_scenario("steady-state")
    spec = base.with_overrides(workload=replace(base.workload, txns=40))
    grid = (BatchSpec(), BatchSpec(size=8), BatchSpec(size=8, linger=2.0, adaptive=False))
    sweep = run_batch_sweep(spec, grid)
    assert sweep.passed
    assert [label for label, _ in sweep.points] == [
        "off",
        "size=8,adaptive",
        "size=8,linger=2",
    ]
    curve = sweep.curve()
    assert curve[0]["messages_sent"] > curve[1]["messages_sent"]
    assert sweep.result_for("size=8,adaptive").batches > 0
    with pytest.raises(KeyError):
        sweep.result_for("warp")
    again = run_batch_sweep(spec, grid)
    assert json.dumps(sweep.as_dict(), sort_keys=True) == json.dumps(
        again.as_dict(), sort_keys=True
    )
    assert "batch sweep" in sweep.render()


def test_cli_run_batch_override(capsys):
    assert (
        scenarios_main(
            ["run", "steady-state", "--txns", "20", "--batch", "8", "--json"]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert data["batch_model"] == "size=8,adaptive"
    assert data["batches"] > 0


def test_cli_batch_sweep(capsys):
    assert (
        scenarios_main(
            [
                "sweep",
                "steady-state",
                "--protocols",
                "message-passing",
                "--batch",
                "off",
                "--batch",
                "8",
                "--txns",
                "30",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "batch sweep" in out and "size=8,adaptive" in out


def test_cli_batch_and_latency_sweeps_are_mutually_exclusive():
    with pytest.raises(SystemExit):
        scenarios_main(
            [
                "sweep",
                "steady-state",
                "--latency",
                "unit",
                "--batch",
                "8",
            ]
        )
