"""Tests for the bandwidth/queueing network model and its commit-path knobs.

Four layers:

* ``repro.runtime.wire`` — every message class in every protocol module
  has a registered wire size, batches cost the sum of their parts plus one
  header, and unregistered types fail loudly (only when the link model is
  actually on);
* ``repro.runtime.network`` — FIFO queueing semantics: serialization and
  queue wait are added on top of propagation, per-channel order is
  preserved, and the byte/queue statistics come out exactly as the closed
  form predicts;
* ``repro.scenarios.spec.NetworkSpec`` — parsing, validation, description
  strings and the CLI grid grammar;
* end-to-end determinism — the network scenarios produce byte-identical
  histories and queue-wait samples across the serial and grouped engines,
  sticky affinity pins coordinators, and the non-pipelined baseline still
  commits everything.
"""

import dataclasses
import json
from dataclasses import replace

import pytest

from repro.baselines import paxos, twopc
from repro.client import CoordinatorRouter, StaticRouter
from repro.core import messages as core_messages
from repro.rdma import messages as rdma_messages
from repro.runtime import rdma as rdma_runtime
from repro.runtime.events import Scheduler
from repro.runtime.network import LinkSpec, Network, UnitLatency
from repro.runtime.process import Process
from repro.runtime.wire import HEADER_BYTES, is_registered, wire_size
from repro.scenarios import (
    DEFAULT_BANDWIDTH_GRID,
    ExecSpec,
    NetworkSpec,
    ScenarioError,
    ScenarioRunner,
    get_scenario,
    parse_bandwidth,
    parse_bandwidth_grid,
    run_bandwidth_sweep,
    sort_bandwidth_grid,
)


# ----------------------------------------------------------------------
# wire-size registry: every message class, everywhere
# ----------------------------------------------------------------------

MESSAGE_MODULES = (core_messages, rdma_messages, paxos, twopc, rdma_runtime)


def _message_classes(module):
    """Every public frozen-dataclass message type defined in ``module``."""
    found = []
    for name in dir(module):
        if name.startswith("_"):
            continue
        cls = getattr(module, name)
        if (
            isinstance(cls, type)
            and cls.__module__ == module.__name__
            and dataclasses.is_dataclass(cls)
            and cls.__dataclass_params__.frozen
        ):
            found.append(cls)
    return found


@pytest.mark.parametrize("module", MESSAGE_MODULES, ids=lambda m: m.__name__)
def test_every_message_class_has_a_wire_size(module):
    """The loud-failure contract: adding a message class to any protocol
    module without registering it in ``repro.runtime.wire`` fails here."""
    classes = _message_classes(module)
    assert classes, f"no message classes found in {module.__name__}"
    unregistered = [cls.__qualname__ for cls in classes if not is_registered(cls)]
    assert not unregistered, (
        f"{module.__name__} defines message types with no wire size: "
        f"{unregistered}; register them in repro.runtime.wire"
    )


def test_wire_size_is_positive_and_deterministic():
    message = core_messages.Prepare(txn="t1", payload=("k1", "k2"))
    assert wire_size(message) > HEADER_BYTES
    assert wire_size(message) == wire_size(message)


def test_batch_wire_size_is_sum_of_parts_plus_one_header():
    parts = tuple(
        core_messages.Prepare(txn=f"t{i}", payload=(f"key-{i}",)) for i in range(5)
    )
    batch = core_messages.CertifyBatch(prepares=parts)
    payloads = sum(wire_size(p) - HEADER_BYTES for p in parts)
    assert wire_size(batch) == HEADER_BYTES + payloads
    # Coalescing saves headers, never payload bytes: the batch is strictly
    # cheaper than its parts sent individually.
    assert wire_size(batch) < sum(wire_size(p) for p in parts)


def test_rdma_write_charges_frame_plus_payload():
    inner = rdma_messages.Accept(slot=3, txn="t1", payload=None, vote=None)
    frame = rdma_runtime.RdmaWrite(write_id=1, payload=inner)
    assert wire_size(frame) > wire_size(inner)


def test_wire_size_rejects_unregistered_types():
    class NotAMessage:
        pass

    with pytest.raises(TypeError, match="no wire size registered"):
        wire_size(NotAMessage())

    # Exact-type lookup: subclassing a registered type is not enough.
    class SneakyPrepare(core_messages.Prepare):
        pass

    assert not is_registered(SneakyPrepare)


# ----------------------------------------------------------------------
# FIFO queueing semantics on the link
# ----------------------------------------------------------------------

class _Sink(Process):
    """Records (time, message) pairs in delivery order."""

    def __init__(self, pid):
        super().__init__(pid)
        self.deliveries = []

    def deliver(self, message, src):
        self.deliveries.append((self.now, message))


class _Note:
    """A foreign, unregistered message type (a bare payload string)."""

    def __init__(self, text):
        self.text = text


def _two_node_net(link=None):
    scheduler = Scheduler()
    network = Network(scheduler, latency=UnitLatency(), seed=0, link=link)
    a, b = _Sink("a"), _Sink("b")
    network.register(a)
    network.register(b)
    return scheduler, network, a, b


def test_disabled_link_keeps_the_pure_delay_path():
    """No LinkSpec: messages are never sized, so unregistered ad-hoc types
    stay legal and the byte counters stay at zero."""
    scheduler, network, a, b = _two_node_net(link=None)
    network.send("a", "b", _Note("hello"))
    scheduler.run()
    assert [t for t, _ in b.deliveries] == [1.0]
    assert network.stats.bytes_sent == 0.0
    assert network.queue_wait_samples == []
    assert LinkSpec().enabled is False  # bandwidth=0 disables explicitly


def test_enabled_link_sizes_messages_and_rejects_foreign_types():
    scheduler, network, a, b = _two_node_net(link=LinkSpec(bandwidth=100.0))
    with pytest.raises(TypeError, match="no wire size registered"):
        network.send("a", "b", _Note("hello"))


def test_queueing_matches_the_closed_form():
    """Two back-to-back sends on one channel: the second serializes only
    after the first finishes, and every statistic is exactly predictable."""
    link = LinkSpec(bandwidth=100.0, overhead=0.5)
    scheduler, network, a, b = _two_node_net(link=link)
    m1 = core_messages.Prepare(txn="t1", payload=("k1",))
    m2 = core_messages.Prepare(txn="t2", payload=("k2",))
    ser1 = link.overhead + wire_size(m1) / link.bandwidth
    ser2 = link.overhead + wire_size(m2) / link.bandwidth
    network.send("a", "b", m1)
    network.send("a", "b", m2)
    scheduler.run()
    times = [t for t, _ in b.deliveries]
    assert times == pytest.approx([1.0 + ser1, 1.0 + ser1 + ser2])
    # FIFO: delivery order is send order.
    assert [m.txn for _, m in b.deliveries] == ["t1", "t2"]
    # m1 finds an idle channel (wait 0); m2 queues behind m1's serialization.
    assert network.queue_wait_samples == pytest.approx([0.0, ser1])
    assert network.link_busy_time == pytest.approx(ser1 + ser2)
    assert network.link_max_depth == 2
    assert network.stats.bytes_sent == pytest.approx(wire_size(m1) + wire_size(m2))
    assert network.stats.bytes_by_type["Prepare"] == network.stats.bytes_sent


def test_queueing_is_per_directed_channel():
    """The reverse channel b->a is idle, so a message there sees no queue
    even while a->b is saturated."""
    link = LinkSpec(bandwidth=10.0, overhead=0.0)
    scheduler, network, a, b = _two_node_net(link=link)
    message = core_messages.Prepare(txn="t", payload=("k",))
    for _ in range(4):
        network.send("a", "b", message)
    network.send("b", "a", message)
    scheduler.run()
    # The lone reverse-channel message never waited.
    assert network.queue_wait_samples[-1] == pytest.approx(0.0)
    assert [t for t, _ in a.deliveries] == pytest.approx(
        [1.0 + wire_size(message) / link.bandwidth]
    )


def test_serialization_only_adds_to_propagation():
    """The lookahead-validity property in miniature: with the link enabled,
    no delivery can land before the pure-propagation delivery time."""
    scheduler, network, a, b = _two_node_net(link=LinkSpec(bandwidth=50.0, overhead=0.1))
    message = core_messages.Prepare(txn="t", payload=("k",))
    for _ in range(6):
        network.send("a", "b", message)
    scheduler.run()
    assert all(t >= 1.0 for t, _ in b.deliveries)
    assert all(wait >= 0.0 for wait in network.queue_wait_samples)


# ----------------------------------------------------------------------
# NetworkSpec: validation, description, CLI grammar
# ----------------------------------------------------------------------

def test_network_spec_validation():
    NetworkSpec().validate()
    NetworkSpec(bandwidth=100.0, overhead=0.5).validate()
    with pytest.raises(ScenarioError):
        NetworkSpec(bandwidth=-1.0).validate()
    with pytest.raises(ScenarioError):
        NetworkSpec(overhead=-0.5, bandwidth=10.0).validate()
    with pytest.raises(ScenarioError, match="requires a positive bandwidth"):
        NetworkSpec(overhead=0.5).validate()


def test_network_spec_compile_and_describe():
    assert NetworkSpec().compile() is None
    assert NetworkSpec().describe() == "off"
    compiled = NetworkSpec(bandwidth=100.0, overhead=0.5).compile()
    assert compiled == LinkSpec(bandwidth=100.0, overhead=0.5)
    assert NetworkSpec(bandwidth=100.0, overhead=0.5).describe() == "bw=100,ovh=0.5"
    assert "nopipe" in NetworkSpec(pipeline=False).describe()
    assert "sticky" in NetworkSpec(sticky=True).describe()


def test_parse_bandwidth_grammar():
    assert parse_bandwidth("off") == NetworkSpec()
    assert parse_bandwidth("500") == NetworkSpec(bandwidth=500.0)
    point = parse_bandwidth("500:overhead=0.2,pipeline=false,sticky=true")
    assert point == NetworkSpec(
        bandwidth=500.0, overhead=0.2, pipeline=False, sticky=True
    )
    with pytest.raises(ScenarioError):
        parse_bandwidth("fast")
    with pytest.raises(ScenarioError):
        parse_bandwidth("500:warp=9")
    assert parse_bandwidth_grid(["default"]) == tuple(DEFAULT_BANDWIDTH_GRID)


def test_sort_bandwidth_grid_puts_off_first_then_descending_bandwidth():
    grid = (
        NetworkSpec(bandwidth=500.0),
        NetworkSpec(),
        NetworkSpec(bandwidth=8000.0),
        NetworkSpec(bandwidth=2000.0),
    )
    assert [p.bandwidth for p in sort_bandwidth_grid(grid)] == [
        0.0, 8000.0, 2000.0, 500.0,
    ]


def test_default_bandwidth_grid_is_canonical():
    assert tuple(sort_bandwidth_grid(DEFAULT_BANDWIDTH_GRID)) == DEFAULT_BANDWIDTH_GRID


# ----------------------------------------------------------------------
# sticky routing
# ----------------------------------------------------------------------

def _router(sticky):
    members = {
        "shard-0": ("member:shard-0:0", "member:shard-0:1"),
        "shard-1": ("member:shard-1:0", "member:shard-1:1"),
    }
    return CoordinatorRouter(["shard-0", "shard-1"], members, sticky=sticky)


def test_round_robin_router_rotates_by_default():
    router = _router(sticky=False)
    picks = {router.pick(["shard-0"]) for _ in range(4)}
    assert len(picks) > 1


def test_sticky_router_pins_per_shard_set():
    router = _router(sticky=True)
    first = router.pick(["shard-0"])
    assert all(router.pick(["shard-0"]) == first for _ in range(5))
    # Key is the sorted involved set, so permutations share a pin.
    both = router.pick(["shard-1", "shard-0"])
    assert router.pick(["shard-0", "shard-1"]) == both


def test_sticky_router_repins_on_failover_and_config_change():
    router = _router(sticky=True)
    first = router.pick(["shard-0"])
    failover = router.pick(["shard-0"], exclude=[first])
    assert failover != first
    assert router.pick(["shard-0"]) == failover  # the new pin sticks
    # A config change removing the pinned member drops the pin.
    shard = "shard-0" if "shard-0" in failover else "shard-1"
    remaining = tuple(p for p in router.members[shard] if p != failover)
    router.note_config_change(shard, 2, remaining + ("member:new:0",), remaining[0])
    assert failover not in router._pins.values()


def test_static_router_sticky_pins():
    router = StaticRouter(["c0", "c1", "c2"], sticky=True)
    first = router.pick(["shard-0"])
    assert all(router.pick(["shard-0"]) == first for _ in range(5))
    other = router.pick(["shard-1"])
    assert router.pick(["shard-1"]) == other


# ----------------------------------------------------------------------
# end-to-end: scenarios, determinism, pipelining
# ----------------------------------------------------------------------

def _small(name, txns=40, **overrides):
    spec = get_scenario(name)
    return spec.with_overrides(workload=replace(spec.workload, txns=txns), **overrides)


def test_saturated_link_scenario_reports_real_queueing():
    result = ScenarioRunner(_small("saturated-link")).run()
    assert result.network_model == "bw=120,ovh=0.1"
    assert result.bytes_sent > 0
    assert result.link_queue_wait_max > 0
    assert result.link_busy_time > 0
    assert result.link_max_depth >= 2
    assert result.safety_ok


def test_saturated_link_grouped_engine_matches_serial_exactly():
    """The lookahead-audit regression: a saturated slow link under
    --parallel-shards must replay the serial schedule byte for byte (and
    the debug assertion in GroupedScheduler.schedule_delivery is active
    throughout, because pytest runs without -O)."""
    serial = ScenarioRunner(_small("saturated-link")).run()
    grouped = ScenarioRunner(
        _small(
            "saturated-link",
            execution=ExecSpec(mode="parallel-shards", groups=2),
        )
    ).run()
    assert grouped.history_digest == serial.history_digest
    assert json.dumps(grouped.as_dict(), sort_keys=True) == json.dumps(
        serial.as_dict(), sort_keys=True
    )
    # Same queue-wait statistics, not just the same history.
    assert grouped.link_queue_wait_mean == serial.link_queue_wait_mean
    assert grouped.link_queue_wait_max == serial.link_queue_wait_max
    assert grouped.bytes_sent == serial.bytes_sent


def test_default_network_leaves_results_byte_identical():
    """NetworkSpec() must be inert: a run with the default network equals a
    run of the identical spec from before the network model existed (same
    digest, same metrics, zero byte accounting)."""
    base = _small("steady-state")
    assert base.network == NetworkSpec()
    result = ScenarioRunner(base).run()
    assert result.network_model == "off"
    assert result.bytes_sent == 0.0
    assert result.link_max_depth == 0


def test_bandwidth_sweep_runs_and_throughput_degrades():
    spec = _small("bandwidth-knee", txns=60)
    sweep = run_bandwidth_sweep(spec)
    assert sweep.passed
    rows = sweep.curve()
    assert [row["network_model"] for row in rows] == [
        p.describe() for p in DEFAULT_BANDWIDTH_GRID
    ]
    by_network = {row["network_model"]: row for row in rows}
    # A constrained link can only slow things down.
    assert by_network["bw=500"]["throughput"] < by_network["off"]["throughput"]
    assert by_network["bw=500"]["link_queue_wait_max"] > 0


def test_non_pipelined_run_commits_everything_and_is_slower():
    """pipeline=False is the stop-and-wait measurement baseline: same
    transactions decided, strictly more virtual time under load."""
    fast = ScenarioRunner(_small("bandwidth-knee")).run()
    slow = ScenarioRunner(
        _small(
            "bandwidth-knee",
            network=replace(get_scenario("bandwidth-knee").network, pipeline=False),
        )
    ).run()
    assert slow.safety_ok
    assert slow.committed + slow.aborted == fast.committed + fast.aborted
    assert slow.duration > fast.duration


def test_sticky_affinity_is_safe_and_decides_everything():
    result = ScenarioRunner(
        _small(
            "bandwidth-knee",
            network=replace(get_scenario("bandwidth-knee").network, sticky=True),
        )
    ).run()
    assert result.safety_ok
    assert result.committed + result.aborted == 40
    assert result.committed > 0
