"""Tests for the declarative latency subsystem: model parameter validation,
distribution correctness (sampled moments match the configured ones),
determinism of scenario results under every model, additive composition of
per-channel extra delays with any model, and the property that latency-induced
reordering never produces a false TCS violation on conflict-free workloads."""

import json
import math
import random
import statistics
from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.runtime.events import Scheduler
from repro.runtime.network import (
    ExponentialLatency,
    JitteredLatency,
    LognormalLatency,
    Network,
    RegionLatency,
    UniformLatency,
    UnitLatency,
)
from repro.scenarios import (
    LatencySpec,
    ScenarioError,
    ScenarioRunner,
    compile_latency_model,
    get_scenario,
    parse_latency,
)
from repro.spec.checker import TCSChecker
from repro.spec.incremental import IncrementalTCSChecker

from helpers import payload


# ----------------------------------------------------------------------
# model parameter validation
# ----------------------------------------------------------------------
def test_lognormal_rejects_bad_parameters():
    with pytest.raises(ValueError, match="mean"):
        LognormalLatency(mean=0.0)
    with pytest.raises(ValueError, match="mean"):
        LognormalLatency(mean=-1.0)
    with pytest.raises(ValueError, match="sigma"):
        LognormalLatency(mean=1.0, sigma=0.0)


def test_exponential_rejects_bad_mean():
    with pytest.raises(ValueError, match="mean"):
        ExponentialLatency(mean=0.0)


def test_jitter_rejects_negative():
    with pytest.raises(ValueError, match="jitter"):
        JitteredLatency(UnitLatency(), jitter=-0.1)


def test_region_model_rejects_bad_topologies():
    with pytest.raises(ValueError, match="at least one region"):
        RegionLatency(regions=())
    with pytest.raises(ValueError, match="unique"):
        RegionLatency(regions=("eu", "eu"), inter={})
    with pytest.raises(ValueError, match="non-negative"):
        RegionLatency(regions=("eu",), intra=-1.0)
    with pytest.raises(ValueError, match="unknown region"):
        RegionLatency(regions=("eu", "us"), inter={("eu", "mars"): 1.0})
    with pytest.raises(ValueError, match="missing inter-region delay"):
        RegionLatency(regions=("eu", "us"), inter={("eu", "us"): 1.0})
    with pytest.raises(ValueError, match="unknown region"):
        RegionLatency(
            regions=("eu", "us"),
            inter={("eu", "us"): 1.0, ("us", "eu"): 1.0},
            placement={"client-0": "mars"},
        )


@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(model="carrier-pigeon"), "unknown latency model"),
        (dict(model="unit", jitter=0.5), "unit model"),
        (dict(model="fixed", value=0.0), "positive value"),
        (dict(model="uniform", low=-0.5), "non-negative"),
        (dict(model="uniform", low=2.0, high=1.0), "low <= high"),
        (dict(model="lognormal", mean=0.0), "positive mean"),
        (dict(model="lognormal", sigma=-1.0), "positive sigma"),
        (dict(model="exponential", mean=-2.0), "positive mean"),
        (dict(model="uniform", jitter=-0.1), "jitter"),
        (dict(model="regions", regions=("eu",)), "at least two"),
        (dict(model="regions", regions=("eu", "eu"),
              links=(("eu", "eu", 1.0),)), "unique"),
        (dict(model="regions", regions=("eu", "us"), links=()), "missing inter-region"),
        (dict(model="regions", regions=("eu", "us"),
              links=(("eu", "mars", 1.0),)), "unknown region"),
        (dict(model="regions", regions=("eu", "us"),
              links=(("eu", "eu", 1.0),)), "intra"),
        (dict(model="regions", regions=("eu", "us"),
              links=(("eu", "us", -1.0),)), "non-negative"),
        # A repeated direction would silently compile to an asymmetric
        # topology (last value forward, first value backward) — reject it.
        (dict(model="regions", regions=("eu", "us"),
              links=(("eu", "us", 3.0), ("eu", "us", 7.0))), "duplicate link"),
        (dict(model="regions", regions=("eu", "us"),
              links=(("eu", "us", 2.0),),
              placement=(("client-0", "mars"),)), "unknown region"),
    ],
)
def test_latency_spec_validation_rejects(kwargs, match):
    with pytest.raises(ScenarioError, match=match):
        LatencySpec(**kwargs).validate()


def test_region_describe_distinguishes_topologies():
    """Sweep-point labels must not collide for region specs that differ only
    in link delays or placement (result_for and JSON curves key on them)."""
    base = dict(model="regions", regions=("eu", "us"), intra=0.5)
    slow = LatencySpec(**base, links=(("eu", "us", 30.0),))
    fast = LatencySpec(**base, links=(("eu", "us", 3.0),))
    pinned = LatencySpec(
        **base, links=(("eu", "us", 3.0),), placement=(("client-0", "us"),)
    )
    labels = {slow.describe(), fast.describe(), pinned.describe()}
    assert len(labels) == 3
    assert "eu-us:30" in slow.describe()


def test_latency_spec_validation_accepts_every_model():
    for spec in (
        LatencySpec(),
        LatencySpec(model="fixed", value=2.0, jitter=0.5),
        LatencySpec(model="uniform", low=0.0, high=0.0),
        LatencySpec(model="lognormal", mean=2.0, sigma=1.2),
        LatencySpec(model="exponential", mean=0.5),
        LatencySpec(
            model="regions",
            regions=("eu", "us"),
            links=(("eu", "us", 3.0),),
            placement=(("client-0", "us"),),
        ),
    ):
        spec.validate()
        assert isinstance(spec.describe(), str)


def test_parse_latency_round_trip_and_errors():
    assert parse_latency("unit") == LatencySpec()
    parsed = parse_latency("lognormal:mean=2,sigma=0.8")
    assert parsed.model == "lognormal" and parsed.mean == 2.0 and parsed.sigma == 0.8
    assert parse_latency(" uniform:low=0.2, high=0.8 ").low == 0.2
    with pytest.raises(ScenarioError, match="unknown latency model"):
        parse_latency("warp")
    with pytest.raises(ScenarioError, match="unknown latency model"):
        parse_latency("warp:speed=9")
    with pytest.raises(ScenarioError, match="bad latency parameter"):
        parse_latency("fixed:value")
    with pytest.raises(ScenarioError, match="not a number"):
        parse_latency("fixed:value=fast")
    with pytest.raises(ScenarioError, match="does not apply"):
        parse_latency("uniform:regions=eu")  # tuple fields are not CLI-settable


def test_parse_latency_rejects_parameters_of_other_models():
    """A mistyped point must fail loudly, not run with a silently-defaulted
    parameter (``fixed:mean=2`` used to parse as a 1-delay fixed model)."""
    for text in ("fixed:mean=2", "exponential:value=2", "uniform:mean=3",
                 "unit:jitter=0.5", "lognormal:low=1"):
        with pytest.raises(ScenarioError, match="does not apply"):
            parse_latency(text)
    # The model's own keys (and jitter) still parse.
    assert parse_latency("exponential:mean=2,jitter=0.1").jitter == 0.1


# ----------------------------------------------------------------------
# distribution correctness: sampled moments match the configured ones
# ----------------------------------------------------------------------
def _samples(model, n=6000, seed=12345):
    rng = random.Random(seed)
    return [model.delay("a", "b", None, rng) for _ in range(n)]


def test_uniform_moments():
    sample = _samples(UniformLatency(0.5, 1.5))
    assert statistics.fmean(sample) == pytest.approx(1.0, rel=0.05)
    assert statistics.pvariance(sample) == pytest.approx(1.0 / 12.0, rel=0.10)
    assert all(0.5 <= value <= 1.5 for value in sample)


def test_exponential_moments():
    sample = _samples(ExponentialLatency(mean=2.0))
    assert statistics.fmean(sample) == pytest.approx(2.0, rel=0.05)
    assert statistics.pvariance(sample) == pytest.approx(4.0, rel=0.15)
    assert all(value >= 0 for value in sample)


def test_lognormal_moments():
    mean, sigma = 1.5, 0.8
    sample = _samples(LognormalLatency(mean=mean, sigma=sigma))
    assert statistics.fmean(sample) == pytest.approx(mean, rel=0.05)
    expected_var = mean * mean * (math.exp(sigma * sigma) - 1.0)
    assert statistics.pvariance(sample) == pytest.approx(expected_var, rel=0.25)
    assert all(value > 0 for value in sample)


def test_lognormal_sigma_controls_tail_not_mean():
    light = _samples(LognormalLatency(mean=1.5, sigma=0.3))
    heavy = _samples(LognormalLatency(mean=1.5, sigma=1.2))
    assert statistics.fmean(light) == pytest.approx(statistics.fmean(heavy), rel=0.1)
    assert max(heavy) > 3 * max(light)


def test_jitter_shifts_mean_by_half_jitter():
    base = UnitLatency(2.0)
    sample = _samples(JitteredLatency(base, jitter=1.0))
    assert statistics.fmean(sample) == pytest.approx(2.5, rel=0.05)
    assert all(2.0 <= value <= 3.0 for value in sample)


# ----------------------------------------------------------------------
# the region model: placement and delays
# ----------------------------------------------------------------------
def _wan_model(**kwargs):
    return compile_latency_model(
        LatencySpec(
            model="regions",
            regions=("eu", "us", "ap"),
            intra=0.5,
            links=(("eu", "us", 3.0), ("eu", "ap", 5.0), ("us", "ap", 4.0)),
            **kwargs,
        )
    )


def test_region_default_placement_spreads_replicas_and_clients():
    model = _wan_model()
    assert model.region_of("shard-0/r0") == "eu"
    assert model.region_of("shard-0/r1") == "us"
    assert model.region_of("shard-1/r2") == "ap"
    assert model.region_of("shard-2/r3") == "eu"  # wraps round-robin
    assert model.region_of("client-0") == "eu"
    assert model.region_of("client-1") == "us"
    assert model.region_of("config-service") == "eu"
    assert model.region_of("shard-0/p2") == "ap"  # baseline Paxos naming


def test_region_placement_override_wins():
    model = _wan_model(placement=(("config-service", "ap"),))
    assert model.region_of("config-service") == "ap"


def test_region_delays_intra_vs_inter_and_symmetry():
    model = _wan_model()
    rng = random.Random(0)
    # r0 and client-0 are both in eu: intra delay.
    assert model.delay("shard-0/r0", "client-0", None, rng) == 0.5
    # eu -> us and us -> eu take the (symmetric) link delay.
    assert model.delay("shard-0/r0", "shard-0/r1", None, rng) == 3.0
    assert model.delay("shard-0/r1", "shard-0/r0", None, rng) == 3.0
    assert model.delay("shard-0/r1", "shard-0/r2", None, rng) == 4.0


def test_region_asymmetric_links_when_both_directions_given():
    model = compile_latency_model(
        LatencySpec(
            model="regions",
            regions=("eu", "us"),
            intra=0.5,
            links=(("eu", "us", 3.0), ("us", "eu", 7.0)),
        )
    )
    rng = random.Random(0)
    assert model.delay("shard-0/r0", "shard-0/r1", None, rng) == 3.0
    assert model.delay("shard-0/r1", "shard-0/r0", None, rng) == 7.0


def test_compile_applies_jitter_wrapper():
    model = compile_latency_model(LatencySpec(model="fixed", value=2.0, jitter=0.5))
    assert isinstance(model, JitteredLatency)
    rng = random.Random(1)
    for _ in range(50):
        assert 2.0 <= model.delay("a", "b", None, rng) <= 2.5


# ----------------------------------------------------------------------
# per-channel extra delays compose additively with every model
# ----------------------------------------------------------------------
class _Sink:
    """Minimal process stand-in recording delivery times."""

    def __init__(self, pid):
        self.pid = pid
        self.crashed = False
        self.network = None
        self.delivered = []

    def attach(self, network):
        self.network = network

    def deliver(self, message, sender):
        self.delivered.append((self.network.scheduler.now, message, sender))


def _arrival_times(latency_factory, extra, seed=9, n=5):
    scheduler = Scheduler()
    network = Network(scheduler, latency=latency_factory(), seed=seed)
    network.register(_Sink("a"))
    network.register(_Sink("b"))
    if extra:
        network.add_extra_delay("a", "b", extra)
    for i in range(n):
        network.send("a", "b", i)
    scheduler.run()
    return [time for time, _, _ in network.processes["b"].delivered]


@pytest.mark.parametrize(
    "latency_factory",
    [
        lambda: UnitLatency(),
        lambda: UniformLatency(0.5, 1.5),
        lambda: LognormalLatency(mean=1.5, sigma=0.8),
        lambda: ExponentialLatency(mean=1.0),
        lambda: JitteredLatency(UniformLatency(0.5, 1.5), jitter=0.25),
    ],
    ids=["unit", "uniform", "lognormal", "exponential", "jittered"],
)
def test_extra_delay_composes_additively_with_any_model(latency_factory):
    """Regression lock: a `delay-channel` fault's per-channel extra delay
    shifts every delivery by exactly the extra, on top of whatever the
    latency model draws (same seed -> same draws -> exact offset)."""
    extra = 3.25
    base_times = _arrival_times(latency_factory, extra=0.0)
    shifted_times = _arrival_times(latency_factory, extra=extra)
    assert len(base_times) == len(shifted_times) == 5
    for base, shifted in zip(base_times, shifted_times):
        assert shifted == pytest.approx(base + extra)


def test_delay_channel_fault_composes_with_latency_spec_scenario():
    """End to end: a scenario combining a non-unit LatencySpec with a
    `delay-channel` setup fault still runs, and the slowed channel is
    reflected in a longer virtual duration than without the fault."""
    from repro.scenarios import FaultStep, ScenarioSpec, WorkloadSpec

    base = ScenarioSpec(
        name="compose-probe",
        num_shards=2,
        latency=LatencySpec(model="uniform", low=0.5, high=1.5),
        workload=WorkloadSpec(kind="uniform", txns=20, batch=5, num_keys=32),
    )
    slowed = base.with_overrides(
        faults=(
            FaultStep(at=0.0, action="delay-channel",
                      src="leader:shard-0", dst="follower:shard-0", delay=10.0),
        )
    )
    fast = ScenarioRunner(base).run()
    slow = ScenarioRunner(slowed).run()
    assert fast.passed and slow.passed
    assert slow.duration > fast.duration


# ----------------------------------------------------------------------
# determinism: same spec (seed included) -> byte-identical results
# ----------------------------------------------------------------------
ALL_MODEL_POINTS = [
    LatencySpec(),
    LatencySpec(model="fixed", value=2.0),
    LatencySpec(model="uniform", low=0.5, high=1.5),
    LatencySpec(model="lognormal", mean=1.5, sigma=0.8),
    LatencySpec(model="exponential", mean=1.0),
    LatencySpec(model="uniform", low=0.5, high=1.5, jitter=0.25),
    LatencySpec(
        model="regions",
        regions=("eu", "us", "ap"),
        intra=0.5,
        links=(("eu", "us", 3.0), ("eu", "ap", 5.0), ("us", "ap", 4.0)),
        jitter=0.25,
    ),
]


@pytest.mark.parametrize(
    "point", ALL_MODEL_POINTS, ids=[p.describe() for p in ALL_MODEL_POINTS]
)
def test_same_spec_byte_identical_result_for_every_model(point):
    spec = get_scenario("steady-state")
    spec = spec.with_overrides(latency=point, workload=replace(spec.workload, txns=30))
    first = ScenarioRunner(spec).run()
    second = ScenarioRunner(spec).run()
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )
    assert first.latency_model == point.describe()
    assert first.passed


@pytest.mark.parametrize(
    "batch_override",
    [
        "",
        "batch=BatchSpec(size=8),",
        "batch=BatchSpec(size=8, linger=2.0, adaptive=False),",
    ],
    ids=["unbatched", "batched-adaptive", "batched-linger"],
)
def test_results_identical_across_interpreter_hash_seeds(batch_override):
    """Regression lock for a cross-process determinism bug: coordinators
    used to fan out Prepare/decision messages in set-iteration order, which
    follows the interpreter's salted string hash — invisible under unit
    latency (all sends draw the same delay) but schedule-changing under
    random models (one RNG draw per send).  The fan-outs are sorted now, so
    the same spec must produce byte-identical JSON in any interpreter.

    The batched variants additionally lock batch *composition*: batches are
    keyed and filled in arrival order (never hash order), so the per-batch
    message grouping — and with it every RNG draw downstream — must be
    identical across interpreters too."""
    import os
    import subprocess
    import sys

    script = (
        "import json;"
        "from dataclasses import replace;"
        "from repro.scenarios import BatchSpec, LatencySpec, ScenarioRunner, get_scenario;"
        "s = get_scenario('steady-state');"
        "s = s.with_overrides(latency=LatencySpec(model='lognormal', mean=1.5, sigma=0.8),"
        f" {batch_override}"
        " workload=replace(s.workload, txns=25));"
        "print(json.dumps(ScenarioRunner(s).run().as_dict(), sort_keys=True))"
    )
    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = []
    for hash_seed in ("1", "99"):
        env = {**os.environ, "PYTHONHASHSEED": hash_seed}
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, (src_dir, env.get("PYTHONPATH")))
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(completed.stdout)
    assert outputs[0] == outputs[1]
    if batch_override:
        assert '"batches": 0' not in outputs[0]  # batching really engaged


# ----------------------------------------------------------------------
# property: latency-induced reordering never yields a false violation on
# conflict-free workloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "latency_factory",
    [
        lambda: UniformLatency(0.1, 3.0),
        lambda: LognormalLatency(mean=1.5, sigma=1.2),
        lambda: ExponentialLatency(mean=1.5),
    ],
    ids=["uniform", "lognormal-heavy", "exponential"],
)
@pytest.mark.parametrize("seed", [0, 7, 23])
def test_conflict_free_workload_never_flags_violation(latency_factory, seed):
    """Disjoint-key transactions cannot conflict, so every interleaving the
    random delays produce must commit cleanly — online and batch checker."""
    cluster = Cluster(
        num_shards=2, replicas_per_shard=2, latency=latency_factory(), seed=seed
    )
    checker = IncrementalTCSChecker(cluster.scheme, cluster.history)
    payloads = [
        payload(reads=[(f"k{i}", (0, ""))], writes=[(f"k{i}", i)], tiebreak=f"t{i}")
        for i in range(30)
    ]
    txns = [cluster.submit(p) for p in payloads]
    assert cluster.run_until_decided(txns)
    assert all(
        cluster.decision_of(txn) is not None for txn in txns
    )
    assert checker.ok, checker.result().reason
    batch = TCSChecker(cluster.scheme).check(cluster.history)
    assert batch.ok, batch.reason
    assert cluster.abort_rate() == 0.0
