"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.runtime.events import Scheduler


def test_schedule_and_run_fires_in_time_order():
    scheduler = Scheduler()
    fired = []
    scheduler.schedule(2.0, lambda: fired.append("b"))
    scheduler.schedule(1.0, lambda: fired.append("a"))
    scheduler.schedule(3.0, lambda: fired.append("c"))
    scheduler.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    scheduler = Scheduler()
    fired = []
    for name in ["first", "second", "third"]:
        scheduler.schedule(1.0, lambda n=name: fired.append(n))
    scheduler.run()
    assert fired == ["first", "second", "third"]


def test_now_advances_to_event_time():
    scheduler = Scheduler()
    times = []
    scheduler.schedule(5.0, lambda: times.append(scheduler.now))
    scheduler.run()
    assert times == [5.0]
    assert scheduler.now == 5.0


def test_negative_delay_rejected():
    scheduler = Scheduler()
    with pytest.raises(ValueError):
        scheduler.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    scheduler = Scheduler()
    scheduler.schedule(5.0, lambda: None)
    scheduler.run()
    with pytest.raises(ValueError):
        scheduler.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    scheduler = Scheduler()
    fired = []
    event = scheduler.schedule(1.0, lambda: fired.append("cancelled"))
    scheduler.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    scheduler.run()
    assert fired == ["kept"]


def test_run_respects_max_time():
    scheduler = Scheduler()
    fired = []
    scheduler.schedule(1.0, lambda: fired.append(1))
    scheduler.schedule(10.0, lambda: fired.append(10))
    scheduler.run(max_time=5.0)
    assert fired == [1]
    # The late event is still pending and fires on the next unbounded run.
    scheduler.run()
    assert fired == [1, 10]


def test_run_respects_max_events():
    scheduler = Scheduler()
    fired = []
    for i in range(10):
        scheduler.schedule(float(i + 1), lambda i=i: fired.append(i))
    scheduler.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_can_schedule_more_events():
    scheduler = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            scheduler.schedule(1.0, chain, n + 1)

    scheduler.schedule(1.0, chain, 1)
    scheduler.run()
    assert fired == [1, 2, 3, 4, 5]
    assert scheduler.now == 5.0


def test_run_until_predicate():
    scheduler = Scheduler()
    fired = []
    for i in range(10):
        scheduler.schedule(float(i + 1), lambda i=i: fired.append(i))
    satisfied = scheduler.run_until(lambda: len(fired) >= 4)
    assert satisfied
    assert len(fired) == 4


def test_run_until_returns_false_when_exhausted():
    scheduler = Scheduler()
    scheduler.schedule(1.0, lambda: None)
    assert not scheduler.run_until(lambda: False)


def test_idle_and_pending():
    scheduler = Scheduler()
    assert scheduler.idle
    event = scheduler.schedule(1.0, lambda: None)
    assert not scheduler.idle
    assert scheduler.pending == 1
    event.cancel()
    assert scheduler.idle
    # Cancelled events no longer count as pending work.
    assert scheduler.pending == 0


def test_pending_tracks_live_events_only():
    scheduler = Scheduler()
    events = [scheduler.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert scheduler.pending == 10
    for event in events[:4]:
        event.cancel()
    assert scheduler.pending == 6
    scheduler.run(max_events=2)
    assert scheduler.pending == 4


def test_cancel_after_fire_does_not_corrupt_live_count():
    scheduler = Scheduler()
    fired = scheduler.schedule(1.0, lambda: None)
    keeper = scheduler.schedule(2.0, lambda: None)
    assert scheduler.step()
    # Cancelling an event that already fired must be a no-op.
    fired.cancel()
    assert scheduler.pending == 1
    assert not scheduler.idle
    scheduler.run()
    assert scheduler.pending == 0


def test_double_cancel_counts_once():
    scheduler = Scheduler()
    event = scheduler.schedule(1.0, lambda: None)
    other = scheduler.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert scheduler.pending == 1
    scheduler.run()
    assert scheduler.pending == 0


def test_heap_compaction_drops_cancelled_events():
    scheduler = Scheduler()
    keeper_fired = []
    keeper = scheduler.schedule(1000.0, lambda: keeper_fired.append(True))
    events = [scheduler.schedule(float(i + 1), lambda: None) for i in range(500)]
    for event in events:
        event.cancel()
    # Far more cancelled than live events: the heap must have been compacted.
    assert len(scheduler._queue) < 100
    assert scheduler.pending == 1
    scheduler.run()
    assert keeper_fired == [True]


def test_run_until_periodic_check_interval():
    scheduler = Scheduler()
    fired = []
    for i in range(20):
        scheduler.schedule(float(i + 1), lambda i=i: fired.append(i))
    checks = []

    def predicate():
        checks.append(len(fired))
        return len(fired) >= 10

    assert scheduler.run_until(predicate, check_interval=4)
    # The predicate is only evaluated every 4 events, so we overshoot to the
    # next multiple of 4 instead of stopping at exactly 10.
    assert len(fired) == 12
    assert len(checks) <= 5


def test_run_until_check_interval_validation():
    scheduler = Scheduler()
    with pytest.raises(ValueError):
        scheduler.run_until(lambda: True, check_interval=0)


def test_run_advances_now_to_max_time_when_queue_empty():
    scheduler = Scheduler()
    scheduler.run(max_time=42.0)
    assert scheduler.now == 42.0
