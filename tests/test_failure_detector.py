"""Tests for the heartbeat failure detector and unsolicited view changes.

Four layers:

* the :class:`FailureDetector` scoring machine in isolation — bounded and
  phi modes, refutation accounting, watch-set updates;
* the weak-event substrate — background (weak) scheduler events and weak
  heartbeat deliveries must never keep run-to-quiescence alive;
* the live clusters — the pump-driven path from a silent leader to a
  service-proposed view change and pushed session failovers, on the
  message-passing and RDMA stacks, plus the baseline's passive wiring;
* the scenario pack and the detector sweep — zero undecided transactions,
  detector-vs-timeout recovery speed, grid parsing and jobs determinism.
"""

import json
from dataclasses import replace

import pytest

from repro.baselines.cluster import BaselineCluster
from repro.client import RetryPolicy
from repro.cluster import Cluster
from repro.core.failuredetector import DetectorPolicy, FailureDetector
from repro.core.types import Decision
from repro.runtime.events import Scheduler
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.spec import DetectorSpec, ExecSpec, ScenarioError
from repro.scenarios.sweep import (
    DEFAULT_DETECTOR_GRID,
    parse_detector,
    parse_detector_grid,
    run_detector_sweep,
    sort_detector_grid,
)

from helpers import rw_payload, shard_key


DETECTOR_SCENARIOS = (
    "detector-leader-crash",
    "gray-failure-slow-leader",
    "flapping-detector",
)


# ----------------------------------------------------------------------
# DetectorPolicy
# ----------------------------------------------------------------------

def test_detector_policy_validation():
    with pytest.raises(ValueError, match="mode"):
        DetectorPolicy(mode="psychic", interval=1.0).validate()
    with pytest.raises(ValueError, match="interval"):
        DetectorPolicy(interval=-1.0).validate()
    with pytest.raises(ValueError, match="threshold"):
        DetectorPolicy(interval=1.0, threshold=0).validate()
    with pytest.raises(ValueError, match="phi"):
        DetectorPolicy(mode="phi", interval=1.0, phi_threshold=0.0).validate()
    with pytest.raises(ValueError, match="confirmations"):
        DetectorPolicy(interval=1.0, confirmations=0).validate()
    assert not DetectorPolicy().enabled  # interval 0 = off, valid
    DetectorPolicy().validate()
    assert DetectorPolicy(interval=2.0).enabled
    assert DetectorPolicy().describe() == "off"


# ----------------------------------------------------------------------
# FailureDetector scoring
# ----------------------------------------------------------------------

def test_bounded_detector_suspects_after_threshold_windows():
    detector = FailureDetector(DetectorPolicy(interval=2.0, threshold=3), owner="s/r0")
    detector.watch(("s/r0", "s/r1"), now=0.0)  # the owner never watches itself
    assert detector.tick(4.0) == []  # 2 missed windows < 3
    assert detector.tick(6.0) == ["s/r1"]  # exactly 3: suspect
    assert detector.suspected == frozenset({"s/r1"})
    assert detector.suspicions == 1
    assert detector.tick(8.0) == []  # already suspected: reported once


def test_heartbeat_refutes_suspicion_and_counts_false_positive():
    detector = FailureDetector(DetectorPolicy(interval=2.0, threshold=3), owner="me")
    detector.watch(("slow",), now=0.0)
    assert detector.tick(6.0) == ["slow"]
    detector.record("slow", now=7.0)  # the peer was alive after all
    assert detector.suspected == frozenset()
    assert detector.false_suspicions == 1
    # Fresh silence after the refutation re-suspects (and re-reports).
    assert detector.tick(13.0) == ["slow"]
    assert detector.suspicions == 2


def test_phi_detector_scores_against_smoothed_interarrival_mean():
    policy = DetectorPolicy(mode="phi", interval=2.0, phi_threshold=4.0)
    detector = FailureDetector(policy, owner="me")
    detector.watch(("peer",), now=0.0)
    for at in (2.0, 4.0, 6.0, 8.0):
        detector.record("peer", at)  # steady 2-delay cadence
    assert detector.tick(12.0) == []  # silence 4 / mean ~2 = ~2 < 4
    assert detector.tick(18.0) == ["peer"]  # silence 10 / mean ~2 >= 4


def test_watch_keeps_history_and_gives_new_peers_benefit_of_the_doubt():
    detector = FailureDetector(DetectorPolicy(interval=2.0, threshold=3), owner="me")
    detector.watch(("old",), now=0.0)
    detector.record("old", now=5.0)
    detector.watch(("old", "fresh"), now=100.0)  # view change adds a member
    # The retained peer keeps its history (silent since 5.0: suspect); the
    # fresh peer starts with an implied arrival at the watch time and
    # cannot be suspected instantly.
    assert detector.tick(101.0) == ["old"]
    assert detector.score("fresh", 101.0) < detector.score("old", 101.0)
    detector.watch(("fresh",), now=102.0)  # "old" deposed: suspicion state drops
    assert detector.tick(200.0) == ["fresh"]
    detector.watch((), now=201.0)
    assert detector.suspected == frozenset()
    # Heartbeats from unwatched senders are ignored, not crashes.
    detector.record("stranger", now=202.0)


# ----------------------------------------------------------------------
# weak events: background activity never keeps the run alive
# ----------------------------------------------------------------------

def test_weak_recurring_timer_does_not_keep_run_alive():
    scheduler = Scheduler()
    fired = []

    def tick():
        fired.append(scheduler.now)
        scheduler.schedule_weak(2.0, tick)

    scheduler.schedule_weak(2.0, tick)
    assert scheduler.run() == 0  # only weak work: immediately quiescent
    assert fired == []
    # Strong work resumes the background ticks until it drains.
    scheduler.schedule(5.0, lambda: None)
    scheduler.run()
    assert fired == [2.0, 4.0]
    assert scheduler.pending == 1  # the re-armed weak tick stays queued
    assert scheduler.strong_pending == 0


def test_weak_delivery_does_not_keep_run_alive():
    """An in-flight heartbeat on a slow link must not stall quiescence —
    the gray-failure scenario's termination depends on this."""
    from repro.runtime.network import Network
    from repro.runtime.process import Process

    class Sink(Process):
        def __init__(self, pid):
            super().__init__(pid)
            self.got = []

        def on_heartbeat(self, msg, sender):  # noqa: ANN001
            self.got.append(msg)

    from repro.core.messages import Heartbeat

    scheduler = Scheduler()
    network = Network(scheduler)
    a, b = Sink("a"), Sink("b")
    network.register(a)
    network.register(b)
    network.add_extra_delay("a", "b", 7.0)
    a.send("b", Heartbeat(shard="s", epoch=1), weak=True)
    assert scheduler.run() == 0  # the weak delivery alone is quiescence
    assert b.got == []
    scheduler.schedule(20.0, lambda: None)  # strong work past the delivery
    scheduler.run()
    assert len(b.got) == 1  # ... lets the heartbeat land on the way


# ----------------------------------------------------------------------
# live clusters: silence -> suspicion -> view change -> pushed failover
# ----------------------------------------------------------------------

def _payloads(cluster, count, prefix):
    return [rw_payload(f"{prefix}{i}", tiebreak=f"{prefix}{i}") for i in range(count)]


def test_detector_drives_unsolicited_view_change_after_leader_crash():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=3,
        seed=21,
        retry=RetryPolicy(timeout=30.0, backoff=1.5, max_attempts=6),
        detector=DetectorPolicy(interval=2.0, threshold=3),
    )
    decisions = cluster.certify_many(_payloads(cluster, 6, "warm"))
    assert all(d is not None for d in decisions.values())
    cluster.crash_leader("shard-0")  # nobody calls reconfigure()
    key = shard_key(cluster.scheme, "shard-0")
    decisions = cluster.certify_many(
        [rw_payload(f"{key}.{i}", tiebreak=f"post{i}") for i in range(6)]
    )
    assert all(d is not None for d in decisions.values())
    config = cluster.current_configuration("shard-0")
    assert config.epoch == 2  # the detector reconfigured the shard
    stats = cluster.detector_stats()
    assert stats["suspicions"] >= 1
    assert stats["view_changes"] >= 1
    assert stats["unsolicited_reconfigurations"] >= 1
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_confirmation_quorum_holds_back_single_observer():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=3,
        seed=21,
        retry=RetryPolicy(timeout=30.0, backoff=1.5, max_attempts=6),
        detector=DetectorPolicy(interval=2.0, threshold=3, confirmations=2),
    )
    leader = cluster.leader_of("shard-0")
    follower = cluster.followers_of("shard-0")[0]
    cluster.network.block(leader, follower)  # one observer goes deaf
    decisions = cluster.certify_many(_payloads(cluster, 12, "quorum"))
    assert all(d is not None for d in decisions.values())
    cluster.run()  # drain the suspicion report still in flight
    # One suspecting observer < confirmations: the service must not act.
    assert cluster.current_configuration("shard-0").epoch == 1
    stats = cluster.detector_stats()
    assert stats["view_changes"] == 0
    assert cluster.config_service.suspicion_reports >= 1


def test_rdma_detector_drives_global_reconfiguration():
    cluster = Cluster(
        num_shards=2,
        replicas_per_shard=3,
        protocol="rdma",
        seed=21,
        retry=RetryPolicy(timeout=30.0, backoff=1.5, max_attempts=6),
        detector=DetectorPolicy(interval=2.0, threshold=3),
    )
    decisions = cluster.certify_many(_payloads(cluster, 6, "rwarm"))
    assert all(d is not None for d in decisions.values())
    cluster.crash_leader("shard-0")
    key = shard_key(cluster.scheme, "shard-0")
    decisions = cluster.certify_many(
        [rw_payload(f"{key}.{i}", tiebreak=f"rpost{i}") for i in range(6)]
    )
    assert all(d is not None for d in decisions.values())
    assert cluster.current_configuration("shard-0").epoch >= 2
    stats = cluster.detector_stats()
    assert stats["suspicions"] >= 1
    assert stats["unsolicited_reconfigurations"] >= 1
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_baseline_detector_is_passive():
    cluster = BaselineCluster(
        num_shards=2,
        failures_tolerated=1,
        seed=7,
        detector=DetectorPolicy(interval=2.0, threshold=3),
    )
    decisions = cluster.certify_many(_payloads(cluster, 8, "base"))
    assert all(d is Decision.COMMIT for d in decisions.values())
    stats = cluster.detector_stats()
    assert stats["heartbeat_ticks"] >= 1
    assert stats["suspicions"] == 0  # steady state: nobody is silent
    assert stats["view_changes"] == 0  # the baseline has no reconfiguration
    result, _ = cluster.check()
    assert result.ok


def test_disabled_detector_leaves_clusters_inert():
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=3)
    decisions = cluster.certify_many(_payloads(cluster, 4, "off"))
    assert all(d is not None for d in decisions.values())
    stats = cluster.detector_stats()
    assert stats["heartbeat_ticks"] == 0
    assert stats["suspicions"] == 0
    assert not cluster.pump.started


# ----------------------------------------------------------------------
# the scenario pack
# ----------------------------------------------------------------------

def test_detector_scenarios_end_with_zero_undecided():
    for name in DETECTOR_SCENARIOS:
        result = ScenarioRunner(get_scenario(name)).run()
        assert result.passed, (name, result.check_reason)
        assert result.undecided == 0, name
        assert result.orphaned == 0, name


def test_detector_leader_crash_recovers_before_the_retry_window():
    result = ScenarioRunner(get_scenario("detector-leader-crash")).run()
    assert result.view_changes >= 1
    assert result.unsolicited_reconfigurations >= 1
    assert result.pushed_failovers >= 1
    assert result.recovery_times  # the crash was followed by an install
    # Well inside the 30-delay retry timeout that timeout-driven failover
    # would have burned first.
    assert max(result.recovery_times) < 30.0


def test_detector_failover_beats_timeout_failover_by_2x():
    detector = ScenarioRunner(get_scenario("detector-leader-crash")).run()
    timeout = ScenarioRunner(get_scenario("timeout-failover-leader-crash")).run()
    assert detector.recovery_times and timeout.recovery_times
    ratio = min(timeout.recovery_times) / max(detector.recovery_times)
    assert ratio >= 2.0, (timeout.recovery_times, detector.recovery_times)


def test_gray_failure_deposes_slow_but_alive_leader():
    result = ScenarioRunner(get_scenario("gray-failure-slow-leader")).run()
    assert result.suspicions >= 1
    assert result.view_changes >= 1  # bounded mode cannot tell slow from dead
    assert result.unsolicited_reconfigurations >= 1
    assert result.false_suspicions >= 1  # the late heartbeats did arrive


def test_flapping_detector_counts_false_positive_without_view_change():
    result = ScenarioRunner(get_scenario("flapping-detector")).run()
    assert result.false_suspicions >= 1
    assert result.view_changes == 0  # 1 reporter < confirmations=2
    assert result.unsolicited_reconfigurations == 0


def test_detector_scenarios_parallel_shards_digests_identical():
    for name in DETECTOR_SCENARIOS:
        spec = get_scenario(name)
        serial = ScenarioRunner(replace(spec, execution=ExecSpec())).run()
        grouped = ScenarioRunner(
            replace(spec, execution=ExecSpec(mode="parallel-shards", groups=2))
        ).run()
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            grouped.as_dict(), sort_keys=True
        ), name


# ----------------------------------------------------------------------
# the detector sweep
# ----------------------------------------------------------------------

def test_parse_detector_points():
    assert parse_detector("off") == DetectorSpec()
    point = parse_detector("2:threshold=6")
    assert (point.interval, point.threshold, point.mode) == (2.0, 6, "bounded")
    point = parse_detector("2:mode=phi,phi=6")
    assert (point.mode, point.phi_threshold) == ("phi", 6.0)
    point = parse_detector("1:confirmations=2")
    assert (point.interval, point.confirmations) == (1.0, 2)
    with pytest.raises(ScenarioError):
        parse_detector("fast")
    with pytest.raises(ScenarioError):
        parse_detector("2:bogus=1")
    with pytest.raises(ScenarioError):
        parse_detector("2:mode=psychic")
    assert parse_detector_grid(["default"]) == DEFAULT_DETECTOR_GRID


def test_sort_detector_grid_puts_the_off_point_first():
    ordered = sort_detector_grid(tuple(reversed(DEFAULT_DETECTOR_GRID)))
    assert ordered[0] == DetectorSpec()  # interval 0 sorts first
    assert [p.interval for p in ordered] == sorted(p.interval for p in ordered)


def test_detector_sweep_recovers_faster_with_aggressive_policies():
    spec = get_scenario("detector-leader-crash")
    grid = (
        DetectorSpec(),
        DetectorSpec(interval=1.0, threshold=3),
        DetectorSpec(interval=4.0, threshold=3),
    )
    sweep = run_detector_sweep(spec, grid, jobs=1)
    assert sweep.passed
    curve = sweep.curve()
    off, fast, slow = curve
    assert off["mean_ttr"] is None  # never recovered: nothing reconfigures
    assert off["orphaned"] > 0
    assert fast["mean_ttr"] < slow["mean_ttr"]
    assert fast["orphaned"] == slow["orphaned"] == 0


def test_detector_sweep_jobs_fanout_is_byte_identical():
    spec = get_scenario("detector-leader-crash")
    spec = replace(spec, workload=replace(spec.workload, txns=40))
    grid = (DetectorSpec(), DetectorSpec(interval=2.0, threshold=3))
    serial = run_detector_sweep(spec, grid, jobs=1)
    fanned = run_detector_sweep(spec, grid, jobs=2)
    assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        fanned.as_dict(), sort_keys=True
    )
