"""Unit tests for the configuration service and the transaction directory."""

from dataclasses import dataclass

import pytest

from repro.configservice.service import ConfigurationService, GlobalConfigurationService
from repro.core.directory import TransactionDirectory
from repro.core.messages import (
    ConfigChange,
    CsCompareAndSwap,
    CsGet,
    CsGetLast,
    CsReply,
)
from repro.core.types import Configuration, GlobalConfiguration
from repro.runtime.events import Scheduler
from repro.runtime.network import Network
from repro.runtime.process import Process


class Recorder(Process):
    """Collects every message it receives."""

    def __init__(self, pid):
        super().__init__(pid)
        self.messages = []

    def handle(self, message, sender):
        self.messages.append((message, sender))


def build_cs():
    scheduler = Scheduler()
    network = Network(scheduler)
    cs = ConfigurationService()
    network.register(cs)
    requester = Recorder("requester")
    network.register(requester)
    return scheduler, network, cs, requester


def replies_of(recorder):
    return [m for m, _ in recorder.messages if isinstance(m, CsReply)]


def test_get_last_returns_installed_configuration():
    scheduler, network, cs, requester = build_cs()
    config = Configuration(epoch=1, members=("a", "b"), leader="a")
    cs.install_initial("s0", config)
    requester.send(cs.pid, CsGetLast(shard="s0", request_id=1))
    scheduler.run()
    reply = replies_of(requester)[0]
    assert reply.ok and reply.config == config


def test_get_last_unknown_shard_not_ok():
    scheduler, network, cs, requester = build_cs()
    requester.send(cs.pid, CsGetLast(shard="nope", request_id=1))
    scheduler.run()
    assert not replies_of(requester)[0].ok


def test_get_specific_epoch():
    scheduler, network, cs, requester = build_cs()
    c1 = Configuration(epoch=1, members=("a", "b"), leader="a")
    cs.install_initial("s0", c1)
    c2 = Configuration(epoch=2, members=("b", "c"), leader="b")
    requester.send(cs.pid, CsCompareAndSwap(shard="s0", expected_epoch=1, config=c2, request_id=1))
    scheduler.run()
    requester.send(cs.pid, CsGet(shard="s0", epoch=1, request_id=2))
    requester.send(cs.pid, CsGet(shard="s0", epoch=2, request_id=3))
    requester.send(cs.pid, CsGet(shard="s0", epoch=3, request_id=4))
    scheduler.run()
    replies = {r.request_id: r for r in replies_of(requester)}
    assert replies[2].config == c1
    assert replies[3].config == c2
    assert not replies[4].ok


def test_compare_and_swap_succeeds_only_on_matching_epoch():
    scheduler, network, cs, requester = build_cs()
    cs.install_initial("s0", Configuration(epoch=1, members=("a",), leader="a"))
    good = Configuration(epoch=2, members=("b",), leader="b")
    stale = Configuration(epoch=3, members=("c",), leader="c")
    requester.send(cs.pid, CsCompareAndSwap(shard="s0", expected_epoch=1, config=good, request_id=1))
    requester.send(cs.pid, CsCompareAndSwap(shard="s0", expected_epoch=1, config=stale, request_id=2))
    scheduler.run()
    replies = {r.request_id: r for r in replies_of(requester)}
    assert replies[1].ok
    assert not replies[2].ok
    assert cs.last_configuration("s0") == good
    assert cs.cas_attempts == 2 and cs.cas_successes == 1


def test_compare_and_swap_requires_higher_epoch():
    scheduler, network, cs, requester = build_cs()
    cs.install_initial("s0", Configuration(epoch=5, members=("a",), leader="a"))
    same_epoch = Configuration(epoch=5, members=("b",), leader="b")
    requester.send(
        cs.pid, CsCompareAndSwap(shard="s0", expected_epoch=5, config=same_epoch, request_id=1)
    )
    scheduler.run()
    assert not replies_of(requester)[0].ok


def test_successful_cas_broadcasts_config_change_to_other_shards():
    scheduler, network, cs, requester = build_cs()
    cs.install_initial("s0", Configuration(epoch=1, members=("a", "b"), leader="a"))
    other_member = Recorder("x")
    network.register(other_member)
    cs.install_initial("s1", Configuration(epoch=1, members=("x",), leader="x"))
    new_config = Configuration(epoch=2, members=("b", "c"), leader="b")
    requester.send(
        cs.pid, CsCompareAndSwap(shard="s0", expected_epoch=1, config=new_config, request_id=1)
    )
    scheduler.run()
    changes = [m for m, _ in other_member.messages if isinstance(m, ConfigChange)]
    assert len(changes) == 1
    assert changes[0].shard == "s0" and changes[0].epoch == 2 and changes[0].leader == "b"


def test_global_configuration_service_cas_and_get():
    scheduler = Scheduler()
    network = Network(scheduler)
    cs = GlobalConfigurationService()
    network.register(cs)
    requester = Recorder("requester")
    network.register(requester)
    initial = GlobalConfiguration(epoch=1, members={"s0": ("a",)}, leaders={"s0": "a"})
    cs.install_initial(initial)
    new = GlobalConfiguration(epoch=2, members={"s0": ("b",)}, leaders={"s0": "b"})
    requester.send(cs.pid, CsCompareAndSwap(shard="*", expected_epoch=1, config=new, request_id=1))
    requester.send(cs.pid, CsGetLast(shard="*", request_id=2))
    requester.send(cs.pid, CsGet(shard="*", epoch=1, request_id=3))
    scheduler.run()
    replies = {r.request_id: r for r in replies_of(requester)}
    assert replies[1].ok
    assert replies[2].config == new
    assert replies[3].config == initial
    # A CAS against a stale epoch fails.
    requester.send(cs.pid, CsCompareAndSwap(shard="*", expected_epoch=1, config=new, request_id=4))
    scheduler.run()
    assert not {r.request_id: r for r in replies_of(requester)}[4].ok


# ----------------------------------------------------------------------
# transaction directory
# ----------------------------------------------------------------------
def test_directory_register_and_query():
    directory = TransactionDirectory()
    directory.register("t1", client="client-0", shards=["s0", "s1"])
    assert directory.known("t1")
    assert directory.client_of("t1") == "client-0"
    assert directory.shards_of("t1") == frozenset({"s0", "s1"})
    assert len(directory) == 1
    assert directory.get("missing") is None


def test_directory_idempotent_registration():
    directory = TransactionDirectory()
    directory.register("t1", client="c", shards=["s0"])
    directory.register("t1", client="c", shards=["s0"])
    assert len(directory) == 1


def test_directory_rejects_conflicting_registration():
    directory = TransactionDirectory()
    directory.register("t1", client="c", shards=["s0"])
    with pytest.raises(ValueError):
        directory.register("t1", client="other", shards=["s0"])
