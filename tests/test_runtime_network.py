"""Unit tests for the simulated network and the process/actor model."""

from dataclasses import dataclass

import pytest

from repro.runtime.events import Scheduler
from repro.runtime.failures import CrashPlan, FailureInjector
from repro.runtime.network import Network, UniformLatency, UnitLatency
from repro.runtime.process import Process, handler_name


@dataclass(frozen=True)
class Ping:
    value: int


@dataclass(frozen=True)
class Pong:
    value: int


class Echo(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_ping(self, msg, sender):
        self.received.append((msg.value, sender, self.now))
        self.send(sender, Pong(msg.value))

    def on_pong(self, msg, sender):
        self.received.append((msg.value, sender, self.now))


def build(latency=None, seed=0):
    scheduler = Scheduler()
    network = Network(scheduler, latency=latency or UnitLatency(), seed=seed)
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    return scheduler, network, a, b


def test_handler_name_derivation():
    assert handler_name(Ping(1)) == "on_ping"
    assert handler_name(Pong(1)) == "on_pong"


def test_message_round_trip_takes_two_delays():
    scheduler, network, a, b = build()
    a.send("b", Ping(7))
    scheduler.run()
    assert b.received == [(7, "a", 1.0)]
    assert a.received == [(7, "b", 2.0)]


def test_fifo_order_per_channel():
    scheduler, network, a, b = build(latency=UniformLatency(0.1, 2.0), seed=42)
    for i in range(20):
        a.send("b", Ping(i))
    scheduler.run()
    values = [v for v, _, _ in b.received]
    assert values == list(range(20))


def test_fifo_delivery_times_monotone():
    scheduler, network, a, b = build(latency=UniformLatency(0.1, 2.0), seed=7)
    for i in range(10):
        a.send("b", Ping(i))
    scheduler.run()
    times = [t for _, _, t in b.received]
    assert times == sorted(times)


def test_messages_to_crashed_process_are_dropped():
    scheduler, network, a, b = build()
    network.crash("b")
    a.send("b", Ping(1))
    scheduler.run()
    assert b.received == []
    assert network.stats.dropped == 1


def test_crashed_process_does_not_send():
    scheduler, network, a, b = build()
    network.crash("a")
    a.send("b", Ping(1))
    scheduler.run()
    assert b.received == []


def test_crash_mid_flight_drops_delivery():
    scheduler, network, a, b = build()
    a.send("b", Ping(1))
    network.scheduler.schedule(0.5, lambda: network.crash("b"))
    scheduler.run()
    assert b.received == []


def test_blocked_channel_drops_messages_one_direction():
    scheduler, network, a, b = build()
    network.block("a", "b")
    a.send("b", Ping(1))
    b.send("a", Ping(2))
    scheduler.run()
    assert b.received == []
    assert any(v == 2 for v, _, _ in a.received)


def test_partition_and_heal():
    scheduler, network, a, b = build()
    network.partition(["a"], ["b"])
    a.send("b", Ping(1))
    scheduler.run()
    assert b.received == []
    network.heal()
    a.send("b", Ping(2))
    scheduler.run()
    assert [v for v, _, _ in b.received] == [2]


def test_message_to_unknown_destination_is_counted_dropped():
    scheduler, network, a, b = build()
    a.send("nobody", Ping(1))
    scheduler.run()
    assert network.stats.dropped == 1


def test_duplicate_registration_rejected():
    scheduler = Scheduler()
    network = Network(scheduler)
    network.register(Echo("a"))
    with pytest.raises(ValueError):
        network.register(Echo("a"))


def test_stats_count_sends_and_deliveries_by_type_and_process():
    scheduler, network, a, b = build()
    a.send("b", Ping(1))
    scheduler.run()
    stats = network.stats
    assert stats.sent_by_process["a"] == 1
    assert stats.sent_by_process["b"] == 1  # the Pong reply
    assert stats.sent_by_type["Ping"] == 1
    assert stats.sent_by_type["Pong"] == 1
    assert stats.received_by_process["b"] == 1
    assert stats.handled_by("a") == 2
    assert stats.total_sent == 2
    assert stats.total_delivered == 2


def test_unhandled_message_type_raises():
    @dataclass(frozen=True)
    class Mystery:
        pass

    scheduler, network, a, b = build()
    a.send("b", Mystery())
    with pytest.raises(NotImplementedError):
        scheduler.run()


def test_timers_suppressed_after_crash():
    scheduler, network, a, b = build()
    fired = []
    a.set_timer(1.0, lambda: fired.append("x"))
    a.crash()
    scheduler.run()
    assert fired == []


def test_uniform_latency_bounds_respected():
    latency = UniformLatency(0.5, 1.5)
    scheduler, network, a, b = build(latency=latency, seed=3)
    a.send("b", Ping(1))
    scheduler.run()
    assert 0.5 <= b.received[0][2] <= 1.5


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(2.0, 1.0)
    with pytest.raises(ValueError):
        UniformLatency(-1.0, 1.0)


def test_trace_records_deliveries_when_enabled():
    scheduler, network, a, b = build()
    network.trace_enabled = True
    a.send("b", Ping(1))
    scheduler.run()
    assert len(network.trace) == 2
    time, src, dst, message = network.trace[0]
    assert (src, dst) == ("a", "b")
    assert isinstance(message, Ping)


def test_failure_injector_timed_crash():
    scheduler, network, a, b = build()
    injector = FailureInjector(network)
    injector.arm(CrashPlan(pid="b", at_time=1.5))
    a.send("b", Ping(1))  # delivered at 1.0, before the crash
    scheduler.schedule(3.0, lambda: a.send("b", Ping(2)))  # after the crash
    scheduler.run()
    assert [v for v, _, _ in b.received] == [1]
    assert injector.executed == ["b"]


def test_failure_injector_conditional_crash():
    scheduler, network, a, b = build()
    injector = FailureInjector(network, poll_interval=0.25)
    injector.arm(CrashPlan(pid="b", when=lambda: len(b.received) >= 1))
    a.send("b", Ping(1))
    scheduler.schedule(5.0, lambda: a.send("b", Ping(2)))
    scheduler.run()
    assert [v for v, _, _ in b.received] == [1]


def test_crash_plan_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        CrashPlan(pid="a")
    with pytest.raises(ValueError):
        CrashPlan(pid="a", at_time=1.0, when=lambda: True)
