"""Tests for the transactional store, the OCC executor and the workload generators."""

import pytest

from repro.cluster import Cluster
from repro.core.serializability import VERSION_ZERO
from repro.core.types import Decision
from repro.store.executor import TransactionContext, TransactionalStore
from repro.store.kv import VersionedKVStore
from repro.workload.generators import (
    BankWorkload,
    ReadWriteWorkload,
    TransactionSpec,
    UniformKeyGenerator,
    ZipfianKeyGenerator,
)

from helpers import rw_payload


# ----------------------------------------------------------------------
# versioned KV store
# ----------------------------------------------------------------------
def test_store_reads_default_to_version_zero():
    store = VersionedKVStore()
    assert store.read("missing").version == VERSION_ZERO
    assert store.value_of("missing", default=42) == 42


def test_store_seed_and_read():
    store = VersionedKVStore(initial={"x": 10})
    assert store.value_of("x") == 10
    assert store.version_of("x") == VERSION_ZERO


def test_apply_payload_installs_new_version():
    store = VersionedKVStore(initial={"x": 1})
    p = rw_payload("x", version=0, value=2, tiebreak="a")
    store.apply_payload(p)
    assert store.value_of("x") == 2
    assert store.version_of("x") == p.commit_version
    assert len(store.history_of("x")) == 2


def test_apply_payload_rejects_out_of_order_versions():
    store = VersionedKVStore(initial={"x": 1})
    newer = rw_payload("x", version=5, value=3, tiebreak="b")
    older = rw_payload("x", version=0, value=2, tiebreak="a")
    store.apply_payload(newer)
    with pytest.raises(ValueError):
        store.apply_payload(older)


def test_read_at_version():
    store = VersionedKVStore(initial={"x": 1})
    p = rw_payload("x", version=0, value=2, tiebreak="a")
    store.apply_payload(p)
    assert store.read_at("x", VERSION_ZERO).value == 1
    assert store.read_at("x", p.commit_version).value == 2


# ----------------------------------------------------------------------
# transaction context
# ----------------------------------------------------------------------
def test_context_buffers_reads_and_writes():
    store = VersionedKVStore(initial={"x": 7})
    ctx = TransactionContext(store, name="t")
    assert ctx.read("x") == 7
    ctx.write("x", 8)
    assert ctx.read("x") == 8  # read-your-writes
    p = ctx.payload()
    assert p.read_objects == {"x"} and p.written_objects == {"x"}
    assert p.commit_version > VERSION_ZERO


def test_context_write_auto_reads():
    store = VersionedKVStore(initial={"x": 7})
    ctx = TransactionContext(store, name="t")
    ctx.write("x", 9)
    assert "x" in ctx.read_set


def test_context_increment():
    store = VersionedKVStore(initial={"x": 2})
    ctx = TransactionContext(store, name="t")
    assert ctx.increment("x", 3) == 5
    assert ctx.write_set == {"x": 5}


# ----------------------------------------------------------------------
# transactional store on a cluster
# ----------------------------------------------------------------------
@pytest.fixture(params=["message-passing", "rdma"])
def store(request):
    cluster = Cluster(num_shards=2, replicas_per_shard=2, protocol=request.param, seed=71)
    return TransactionalStore(cluster, initial={"x": 0, "y": 0})


def test_transact_commits_and_applies(store):
    outcome = store.transact(lambda ctx: ctx.write("x", ctx.read("x") + 1))
    assert outcome.committed
    assert store.read("x") == 1


def test_sequential_transactions_see_each_other(store):
    for expected in range(1, 4):
        outcome = store.transact(lambda ctx: ctx.increment("x"))
        assert outcome.committed
        assert store.read("x") == expected


def test_conflicting_batch_commits_exactly_one(store):
    outcomes = store.run_batch([lambda ctx: ctx.increment("x") for _ in range(4)])
    assert sum(o.committed for o in outcomes) == 1
    assert store.read("x") == 1
    assert store.committed_count == 1 and store.aborted_count == 3


def test_disjoint_batch_all_commit(store):
    outcomes = store.run_batch(
        [lambda ctx: ctx.increment("x"), lambda ctx: ctx.increment("y")]
    )
    assert all(o.committed for o in outcomes)
    assert store.read("x") == 1 and store.read("y") == 1


def test_bank_transfers_conserve_money(store):
    bank = BankWorkload(num_accounts=6, initial_balance=50, seed=5)
    bank_store = TransactionalStore(store.cluster, initial=bank.initial_state())
    total_before = bank.total_balance(bank_store.store)
    for _ in range(5):
        bank_store.run_batch(bank.batch(4))
    assert bank.total_balance(bank_store.store) == total_before
    result, violations = store.cluster.check()
    assert result.ok and violations == []


# ----------------------------------------------------------------------
# workload generators
# ----------------------------------------------------------------------
def test_uniform_generator_deterministic_and_in_range():
    g1 = UniformKeyGenerator(num_keys=10, seed=3)
    g2 = UniformKeyGenerator(num_keys=10, seed=3)
    assert [g1.key() for _ in range(20)] == [g2.key() for _ in range(20)]
    assert all(k.startswith("key-") for k in g1.keys(5))
    assert len(set(g1.keys(5))) == 5


def test_uniform_generator_validation():
    with pytest.raises(ValueError):
        UniformKeyGenerator(num_keys=0)


def test_zipfian_generator_skews_towards_hot_keys():
    skewed = ZipfianKeyGenerator(num_keys=100, theta=1.2, seed=3)
    counts = {}
    for _ in range(2000):
        key = skewed.key()
        counts[key] = counts.get(key, 0) + 1
    hottest = max(counts.values())
    assert counts.get("key-0", 0) == hottest
    uniform_like = ZipfianKeyGenerator(num_keys=100, theta=0.0, seed=3)
    counts_uniform = {}
    for _ in range(2000):
        key = uniform_like.key()
        counts_uniform[key] = counts_uniform.get(key, 0) + 1
    assert max(counts_uniform.values()) < hottest


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianKeyGenerator(num_keys=0)
    with pytest.raises(ValueError):
        ZipfianKeyGenerator(num_keys=10, theta=-1)


def test_read_write_workload_specs():
    workload = ReadWriteWorkload(UniformKeyGenerator(50, seed=1), reads_per_txn=3, writes_per_txn=1, seed=1)
    specs = workload.batch(5)
    assert len(specs) == 5
    for spec in specs:
        assert len(spec.reads) == 3
        assert len(spec.writes) == 1
        assert spec.writes[0][0] in spec.reads


def test_read_write_workload_validation():
    with pytest.raises(ValueError):
        ReadWriteWorkload(UniformKeyGenerator(10), reads_per_txn=1, writes_per_txn=2)


def test_transaction_spec_body_executes_operations():
    store = VersionedKVStore(initial={"a": 1, "b": 2})
    spec = TransactionSpec(reads=("a", "b"), writes=(("a", 9),), label="s")
    ctx = TransactionContext(store, name="t")
    spec.body()(ctx)
    assert ctx.read_set.keys() == {"a", "b"}
    assert ctx.write_set == {"a": 9}


def test_bank_workload_properties():
    bank = BankWorkload(num_accounts=4, initial_balance=10, seed=1)
    assert len(bank.initial_state()) == 4
    body = bank.next_transfer(amount=5)
    store = VersionedKVStore(initial=bank.initial_state())
    ctx = TransactionContext(store, name="t")
    moved = body(ctx)
    assert 0 <= moved <= 5
    with pytest.raises(ValueError):
        BankWorkload(num_accounts=1)
