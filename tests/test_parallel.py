"""Tests for the multi-core execution tiers (``repro.runtime.parallel``).

Tier A (process fan-out): seed derivation, deterministic result ordering,
worker-crash surfacing, and byte-identity of sweeps across ``jobs`` counts.

Tier B (conservative parallel-DES): installation eligibility rules, and the
headline contract — the grouped engine replays the serial engine's event
order byte for byte, locked at three levels: in-process result/history
comparison across the scenario library, subprocess comparison across
``PYTHONHASHSEED`` values, and the CLI path.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.runtime.network import LognormalLatency, Network, UnitLatency
from repro.runtime.parallel import (
    GroupedScheduler,
    ParallelExecutor,
    WorkerError,
    derive_seed,
    partition_contiguous,
    resolve_jobs,
)
from repro.scenarios import (
    BatchSpec,
    ExecSpec,
    LatencySpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    run_latency_sweep,
    run_repetitions,
    run_scenarios,
    sort_batch_grid,
    sort_latency_grid,
)
from repro.scenarios.sweep import DEFAULT_BATCH_GRID, DEFAULT_GRID
from repro.spec.history import History


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _small(name: str, txns: int = 30, **overrides) -> ScenarioSpec:
    spec = get_scenario(name)
    return spec.with_overrides(
        workload=replace(spec.workload, txns=txns), **overrides
    )


def _shards(groups: int) -> ExecSpec:
    return ExecSpec(mode="parallel-shards", groups=groups)


def _dumps(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def _pool_env(monkeypatch) -> None:
    """Make this test module importable from spawn pool workers (the pool
    pickles functions by qualified name; workers must import tests/)."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    tests_dir = os.path.dirname(os.path.abspath(__file__))
    monkeypatch.setenv(
        "PYTHONPATH",
        os.pathsep.join(
            filter(None, (src_dir, tests_dir, os.environ.get("PYTHONPATH")))
        ),
    )


def _square(value: int) -> int:
    return value * value


def _explode(value: int) -> int:
    raise ValueError(f"worker boom on {value}")


# ----------------------------------------------------------------------
# Tier A: seeds, executor, crash surfacing
# ----------------------------------------------------------------------

def test_derive_seed_is_deterministic_and_scattered():
    seeds = [derive_seed(7, i) for i in range(100)]
    assert seeds == [derive_seed(7, i) for i in range(100)]
    assert len(set(seeds)) == 100
    assert all(0 <= s < 2**31 for s in seeds)
    with pytest.raises(ValueError):
        derive_seed(7, -1)


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_executor_inline_path_preserves_order_and_exceptions():
    executor = ParallelExecutor(jobs=1)
    assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]
    assert executor.map(_square, []) == []
    with pytest.raises(ValueError, match="worker boom"):
        executor.map(_explode, [5])


def test_executor_pool_returns_results_in_input_order(monkeypatch):
    _pool_env(monkeypatch)
    assert ParallelExecutor(jobs=2).map(_square, [4, 3, 2, 1]) == [16, 9, 4, 1]


def test_worker_crash_surfaces_child_traceback(monkeypatch):
    _pool_env(monkeypatch)
    with pytest.raises(WorkerError) as exc_info:
        ParallelExecutor(jobs=2).map(_explode, [10, 20])
    error = exc_info.value
    assert error.index == 0
    # The child's formatted traceback rides along, so the failure is
    # debuggable from the parent's log alone.
    assert "ValueError: worker boom on 10" in str(error)
    assert "Traceback" in error.child_traceback


def test_run_scenarios_identical_across_jobs(monkeypatch):
    _pool_env(monkeypatch)
    specs = [_small("steady-state"), _small("bank-transfers")]
    serial = run_scenarios(specs, jobs=1)
    parallel = run_scenarios(specs, jobs=2)
    assert [_dumps(r) for r in serial] == [_dumps(r) for r in parallel]


def test_run_repetitions_seed_schedule_is_jobs_invariant(monkeypatch):
    _pool_env(monkeypatch)
    spec = _small("steady-state")
    serial = run_repetitions(spec, 3, jobs=1)
    parallel = run_repetitions(spec, 3, jobs=2)
    assert [r.seed for r in serial] == [derive_seed(spec.seed, i) for i in range(3)]
    assert [_dumps(r) for r in serial] == [_dumps(r) for r in parallel]
    with pytest.raises(ValueError):
        run_repetitions(spec, 0)


def test_latency_sweep_identical_across_jobs(monkeypatch):
    _pool_env(monkeypatch)
    spec = _small("steady-state")
    serial = run_latency_sweep(spec, jobs=1)
    parallel = run_latency_sweep(spec, jobs=2)
    assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        parallel.as_dict(), sort_keys=True
    )


# ----------------------------------------------------------------------
# canonical grid ordering
# ----------------------------------------------------------------------

def test_default_grids_are_already_canonical():
    assert sort_latency_grid(DEFAULT_GRID) == DEFAULT_GRID
    assert sort_batch_grid(DEFAULT_BATCH_GRID) == DEFAULT_BATCH_GRID


def test_sweep_output_independent_of_grid_input_order():
    spec = _small("steady-state")
    shuffled = (DEFAULT_GRID[2], DEFAULT_GRID[0], DEFAULT_GRID[3], DEFAULT_GRID[1])
    assert json.dumps(run_latency_sweep(spec, shuffled).as_dict()) == json.dumps(
        run_latency_sweep(spec, DEFAULT_GRID).as_dict()
    )


def test_sort_latency_grid_orders_by_model_rank_then_params():
    grid = (
        LatencySpec(model="exponential", mean=2.0),
        LatencySpec(model="unit"),
        LatencySpec(model="uniform", low=0.5, high=1.5),
        LatencySpec(model="exponential", mean=1.0),
    )
    assert [p.describe() for p in sort_latency_grid(grid)] == [
        "unit",
        "uniform(low=0.5,high=1.5)",
        "exponential(mean=1)",
        "exponential(mean=2)",
    ]


def test_sort_batch_grid_orders_by_size_then_linger():
    grid = (
        BatchSpec(size=8, linger=2.0, adaptive=False),
        BatchSpec(),
        BatchSpec(size=8),
        BatchSpec(size=4),
    )
    assert [p.size for p in sort_batch_grid(grid)] == [0, 4, 8, 8]
    assert [p.linger for p in sort_batch_grid(grid)] == [0.0, 0.0, 0.0, 2.0]


# ----------------------------------------------------------------------
# Tier B: eligibility and installation rules
# ----------------------------------------------------------------------

def test_grouped_scheduler_needs_two_groups():
    with pytest.raises(ValueError):
        GroupedScheduler(1)


def test_partition_contiguous_is_balanced_and_contiguous():
    items = [f"shard-{i}" for i in range(5)]
    partition = partition_contiguous(items, 2)
    assert [partition[i] for i in items] == [0, 0, 0, 1, 1]
    assert partition_contiguous(items, 5) == {item: i for i, item in enumerate(items)}
    with pytest.raises(ValueError):
        partition_contiguous(items, 6)
    with pytest.raises(ValueError):
        partition_contiguous(items, 0)


def test_install_rejects_random_latency_models():
    scheduler = GroupedScheduler(2)
    network = Network(scheduler, latency=LognormalLatency(mean=1.0, sigma=0.5), seed=0)
    with pytest.raises(ValueError, match="deterministic latency"):
        scheduler.install(network, {})


def test_install_rejects_unknown_group_indices():
    scheduler = GroupedScheduler(2)
    network = Network(scheduler, latency=UnitLatency(), seed=0)
    with pytest.raises(ValueError, match="unknown groups"):
        scheduler.install(network, {"p0": 0, "p1": 5})


def test_spec_validation_rejects_ineligible_parallel_shards():
    base = get_scenario("steady-state")
    with pytest.raises(ScenarioError, match="deterministic"):
        base.with_overrides(
            latency=LatencySpec(model="lognormal", mean=1.0, sigma=0.5),
            execution=_shards(2),
        ).validate()
    with pytest.raises(ScenarioError):
        base.with_overrides(num_shards=2, execution=_shards(4)).validate()
    with pytest.raises(ScenarioError, match="mode"):
        ExecSpec(mode="quantum").validate()
    with pytest.raises(ScenarioError):
        ExecSpec(jobs=-1).validate()
    with pytest.raises(ScenarioError):
        ExecSpec(mode="parallel-shards", groups=1).validate()


def test_wan_jitter_is_rejected_for_parallel_shards():
    wan = get_scenario("wan-steady-state")
    assert wan.latency.jitter > 0  # the library scenario keeps its jitter
    with pytest.raises(ScenarioError):
        wan.with_overrides(execution=_shards(3)).validate()


def test_cluster_exposes_positive_lookahead_when_grouped():
    cluster = Cluster(num_shards=4, groups=2)
    assert isinstance(cluster.scheduler, GroupedScheduler)
    assert cluster.scheduler.lookahead > 0.0


# ----------------------------------------------------------------------
# Tier B: serial-equivalence battery (in-process)
# ----------------------------------------------------------------------

EQUIVALENCE_CASES = [
    ("steady-state", 2),
    ("steady-state", 4),
    ("batch-saturation", 2),
    ("batch-saturation", 4),
    ("leader-crash-under-load", 2),
    ("cascading-crashes", 2),
    ("baseline-steady-state", 2),
    ("rolling-reconfiguration", 2),
    ("read-heavy-steady-state", 2),
    ("read-heavy-steady-state", 4),
    ("stale-lease-ablation", 2),
    ("detector-leader-crash", 2),
    ("gray-failure-slow-leader", 2),
    ("saturated-link", 2),
    ("bandwidth-knee", 2),
    ("bandwidth-knee", 4),
]


@pytest.mark.parametrize("name,groups", EQUIVALENCE_CASES)
def test_parallel_shards_replay_serial_run_exactly(name, groups):
    serial = ScenarioRunner(_small(name)).run()
    grouped = ScenarioRunner(_small(name, execution=_shards(groups))).run()
    assert grouped.history_digest == serial.history_digest
    assert _dumps(grouped) == _dumps(serial)


def test_parallel_shards_replay_wan_run_exactly():
    wan = get_scenario("wan-steady-state")
    flat = replace(wan.latency, jitter=0.0)  # random jitter is ineligible
    serial = ScenarioRunner(_small("wan-steady-state", latency=flat)).run()
    grouped = ScenarioRunner(
        _small("wan-steady-state", latency=flat, execution=_shards(3))
    ).run()
    assert grouped.history_digest == serial.history_digest
    assert _dumps(grouped) == _dumps(serial)


def test_grouped_cluster_event_accounting_matches_serial():
    """Not just the history: the engine-level counters (events fired, final
    clock) must agree once the schedule drains, so metrics derived from
    them stay comparable.  (At a mid-run ``run_until`` stop the *set* of
    fired events can transiently differ — the grouped engine executes a
    window group by group while the serial engine interleaves groups by
    time — which is why the drain matters and why the scenario runner
    always drains before collecting metrics.)"""
    from repro.core.serializability import TransactionPayload

    def drive(groups: int):
        cluster = Cluster(num_shards=4, num_clients=2, seed=3, groups=groups)
        payloads = [
            TransactionPayload.make(
                reads=[(f"k{i}", (0, "")), (f"k{i+7}", (0, ""))],
                writes=[(f"k{i}", i)],
                tiebreak=f"t{i}",
            )
            for i in range(40)
        ]
        cluster.certify_many(payloads)
        cluster.run()  # drain in-flight cleanup traffic
        return cluster

    serial = drive(0)
    grouped = drive(2)
    assert grouped.history.digest() == serial.history.digest()
    assert grouped.scheduler.events_fired == serial.scheduler.events_fired
    assert grouped.scheduler.now == serial.scheduler.now
    assert grouped.message_stats.total_sent == serial.message_stats.total_sent


# ----------------------------------------------------------------------
# Tier B + A: cross-process determinism (PYTHONHASHSEED)
# ----------------------------------------------------------------------

_SUBPROCESS_CASES = {
    "steady-state": "",
    "wan-steady-state": "latency=replace(s.latency, jitter=0.0),",
    "batch-saturation": "",
    "read-heavy-steady-state": "",
    "detector-leader-crash": "",
    "saturated-link": "",
}


@pytest.mark.parametrize("scenario", sorted(_SUBPROCESS_CASES))
def test_parallel_shards_identical_across_interpreter_hash_seeds(scenario):
    """The acceptance lock for the grouped engine: fresh interpreters with
    different hash seeds must produce byte-identical results, and the
    grouped result must equal the serial result — any hash-order or
    group-order leak in the engine shows up here as a diff."""
    override = _SUBPROCESS_CASES[scenario]
    script = (
        "import json;"
        "from dataclasses import replace;"
        "from repro.scenarios import ExecSpec, ScenarioRunner, get_scenario;"
        f"s = get_scenario('{scenario}');"
        f"s = s.with_overrides({override}"
        " workload=replace(s.workload, txns=40));"
        "g = s.with_overrides("
        "  execution=ExecSpec(mode='parallel-shards', groups=min(3, s.num_shards)));"
        "serial = ScenarioRunner(s).run().as_dict();"
        "grouped = ScenarioRunner(g).run().as_dict();"
        "assert serial == grouped, 'grouped run diverged from serial';"
        "print(json.dumps(grouped, sort_keys=True))"
    )
    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = []
    for hash_seed in ("1", "99"):
        env = {**os.environ, "PYTHONHASHSEED": hash_seed}
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, (src_dir, env.get("PYTHONPATH")))
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(completed.stdout)
    assert outputs[0] == outputs[1]
    assert '"history_digest": ""' not in outputs[0]  # digest actually recorded


# ----------------------------------------------------------------------
# history digests
# ----------------------------------------------------------------------

def test_history_digest_is_payload_order_independent():
    from repro.core.serializability import TransactionPayload

    def build(reads):
        history = History()
        payload = TransactionPayload.make(
            reads=reads, writes=[(k, 1) for k, _ in reads], tiebreak="t"
        )
        history.record_certify("t1", payload, 1.0)
        return history

    reads = [(f"key-{i}", (0, "")) for i in range(6)]
    assert build(reads).digest() == build(list(reversed(reads))).digest()

    other = History()
    other.record_certify("t2", None, 1.0)
    assert other.digest() != build(reads).digest()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

def test_cli_parallel_shards_matches_serial_output(capsys):
    from repro.scenarios.__main__ import main

    assert main(["run", "steady-state", "--txns", "30", "--json"]) == 0
    serial_out = capsys.readouterr().out
    assert (
        main(["run", "steady-state", "--txns", "30", "--parallel-shards", "2", "--json"])
        == 0
    )
    grouped_out = capsys.readouterr().out
    assert serial_out == grouped_out


def test_cli_run_accepts_multiple_scenarios(capsys):
    from repro.scenarios.__main__ import main

    code = main(["run", "steady-state", "bank-transfers", "--txns", "20", "--json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert set(document) == {"steady-state", "bank-transfers"}
