"""The Figure 4a counter-example: naive RDMA + per-shard reconfiguration is
unsafe; the paper's protocols are not.

The schedule (Section 5, Figure 4a):

1. a transaction ``t`` spanning shards s1 and s2 is prepared to commit at
   both leaders, and the commit vote of s1 is persisted at its follower;
2. before the coordinator ``pc`` persists s2's vote at s2's follower ``p4``,
   s2's leader is suspected and s2 is reconfigured: ``p4`` becomes the new
   leader and a fresh process joins as follower;
3. s1's leader retries ``t``; the new leader of s2 does not know it, so the
   retry coordinator decides **abort** and externalises it;
4. ``pc`` — not actually failed, still holding s2's old commit vote and a
   stale view of s2's configuration — belatedly persists the vote at ``p4``
   with a one-sided RDMA write that ``p4`` cannot reject, gathers its acks
   and decides **commit**.

Two contradictory decisions for ``t`` are externalised.  The fixed protocols
prevent this: the message-passing protocol rejects the stale ACCEPT (line 22
epoch check), and the RDMA protocol reconfigures globally, closing RDMA
connections and invalidating the coordinator's epoch.
"""

import pytest

from repro.cluster import Cluster
from repro.core.types import Decision

from helpers import payload, shard_key


LATE_ACCEPT_DELAY = 60.0
LATE_CONFIG_DELAY = 500.0


def _spanning_payload(cluster):
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    return payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 1)],
        tiebreak="t",
    )


def _drive_figure_4a(cluster, global_reconfig: bool):
    """Drive the Figure 4a schedule against the given cluster."""
    spanning = _spanning_payload(cluster)
    coordinator = cluster.members_of("shard-2")[0]  # pc, from a third shard
    s1_leader = cluster.leader_of("shard-0")  # p1
    s2_leader = cluster.leader_of("shard-1")  # p3
    s2_follower = cluster.followers_of("shard-1")[0]  # p4

    # The ACCEPT carrying s2's vote reaches p4 only much later, and pc learns
    # about configuration changes very late (it "still believes s2 is in the
    # old configuration").
    cluster.network.add_extra_delay(coordinator, s2_follower, LATE_ACCEPT_DELAY)
    cluster.network.add_extra_delay(cluster.config_service.pid, coordinator, LATE_CONFIG_DELAY)

    txn = cluster.submit(spanning, coordinator=coordinator)
    # Step 1-2: run long enough for both PREPARE_ACKs and for s1's vote to be
    # persisted, but not long enough for the delayed ACCEPT to land at p4.
    cluster.run(max_time=10.0)
    assert cluster.history.decision_of(txn) is None

    # Step 3: s2's leader is suspected; s2 is reconfigured (p4 promoted).
    cluster.crash(s2_leader)
    if global_reconfig:
        cluster.reconfigure(initiator=s2_follower, suspects=[s2_leader], run=False)
    else:
        cluster.reconfigure("shard-1", initiator=s2_follower, suspects=[s2_leader], run=False)
    cluster.run(max_time=40.0)

    # Step 4-5: s1's leader retries the transaction.
    p1 = cluster.replica(s1_leader)
    if txn in p1.slot_of:
        p1.retry(p1.slot_of[txn])
    cluster.run(max_time=55.0)

    # Step 6-7: the delayed RDMA write lands at p4 and pc finishes.
    cluster.run(max_time=LATE_CONFIG_DELAY + 50.0)
    return txn


def test_broken_variant_reproduces_contradictory_decisions():
    cluster = Cluster(
        num_shards=3, replicas_per_shard=2, protocol="broken-rdma", spares_per_shard=2, seed=51
    )
    txn = _drive_figure_4a(cluster, global_reconfig=False)
    # Both an abort and a commit were externalised for the same transaction.
    assert cluster.history.contradictions, "expected the Figure 4a safety violation"
    contradicted = {t for t, _, _ in cluster.history.contradictions}
    assert txn in contradicted
    result, _ = cluster.check(include_invariants=False)
    assert not result.ok
    assert "contradictory" in result.reason


def test_message_passing_protocol_safe_under_same_schedule():
    cluster = Cluster(
        num_shards=3, replicas_per_shard=2, protocol="message-passing", spares_per_shard=2, seed=51
    )
    _drive_figure_4a(cluster, global_reconfig=False)
    assert cluster.history.contradictions == []
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []


def test_rdma_protocol_safe_under_same_schedule():
    cluster = Cluster(
        num_shards=3, replicas_per_shard=2, protocol="rdma", spares_per_shard=2, seed=51
    )
    _drive_figure_4a(cluster, global_reconfig=True)
    assert cluster.history.contradictions == []
    result, violations = cluster.check()
    assert result.ok, result.reason
    assert violations == []
