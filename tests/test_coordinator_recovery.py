"""Tests for coordinator recovery (Figure 1, lines 70-73 and 6-7, 14-16)."""

import pytest

from repro.cluster import Cluster
from repro.core.types import BOTTOM, Decision, Phase

from helpers import payload, rw_payload, shard_key


@pytest.fixture
def cluster():
    return Cluster(num_shards=2, replicas_per_shard=2, seed=31)


def _prepare_without_deciding(cluster, key, coordinator, block_decisions=True):
    """Drive a transaction until it is prepared at its shard but keep the
    coordinator from distributing the decision by crashing it right after it
    sends the ACCEPTs."""
    shard = cluster.scheme.sharding.shard_of(key)
    follower = cluster.followers_of(shard)[0]
    if block_decisions:
        # Cut the coordinator off from the follower so it can never gather
        # the ACCEPT_ACKs and hence never decides.
        cluster.network.block(follower, coordinator)
    txn = cluster.submit(rw_payload(key, tiebreak="orphan"), coordinator=coordinator)
    cluster.run()
    return txn, shard


def test_retry_by_follower_completes_orphaned_transaction(cluster):
    shard = cluster.scheme.sharding.shard_of("hot")
    other_shard = "shard-1" if shard == "shard-0" else "shard-0"
    coordinator = cluster.members_of(other_shard)[0]
    txn, shard = _prepare_without_deciding(cluster, "hot", coordinator)
    assert cluster.history.decision_of(txn) is None

    # The original coordinator crashes; a replica of the shard that holds the
    # prepared transaction becomes the new coordinator via retry().
    cluster.crash(coordinator)
    follower = cluster.replica(cluster.followers_of(shard)[0])
    slot = follower.slot_of[txn]
    assert follower.phase_arr[slot] is Phase.PREPARED
    assert follower.retry(slot) is not None
    cluster.run()
    assert cluster.history.decision_of(txn) is Decision.COMMIT
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_retry_on_decided_transaction_is_a_noop(cluster):
    txn = cluster.submit(rw_payload("x", tiebreak="a"))
    cluster.run_until_decided([txn])
    cluster.run()
    shard = cluster.scheme.sharding.shard_of("x")
    replica = cluster.replica(cluster.leader_of(shard))
    slot = replica.slot_of[txn]
    assert replica.phase_arr[slot] is Phase.DECIDED
    assert replica.retry(slot) is None


def test_multiple_concurrent_coordinators_reach_same_decision(cluster):
    """Any number of processes may coordinate the same transaction; they all
    reach the same decision (Invariant 4b)."""
    shard = cluster.scheme.sharding.shard_of("hot")
    other_shard = "shard-1" if shard == "shard-0" else "shard-0"
    coordinator = cluster.members_of(other_shard)[0]
    txn, shard = _prepare_without_deciding(cluster, "hot", coordinator, block_decisions=True)

    # Two different replicas of the shard retry simultaneously.
    leader = cluster.replica(cluster.leader_of(shard))
    follower = cluster.replica(cluster.followers_of(shard)[0])
    leader.retry(leader.slot_of[txn])
    follower.retry(follower.slot_of[txn])
    # The original coordinator is also still alive and will eventually finish.
    cluster.network.heal()
    cluster.run()
    assert cluster.history.decision_of(txn) is Decision.COMMIT
    assert cluster.history.contradictions == []
    decisions = {
        entry.decision
        for replica in cluster.replicas.values()
        for t, entry in getattr(replica, "_coordinated", {}).items()
        if t == txn and entry.decided
    }
    assert decisions == {Decision.COMMIT}
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_leader_resends_stored_vote_to_new_coordinator(cluster):
    """A leader that already certified a transaction re-sends its stored
    PREPARE_ACK instead of preparing it twice (line 6)."""
    shard = cluster.scheme.sharding.shard_of("hot")
    other_shard = "shard-1" if shard == "shard-0" else "shard-0"
    coordinator = cluster.members_of(other_shard)[0]
    txn, shard = _prepare_without_deciding(cluster, "hot", coordinator)
    leader = cluster.replica(cluster.leader_of(shard))
    assert len(leader.certification_order()) == 1

    new_coordinator = cluster.replica(cluster.members_of(other_shard)[1])
    new_coordinator.certify(txn, BOTTOM)
    cluster.run()
    # Still exactly one slot for the transaction: no duplicate preparation.
    assert len(leader.certification_order()) == 1
    assert cluster.history.decision_of(txn) is Decision.COMMIT


def test_unknown_payload_prepared_as_aborted(cluster):
    """A PREPARE(t, ⊥) for a transaction the leader has never seen is
    prepared with an abort vote and the empty payload (lines 14-16), which
    makes the recovered transaction abort."""
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    multi = payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 1)],
        tiebreak="m",
    )
    # The coordinator is a spare process (not a member of either shard), so
    # crashing it later does not remove any shard replica.
    coordinator_pid = "shard-0/spare0"
    # The original coordinator crashes "between sending PREPARE messages to
    # different shards": only shard-0's leader ever learns the payload.
    cluster.network.block(coordinator_pid, cluster.leader_of("shard-1"))
    txn = cluster.submit(multi, coordinator=coordinator_pid)
    cluster.run()
    assert cluster.history.decision_of(txn) is None
    cluster.crash(coordinator_pid)
    cluster.network.heal()

    # A replica of shard-0 holds the prepared transaction and retries it.
    leader0 = cluster.replica(cluster.leader_of("shard-0"))
    leader0.retry(leader0.slot_of[txn])
    cluster.run()
    assert cluster.history.decision_of(txn) is Decision.ABORT
    # Shard-1 prepared it with the empty payload and an abort vote.
    leader1 = cluster.replica(cluster.leader_of("shard-1"))
    slot = leader1.slot_of[txn]
    assert leader1.vote_arr[slot] is Decision.ABORT
    assert cluster.scheme.is_empty(leader1.payload_arr[slot])
    result, violations = cluster.check()
    assert result.ok and violations == []


def test_spuriously_suspected_coordinator_gets_abort_vote(cluster):
    """If the old coordinator was suspected spuriously and later re-submits
    the transaction to a shard where it was aborted, it just receives the
    stored abort vote; decisions stay consistent."""
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    multi = payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 1)],
        tiebreak="m",
    )
    coordinator_pid = "shard-0/spare0"
    cluster.network.block(coordinator_pid, cluster.leader_of("shard-1"))
    txn = cluster.submit(multi, coordinator=coordinator_pid)
    cluster.run()

    # Someone else recovers the transaction; shard-1 aborts it.
    leader0 = cluster.replica(cluster.leader_of("shard-0"))
    leader0.retry(leader0.slot_of[txn])
    cluster.run()
    assert cluster.history.decision_of(txn) is Decision.ABORT

    # The original (never actually crashed) coordinator re-sends its PREPARE
    # to shard-1 once the partition heals, and completes with the same abort.
    cluster.network.heal()
    original = cluster.replica(coordinator_pid)
    original.certify(txn, multi)
    cluster.run()
    assert cluster.history.contradictions == []
    assert cluster.history.decision_of(txn) is Decision.ABORT
    result, violations = cluster.check()
    assert result.ok and violations == []
