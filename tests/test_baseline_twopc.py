"""Tests for the 2PC-over-Paxos baseline cluster."""

import pytest

from repro.baselines.cluster import BaselineCluster
from repro.core.types import Decision

from helpers import payload, rw_payload, shard_key


@pytest.fixture
def cluster():
    return BaselineCluster(num_shards=2, failures_tolerated=1, seed=61)


def test_uses_2f_plus_1_replicas_per_shard(cluster):
    assert cluster.replicas_per_shard == 3
    assert len(cluster.groups["shard-0"].pids) == 3


def test_single_shard_commit(cluster):
    assert cluster.certify(rw_payload("x", tiebreak="a")) is Decision.COMMIT


def test_multi_shard_commit_and_conflict_abort(cluster):
    key0 = shard_key(cluster.scheme, "shard-0")
    key1 = shard_key(cluster.scheme, "shard-1")
    multi = payload(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 1)],
        tiebreak="m",
    )
    assert cluster.certify(multi) is Decision.COMMIT
    stale = rw_payload(key0, version=0, tiebreak="stale")
    assert cluster.certify(stale) is Decision.ABORT


def test_history_correct(cluster):
    payloads = [rw_payload(f"k{i}", tiebreak=str(i)) for i in range(6)]
    payloads.append(rw_payload("k0", version=0, tiebreak="stale"))
    decisions = cluster.certify_many(payloads)
    assert sum(1 for d in decisions.values() if d is Decision.ABORT) == 1
    assert cluster.check()[0].ok


def test_latency_is_higher_than_reconfigurable_protocol(cluster):
    """The baseline needs 7 delays before the decision is durable (plus one
    more for the coordinator to hear about it), versus 5/4 for the paper's
    protocol."""
    cluster.certify(rw_payload("x", tiebreak="a"))
    assert cluster.vote_latencies() == [4.0]
    assert cluster.durable_decision_latencies() == [8.0]
    assert min(cluster.durable_decision_latencies()) >= 7.0


def test_concurrent_conflicting_transactions_only_one_commits(cluster):
    conflicting = [rw_payload("hot", version=0, tiebreak=str(i)) for i in range(4)]
    decisions = cluster.certify_many(conflicting)
    assert sum(1 for d in decisions.values() if d is Decision.COMMIT) == 1
    assert cluster.check()[0].ok


def test_paxos_leaders_carry_replication_load(cluster):
    """Every 2PC action is replicated through the shard leader, so leaders
    handle many more messages per transaction than in the paper's design."""
    for i in range(5):
        cluster.certify(rw_payload(f"k{i}", tiebreak=str(i)))
    stats = cluster.message_stats
    leader_messages = stats.handled_by(cluster.leader_of("shard-0"))
    assert leader_messages > 0
    # In the reconfigurable protocol the leader handles 3 messages per
    # transaction; here it is strictly more than that.
    shard0_txns = sum(
        1
        for txn in cluster.history.certified()
        if "shard-0" in cluster.directory.shards_of(txn)
    )
    if shard0_txns:
        assert leader_messages / shard0_txns > 3


def test_abort_rate_metric(cluster):
    cluster.certify(rw_payload("x", version=0, tiebreak="a"))
    cluster.certify(rw_payload("x", version=0, tiebreak="b"))
    assert cluster.abort_rate() == pytest.approx(0.5)
