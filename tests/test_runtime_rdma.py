"""Unit tests for the simulated RDMA primitive (Section 5 interface)."""

from dataclasses import dataclass

from repro.runtime.events import Scheduler
from repro.runtime.network import Network
from repro.runtime.process import Process
from repro.runtime.rdma import RdmaManager


@dataclass(frozen=True)
class Note:
    text: str


class Node(Process):
    def __init__(self, pid):
        super().__init__(pid)
        RdmaManager.install(self)
        self.delivered = []
        self.acked = []

    def on_note(self, msg, sender):
        self.delivered.append((msg.text, sender, self.now))

    def write(self, dst, text):
        self.rdma.send(dst, Note(text), on_ack=lambda m, d: self.acked.append((m.text, d, self.now)))


def build():
    scheduler = Scheduler()
    network = Network(scheduler)
    a, b = Node("a"), Node("b")
    network.register(a)
    network.register(b)
    return scheduler, a, b


def test_write_requires_open_connection():
    scheduler, a, b = build()
    a.write("b", "hello")
    scheduler.run()
    assert b.delivered == []
    assert a.acked == []
    assert b.rdma.writes_rejected_remotely == 1


def test_write_delivered_and_acked_when_open():
    scheduler, a, b = build()
    b.rdma.open("a")
    a.write("b", "hello")
    scheduler.run()
    assert [(t, s) for t, s, _ in b.delivered] == [("hello", "a")]
    assert [(t, d) for t, d, _ in a.acked] == [("hello", "b")]


def test_ack_takes_one_round_trip_without_receiver_cpu():
    scheduler, a, b = build()
    b.rdma.open("a")
    a.write("b", "x")
    scheduler.run()
    # Write lands at t=1, NIC ack arrives back at t=2.
    assert a.acked[0][2] == 2.0


def test_close_revokes_access():
    scheduler, a, b = build()
    b.rdma.open("a")
    a.write("b", "first")
    scheduler.run()
    b.rdma.close("a")
    a.write("b", "second")
    scheduler.run()
    assert [t for t, _, _ in b.delivered] == ["first"]
    assert [t for t, _, _ in a.acked] == ["first"]


def test_multiclose_revokes_all():
    scheduler, a, b = build()
    b.rdma.open("a")
    b.rdma.multiclose(b.rdma.connections)
    a.write("b", "x")
    scheduler.run()
    assert b.delivered == []


def test_connections_property_tracks_open_peers():
    scheduler, a, b = build()
    assert b.rdma.connections == set()
    b.rdma.open("a")
    assert b.rdma.connections == {"a"}
    b.rdma.close("a")
    assert b.rdma.connections == set()


def test_acked_write_survives_sender_crash():
    """The key guarantee of ack-rdma: once acked, the receiver will deliver
    the message even if the sender crashes."""
    scheduler, a, b = build()
    b.rdma.poll_delay = 5.0  # the application polls late
    b.rdma.open("a")
    a.write("b", "durable")
    scheduler.run(max_time=2.5)  # write landed and was acked
    assert a.acked
    a.crash()
    scheduler.run()
    assert [t for t, _, _ in b.delivered] == ["durable"]


def test_flush_delivers_pending_acked_messages_immediately():
    scheduler, a, b = build()
    b.rdma.poll_delay = 100.0
    b.rdma.open("a")
    a.write("b", "m1")
    a.write("b", "m2")
    scheduler.run(max_time=3.0)
    assert b.delivered == []  # acked but not yet polled
    b.rdma.flush()
    assert [t for t, _, _ in b.delivered] == ["m1", "m2"]
    # The late poll events must not deliver duplicates.
    scheduler.run()
    assert len(b.delivered) == 2


def test_bounded_buffer_rejects_overflow():
    scheduler, a, b = build()
    b.rdma.buffer_capacity = 2
    b.rdma.poll_delay = 100.0
    b.rdma.open("a")
    for i in range(4):
        a.write("b", f"m{i}")
    scheduler.run(max_time=5.0)
    assert len(a.acked) == 2
    assert b.rdma.writes_rejected_remotely == 2


def test_crashed_receiver_never_acks():
    scheduler, a, b = build()
    b.rdma.open("a")
    b.crash()
    a.write("b", "x")
    scheduler.run()
    assert a.acked == []
    assert b.delivered == []


def test_writes_to_distinct_receivers_tracked_independently():
    scheduler = Scheduler()
    network = Network(scheduler)
    a, b, c = Node("a"), Node("b"), Node("c")
    for node in (a, b, c):
        network.register(node)
    b.rdma.open("a")
    c.rdma.open("a")
    a.write("b", "to-b")
    a.write("c", "to-c")
    scheduler.run()
    assert [t for t, _, _ in b.delivered] == ["to-b"]
    assert [t for t, _, _ in c.delivered] == ["to-c"]
    assert sorted(d for _, d, _ in a.acked) == ["b", "c"]
