"""Reconfigurable Atomic Transaction Commit — reproduction library.

This package reproduces the protocols of *Reconfigurable Atomic Transaction
Commit* (Bravo & Gotsman, PODC 2019): a Transaction Certification Service
with ``f + 1`` replicas per shard, reconfigured through an external
configuration service, in both the asynchronous message-passing model and an
RDMA model — together with the substrates the paper assumes (simulated
network and RDMA, configuration service, Paxos), the 2PC-over-Paxos baseline
it compares against, a transactional key-value store built on top, workload
generators, a specification checker and a benchmark harness.

Quickstart::

    from repro import Cluster, TransactionalStore

    cluster = Cluster(num_shards=2, replicas_per_shard=2)
    store = TransactionalStore(cluster, initial={"x": 0, "y": 0})
    outcome = store.transact(lambda ctx: ctx.write("x", ctx.read("x") + 1))
    assert outcome.committed
"""

from repro.cluster import Cluster
from repro.baselines.cluster import BaselineCluster
from repro.client import Client
from repro.core import (
    BOTTOM,
    CertificationScheme,
    Configuration,
    Decision,
    KeyHashSharding,
    Phase,
    SerializabilityScheme,
    ShardReplica,
    SnapshotIsolationScheme,
    Status,
    TransactionDirectory,
    TransactionPayload,
)
from repro.rdma import BrokenRdmaShardReplica, RdmaShardReplica
from repro.scenarios import (
    FaultStep,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    run_scenario,
    run_sweep,
    scenario_names,
)
from repro.spec import History, TCSChecker, check_invariants
from repro.store import TransactionalStore, VersionedKVStore
from repro.workload import (
    BankWorkload,
    ReadWriteWorkload,
    TransactionSpec,
    UniformKeyGenerator,
    ZipfianKeyGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "BaselineCluster",
    "Client",
    "BOTTOM",
    "CertificationScheme",
    "Configuration",
    "Decision",
    "KeyHashSharding",
    "Phase",
    "SerializabilityScheme",
    "ShardReplica",
    "SnapshotIsolationScheme",
    "Status",
    "TransactionDirectory",
    "TransactionPayload",
    "RdmaShardReplica",
    "BrokenRdmaShardReplica",
    "FaultStep",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "WorkloadSpec",
    "get_scenario",
    "run_scenario",
    "run_sweep",
    "scenario_names",
    "History",
    "TCSChecker",
    "check_invariants",
    "TransactionalStore",
    "VersionedKVStore",
    "BankWorkload",
    "ReadWriteWorkload",
    "TransactionSpec",
    "UniformKeyGenerator",
    "ZipfianKeyGenerator",
    "__version__",
]
