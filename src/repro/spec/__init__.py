"""The multi-shot transaction certification specification (paper Section 2).

* :mod:`repro.spec.history` — recorded ``certify``/``decide`` histories;
* :mod:`repro.spec.checker` — decides whether a history is *correct with
  respect to a certification function f*, i.e. whether its committed
  projection has a legal linearization;
* :mod:`repro.spec.invariants` — checks the key protocol invariants of
  Figure 3 against a snapshot of replica states (used heavily in tests).
"""

from repro.spec.history import Event, History
from repro.spec.checker import CheckResult, TCSChecker
from repro.spec.invariants import InvariantViolation, check_invariants

__all__ = [
    "Event",
    "History",
    "CheckResult",
    "TCSChecker",
    "InvariantViolation",
    "check_invariants",
]
