"""The multi-shot transaction certification specification (paper Section 2).

* :mod:`repro.spec.history` — recorded ``certify``/``decide`` histories;
* :mod:`repro.spec.checker` — decides whether a history is *correct with
  respect to a certification function f*, i.e. whether its committed
  projection has a legal linearization;
* :mod:`repro.spec.incremental` — the same verdict maintained *online*:
  an event-subscribing checker that reports a violation at the event that
  introduces it, in amortized near-constant time per event;
* :mod:`repro.spec.invariants` — checks the key protocol invariants of
  Figure 3 against a snapshot of replica states (used heavily in tests),
  with an :class:`InvariantMonitor` streaming the history-derived part.
"""

from repro.spec.history import Event, History, HistorySubscription
from repro.spec.checker import CheckResult, TCSChecker
from repro.spec.incremental import IncrementalTCSChecker
from repro.spec.invariants import InvariantMonitor, InvariantViolation, check_invariants

__all__ = [
    "Event",
    "History",
    "HistorySubscription",
    "CheckResult",
    "TCSChecker",
    "IncrementalTCSChecker",
    "InvariantMonitor",
    "InvariantViolation",
    "check_invariants",
]
