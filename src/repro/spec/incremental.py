"""Streaming TCS correctness checking (the online counterpart of
:class:`repro.spec.checker.TCSChecker`).

The batch checker rebuilds the whole linearization graph from the recorded
history: O(txns^2) conflict-edge construction plus the O(txns^2)
``real_time_pairs`` sweep.  :class:`IncrementalTCSChecker` maintains the
same graph *online*, subscribing to a :class:`~repro.spec.history.History`
and updating per event, so a violation is reported at the exact event that
introduces it and a 100k-transaction run keeps full validation.

Three ideas make the update cheap:

* **Per-object conflict indexes** — each scheme supplies a
  :class:`~repro.core.certification.ConflictIndex` (mirroring the leaders'
  :class:`~repro.core.votecache.LeaderVoteCache` pattern) that reports, for
  a transaction entering the committed projection, exactly the conflict
  edges involving it, via version-range lookups instead of an all-pairs
  ``global_certify`` sweep.  Schemes without an index transparently fall
  back to the pairwise scan.

* **A decided-frontier chain** — the real-time relation ``decide(a) ≺h
  certify(b)`` would contribute O(txns) edges per transaction if
  materialized directly.  Instead every commit decision appends a *frontier
  node* to a virtual chain; a committed transaction points at the frontier
  created by its decision, and receives an in-edge from the frontier that
  was current when it was certified.  Paths through the chain then encode
  exactly the real-time reachability, at O(1) amortized edges per decision.

* **Incremental cycle detection** — the graph keeps a topological order
  under online edge insertion with the Pearce–Kelly algorithm: an edge that
  respects the current order costs O(1); otherwise only the affected region
  between the two endpoints is re-ranked, and a forward search that reaches
  the edge's source yields the offending cycle as a concrete witness.

The verdict contract is the batch checker's :class:`CheckResult`: a witness
linearization when the history is correct, the offending cycle (restricted
to transaction ids) when it is not.  Like the batch checker's graph
construction, the online graph assumes the certification function is
distributive (requirement (1) of the paper); the batch checker remains the
oracle and ``tests/test_incremental_checker.py`` drives both on randomized
histories asserting identical verdicts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.certification import RETIRED, CertificationScheme, PairwiseConflictIndex
from repro.core.types import Decision, TxnId
from repro.spec.checker import CheckResult
from repro.spec.history import History, HistorySubscription


class _Frontier:
    """A node of the decided-frontier chain (identity-based, never a txn)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<frontier {self.index}>"


class _OnlineDag:
    """A DAG maintaining a topological order under online edge insertion.

    Pearce–Kelly: every node carries a unique integer rank forming a valid
    topological order.  Inserting an edge ``u -> v`` with ``rank(u) <
    rank(v)`` is O(1).  Otherwise only the *affected region* (nodes ranked
    between ``v`` and ``u``) is searched: a forward pass from ``v`` that
    reaches ``u`` proves a cycle (returned as the path ``v .. u``); else the
    forward/backward reachable sets swap ranks within the region, restoring
    the invariant while touching a provably minimal set of nodes.
    """

    def __init__(self) -> None:
        self.rank: Dict[Any, int] = {}
        self.out: Dict[Any, Set[Any]] = {}
        self.inc: Dict[Any, Set[Any]] = {}
        self.edge_count = 0
        # Monotonic rank source: len(rank) would recycle ranks after node
        # removal and break the total order.
        self._next_rank = 0

    def add_node(self, node: Any) -> None:
        self.rank[node] = self._next_rank
        self._next_rank += 1
        self.out[node] = set()
        self.inc[node] = set()

    def remove_nodes(self, nodes: List[Any]) -> None:
        """Remove a *rank-prefix* of the DAG (every edge goes from lower to
        higher rank, so in-edges of the removed set originate inside it and
        need no fix-up; only out-edges into survivors are unlinked)."""
        doomed = set(nodes)
        for node in nodes:
            for successor in self.out[node]:
                if successor not in doomed:
                    self.inc[successor].discard(node)
            self.edge_count -= len(self.out[node])
            del self.rank[node]
            del self.out[node]
            del self.inc[node]

    def add_edge(self, u: Any, v: Any) -> Optional[List[Any]]:
        """Insert ``u -> v``; return a cycle path ``[v, .., u]`` or None."""
        if u is v:
            return [u]
        if v in self.out[u]:
            return None
        if self.rank[u] < self.rank[v]:
            self.out[u].add(v)
            self.inc[v].add(u)
            self.edge_count += 1
            return None
        cycle = self._forward(v, u)
        if cycle is not None:
            return cycle
        self.out[u].add(v)
        self.inc[v].add(u)
        self.edge_count += 1
        self._reorder(u, v)
        return None

    def _forward(self, v: Any, u: Any) -> Optional[List[Any]]:
        """DFS from ``v`` within the region; a path to ``u`` is a cycle."""
        bound = self.rank[u]
        parents: Dict[Any, Any] = {v: None}
        stack = [v]
        while stack:
            node = stack.pop()
            for nxt in self.out[node]:
                if nxt is u:
                    path = [u, node]
                    while parents[node] is not None:
                        node = parents[node]
                        path.append(node)
                    path.reverse()  # v .. u; the new edge u -> v closes it
                    return path
                if nxt not in parents and self.rank[nxt] < bound:
                    parents[nxt] = node
                    stack.append(nxt)
        self._forward_visited = parents
        return None

    def _reorder(self, u: Any, v: Any) -> None:
        forward = self._forward_visited  # v and its descendants in the region
        floor = self.rank[v]
        backward: Set[Any] = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node in backward:
                continue
            backward.add(node)
            for prev in self.inc[node]:
                if prev not in backward and self.rank[prev] > floor:
                    stack.append(prev)
        affected = sorted(backward, key=self.rank.__getitem__) + sorted(
            forward, key=self.rank.__getitem__
        )
        slots = sorted(self.rank[node] for node in affected)
        for node, slot in zip(affected, slots):
            self.rank[node] = slot


class IncrementalTCSChecker:
    """Maintains the legal-linearization graph of a history online.

    Feed it either by :meth:`attach`-ing it to a :class:`History` (it
    subscribes to certify/decide/contradiction events, replaying anything
    already recorded) or by calling :meth:`observe_certify` /
    :meth:`observe_decide` directly.  After a violation the checker freezes:
    :attr:`violation` keeps the first failure, together with the 0-based
    index (:attr:`violation_at_event`) of the observed event that introduced
    it.
    """

    def __init__(
        self,
        scheme: CertificationScheme,
        history: Optional[History] = None,
        gc: bool = False,
        gc_interval: int = 256,
    ) -> None:
        if gc_interval < 1:
            raise ValueError("gc_interval must be >= 1")
        self.scheme = scheme
        self._conflicts = scheme.make_conflict_index() or PairwiseConflictIndex(scheme)
        self._dag = _OnlineDag()
        self._birth: Dict[TxnId, Optional[_Frontier]] = {}
        self._payloads: Dict[TxnId, Any] = {}
        self._frontier: Optional[_Frontier] = None
        self._frontiers = 0
        # Streaming-run garbage collection (see `collect`).
        self._gc_enabled = gc
        self._gc_interval = gc_interval
        self._since_gc = 0
        self._decision_frontier: Dict[TxnId, int] = {}
        # Committed payloads retained for eventual ConflictIndex.retire
        # calls (populated only when gc is enabled, so non-GC runs do not
        # duplicate payload storage).
        self._gc_payloads: Dict[TxnId, Any] = {}
        self._retired_fallback: Optional[Set[TxnId]] = None
        self.txns_pruned = 0
        self.frontiers_pruned = 0
        self.watermark = -1  # last collection's prune horizon (frontier index)
        self.violation: Optional[CheckResult] = None
        self.violation_at_event: Optional[int] = None
        self.events_processed = 0
        self._history: Optional[History] = None
        self._subscription: Optional[HistorySubscription] = None
        if history is not None:
            self.attach(history)

    # ------------------------------------------------------------------
    # history subscription
    # ------------------------------------------------------------------
    def attach(self, history: History) -> "IncrementalTCSChecker":
        """Subscribe to ``history``, replaying events recorded before now.

        Contradictions are replayed *first*: the history does not record
        where they occurred, and the batch checker gives them priority, so
        a replayed checker must too (a live-attached one reports whichever
        violation genuinely happens first).
        """
        if self._history is not None:
            raise RuntimeError("checker is already attached to a history")
        self._history = history
        for txn, first, second in history.contradictions:
            self.observe_contradiction(txn, first, second)
        for event in history.events:
            if event.kind == "certify":
                self.observe_certify(event.txn, event.payload)
            else:
                self.observe_decide(event.txn, event.decision, payload=event.payload)
        self._subscription = history.subscribe(
            on_certify=self._on_certify,
            on_decide=self._on_decide,
            on_contradiction=self.observe_contradiction,
        )
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None
        self._history = None

    def _on_certify(self, txn: TxnId) -> None:
        self.observe_certify(txn, self._history.payload_of(txn))

    def _on_decide(self, txn: TxnId, decision: Decision) -> None:
        self.observe_decide(
            txn, decision, payload=self._history.decided_payload_of(txn)
        )

    # ------------------------------------------------------------------
    # event feed
    # ------------------------------------------------------------------
    def observe_certify(self, txn: TxnId, payload: Any) -> None:
        """Record ``certify(txn, payload)``: remember the decided frontier
        the transaction was certified under."""
        if self.violation is not None:
            return
        self.events_processed += 1
        self._birth[txn] = self._frontier
        self._payloads[txn] = payload

    def observe_decide(
        self, txn: TxnId, decision: Decision, payload: Any = None
    ) -> None:
        """Record the (first) ``decide(txn, decision)``.

        Commits enter the committed projection: the transaction becomes a
        graph node, its conflict edges come from the scheme's conflict
        index, its real-time edges from the frontier chain.  Any cycle is
        reported immediately as the violation witness.

        ``payload`` is the decide-time payload, when the history attached
        one: snapshot reads certify a placeholder marker and resolve their
        versioned read-only payload only when the serving replica answers,
        so the decide event — not the certify event — carries the payload
        the conflict analysis must use.
        """
        if self.violation is not None:
            return
        self.events_processed += 1
        birth = self._birth.pop(txn, None)
        if decision is not Decision.COMMIT:
            self._payloads.pop(txn, None)
            return
        certified = self._payloads.pop(txn, None)
        if payload is None:
            payload = certified
        dag = self._dag
        dag.add_node(txn)
        if birth is not None and dag.add_edge(birth, txn) is not None:
            raise AssertionError("frontier edges cannot close a cycle")  # pragma: no cover
        successors, predecessors = self._conflicts.register(txn, payload)
        retired = self._retired_fallback
        for other in predecessors:
            if other is RETIRED or (retired is not None and other in retired):
                # A retired transaction must precede this one — consistent by
                # construction: retirement requires it decided before this
                # transaction was certified.
                continue
            cycle = dag.add_edge(other, txn)
            if cycle is not None:
                return self._fail_cycle(cycle)
        for other in successors:
            if other is RETIRED or (retired is not None and other in retired):
                # This transaction must precede a retired one, yet every
                # retired transaction decided before this one was certified:
                # an immediate conflict/real-time cycle.
                return self._fail_retired(txn)
            cycle = dag.add_edge(txn, other)
            if cycle is not None:
                return self._fail_cycle(cycle)
        # Advance the decided frontier: transactions certified from now on
        # are real-time successors of this one (O(1) edges per decision).
        frontier = _Frontier(self._frontiers)
        self._frontiers += 1
        dag.add_node(frontier)
        if self._frontier is not None:
            dag.add_edge(self._frontier, frontier)
        dag.add_edge(txn, frontier)
        self._frontier = frontier
        if self._gc_enabled:
            self._decision_frontier[txn] = frontier.index
            self._gc_payloads[txn] = payload
            self._since_gc += 1
            if self._since_gc >= self._gc_interval:
                self.collect()

    def observe_contradiction(self, txn: TxnId, first: Decision, second: Decision) -> None:
        """A contradictory decide: no linearization can contain both
        decisions for ``txn``, so the history is immediately incorrect."""
        if self.violation is not None:
            return
        self.events_processed += 1
        self.violation_at_event = self.events_processed - 1
        self.violation = CheckResult(
            ok=False,
            reason=(
                f"contradictory decisions externalised for {txn}: "
                f"{first.value} vs {second.value}"
            ),
            cycle=[txn],
        )

    def _fail_cycle(self, cycle: List[Any]) -> None:
        self.violation_at_event = self.events_processed - 1
        self.violation = CheckResult(
            ok=False,
            reason="no legal linearization: conflict/real-time cycle",
            cycle=[node for node in cycle if not isinstance(node, _Frontier)],
        )

    def _fail_retired(self, txn: TxnId) -> None:
        self.violation_at_event = self.events_processed - 1
        self.violation = CheckResult(
            ok=False,
            reason=(
                "no legal linearization: conflict/real-time cycle "
                "(certification orders the transaction before garbage-collected "
                "history that decided before it was certified)"
            ),
            cycle=[txn],
        )

    # ------------------------------------------------------------------
    # streaming-run garbage collection
    # ------------------------------------------------------------------
    def collect(self) -> int:
        """Prune graph state that can no longer participate in a violation;
        returns the number of nodes removed.

        A committed transaction ``X`` is *retirable* once every transaction
        certified before ``decide(X)`` has been decided: from then on, every
        transaction the checker will ever see was certified after
        ``decide(X)`` and is therefore a real-time successor of ``X``.  A
        future conflict edge *from* ``X`` adds nothing a cycle could use
        without also entering the retired region, and a future conflict edge
        *into* ``X`` ("new transaction must precede X") is by itself a
        conflict/real-time cycle — which the conflict indexes keep flagging
        after retirement via a compact per-object horizon (:data:`RETIRED`).

        Concretely: the *watermark* is the lowest birth-frontier index of
        any still-undecided transaction; transactions whose decision
        frontier is at or below it, and frontier nodes below it, may go.
        Because the Pearce–Kelly order directs every edge from lower to
        higher rank, pruning the maximal *rank prefix* of retirable nodes
        removes a region with no incoming edges — survivors need no rank or
        edge fix-up, and the invariants of the incremental cycle detection
        are untouched.

        Consequence of exactness: a transaction that is certified but
        *never* decided (an orphaned client submission, a request lost with
        its coordinator and never re-driven) pins the watermark at its
        certify point forever — everything committed since then must be
        retained, because the stuck transaction could still legally decide
        against it.  Collection silently degrades to retention from that
        point on; watch ``stats["watermark"]`` against
        ``stats["undecided"]`` (and keep sessions configured so nothing
        orphans) on truly unbounded runs.
        """
        self._since_gc = 0
        if self._frontier is None or self.violation is not None:
            return 0
        watermark = self._frontiers
        for frontier in self._birth.values():
            index = -1 if frontier is None else frontier.index
            if index < watermark:
                watermark = index
        self.watermark = watermark
        if watermark < 0:
            return 0
        dag = self._dag
        cut: Optional[int] = None
        for node, rank in dag.rank.items():
            if isinstance(node, _Frontier):
                keep = node is self._frontier or node.index >= watermark
            else:
                keep = self._decision_frontier.get(node, watermark + 1) > watermark
            if keep and (cut is None or rank < cut):
                cut = rank
        if cut is None:  # pragma: no cover - the current frontier is always kept
            return 0
        pruned = [node for node, rank in dag.rank.items() if rank < cut]
        if not pruned:
            return 0
        for node in pruned:
            if isinstance(node, _Frontier):
                self.frontiers_pruned += 1
                continue
            self.txns_pruned += 1
            self._decision_frontier.pop(node, None)
            if not self._conflicts.retire(node, self._gc_payloads.pop(node, None)):
                # Index without retirement support: remember retired ids so
                # conflicts against them are still flagged.  Memory then
                # grows with the retired id set — bounded memory needs a
                # scheme conflict index (or the pairwise fallback, which
                # drops entries and keeps distinct retired payloads).
                if self._retired_fallback is None:
                    self._retired_fallback = set()
                self._retired_fallback.add(node)
        dag.remove_nodes(pruned)
        return len(pruned)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.violation is None

    def linearization(self) -> List[TxnId]:
        """The committed transactions in the maintained topological order
        (a legal linearization whenever :attr:`ok` holds; with garbage
        collection enabled, the suffix of one — pruned transactions precede
        every survivor)."""
        rank = self._dag.rank
        return sorted(
            (node for node in rank if not isinstance(node, _Frontier)),
            key=rank.__getitem__,
        )

    def result(self) -> CheckResult:
        """The current verdict, under the batch checker's contract."""
        if self.violation is not None:
            return self.violation
        return CheckResult(ok=True, linearization=self.linearization())

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "events_processed": self.events_processed,
            "nodes": len(self._dag.rank),
            "edges": self._dag.edge_count,
            "txns_pruned": self.txns_pruned,
            "frontiers_pruned": self.frontiers_pruned,
            # GC health: the prune horizon of the last collection and the
            # certified-but-undecided count.  A watermark that stops
            # advancing while undecided stays > 0 means a stuck transaction
            # is pinning memory (see `collect`).
            "watermark": self.watermark,
            "undecided": len(self._birth),
        }
