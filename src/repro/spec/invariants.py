"""Run-time checks of the key protocol invariants (paper Figure 3 / Figure 5).

These checks take a snapshot of the replica states of a cluster (typically
at quiescence) and verify the state-level consequences of the invariants the
correctness proof relies on:

* **log agreement** (from Invariants 1, 2, 6, 9): replicas of the same shard
  that are in the same epoch agree on the transaction, payload and vote of
  every slot they both have filled, and a follower's certification order is
  a hole-y prefix of its leader's;
* **unique slots** (Invariant 10): a replica never places the same
  transaction in two slots;
* **decision agreement** (Invariant 4a): replicas of a shard agree on the
  decision recorded for each slot;
* **system-wide decision agreement** (Invariant 4b): every process — and the
  client-observed history — agrees on the decision of each transaction;
* **commit implies commit-vote** (Invariant 12b): a slot decided commit has
  a commit vote wherever the vote is recorded.

Violations are returned (not raised) so that tests and the safety-ablation
benchmark can assert on their presence or absence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.types import Decision, Phase, TxnId
from repro.spec.history import History, HistorySubscription


@dataclass(frozen=True)
class InvariantViolation:
    """One detected violation."""

    invariant: str
    shard: Optional[str]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        where = f" [shard {self.shard}]" if self.shard else ""
        return f"{self.invariant}{where}: {self.detail}"


def _own_epoch(replica) -> int:
    """The replica's epoch for its own shard.

    Message-passing replicas keep a per-shard epoch vector; RDMA replicas
    keep a single system-wide epoch (Section 5).
    """
    epoch = replica.epoch
    if isinstance(epoch, dict):
        return epoch.get(replica.shard, 0)
    return epoch


class InvariantMonitor:
    """Incremental feed for the history-derived part of the invariant checks.

    Subscribes to a :class:`History` and maintains the client-observed
    decision map (the ``<client-history>`` contribution to Invariant 4b)
    online, recording a violation the moment a contradictory decide is
    externalised — the same event feed the online TCS checker runs on, so
    quiescence-time invariant checking no longer rescans the history.
    """

    def __init__(self, history: Optional[History] = None) -> None:
        self.decisions: Dict[TxnId, Decision] = {}
        self.violations: List[InvariantViolation] = []
        self._subscription: Optional[HistorySubscription] = None
        if history is not None:
            self.attach(history)

    def attach(self, history: History) -> "InvariantMonitor":
        if self._subscription is not None:
            raise RuntimeError("monitor is already attached to a history")
        self.decisions.update(history.decided())
        for txn, first, second in history.contradictions:
            self._on_contradiction(txn, first, second)
        self._subscription = history.subscribe(
            on_decide=self._on_decide, on_contradiction=self._on_contradiction
        )
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    def _on_decide(self, txn: TxnId, decision: Decision) -> None:
        self.decisions[txn] = decision

    def _on_contradiction(self, txn: TxnId, first: Decision, second: Decision) -> None:
        self.violations.append(
            InvariantViolation(
                invariant="global-decision-agreement (Inv. 4b)",
                shard=None,
                detail=(
                    f"transaction {txn}: contradictory client-observed decisions "
                    f"{first.value} vs {second.value}"
                ),
            )
        )


def check_invariants(
    replicas_by_shard: Dict[str, Sequence],
    history: Optional[History] = None,
    include_crashed: bool = False,
    monitor: Optional[InvariantMonitor] = None,
) -> List[InvariantViolation]:
    """Check all state-level invariants; return the list of violations.

    The client-observed decisions for Invariant 4b come from ``monitor``
    (maintained incrementally) when one is given, falling back to a one-off
    scan of ``history`` otherwise.
    """
    violations: List[InvariantViolation] = []
    for shard, replicas in replicas_by_shard.items():
        live = [r for r in replicas if include_crashed or not r.crashed]
        violations.extend(_check_unique_slots(shard, live))
        violations.extend(_check_log_agreement(shard, live))
        violations.extend(_check_slot_decision_agreement(shard, live))
        violations.extend(_check_commit_vote(shard, live))
    if monitor is not None:
        client_decisions: Optional[Dict[TxnId, Decision]] = monitor.decisions
    elif history is not None:
        client_decisions = history.decided()
    else:
        client_decisions = None
    violations.extend(
        _check_global_decision_agreement(replicas_by_shard, client_decisions, include_crashed)
    )
    if monitor is not None:
        violations.extend(monitor.violations)
    return violations


# ----------------------------------------------------------------------
# per-shard checks
# ----------------------------------------------------------------------
def _check_unique_slots(shard: str, replicas: Iterable) -> List[InvariantViolation]:
    violations = []
    for replica in replicas:
        seen: Dict[str, int] = {}
        for slot, txn in replica.txn_arr.items():
            if txn in seen:
                violations.append(
                    InvariantViolation(
                        invariant="unique-slots (Inv. 10)",
                        shard=shard,
                        detail=f"{replica.pid}: transaction {txn} in slots {seen[txn]} and {slot}",
                    )
                )
            seen[txn] = slot
    return violations


def _check_log_agreement(shard: str, replicas: Sequence) -> List[InvariantViolation]:
    violations = []
    replicas = list(replicas)
    for i, a in enumerate(replicas):
        for b in replicas[i + 1 :]:
            if _own_epoch(a) != _own_epoch(b):
                continue
            for slot in set(a.txn_arr) & set(b.txn_arr):
                if a.txn_arr[slot] != b.txn_arr[slot]:
                    violations.append(
                        InvariantViolation(
                            invariant="log-agreement (Inv. 1/2/6)",
                            shard=shard,
                            detail=(
                                f"slot {slot}: {a.pid} has {a.txn_arr[slot]} but "
                                f"{b.pid} has {b.txn_arr[slot]}"
                            ),
                        )
                    )
                    continue
                if a.vote_arr.get(slot) != b.vote_arr.get(slot) and slot in a.vote_arr and slot in b.vote_arr:
                    violations.append(
                        InvariantViolation(
                            invariant="vote-agreement (Inv. 1/2/6)",
                            shard=shard,
                            detail=(
                                f"slot {slot} ({a.txn_arr[slot]}): {a.pid} voted "
                                f"{a.vote_arr.get(slot)} but {b.pid} voted {b.vote_arr.get(slot)}"
                            ),
                        )
                    )
    return violations


def _check_slot_decision_agreement(shard: str, replicas: Sequence) -> List[InvariantViolation]:
    violations = []
    decisions: Dict[int, Dict] = {}
    for replica in replicas:
        for slot, decision in replica.dec_arr.items():
            txn = replica.txn_arr.get(slot)
            decisions.setdefault(slot, {})[replica.pid] = (txn, decision)
    for slot, per_replica in decisions.items():
        observed = {decision for _, decision in per_replica.values()}
        if len(observed) > 1:
            violations.append(
                InvariantViolation(
                    invariant="slot-decision-agreement (Inv. 4a)",
                    shard=shard,
                    detail=f"slot {slot}: replicas recorded decisions {per_replica}",
                )
            )
    return violations


def _check_commit_vote(shard: str, replicas: Sequence) -> List[InvariantViolation]:
    violations = []
    for replica in replicas:
        for slot, decision in replica.dec_arr.items():
            if decision is not Decision.COMMIT:
                continue
            vote = replica.vote_arr.get(slot)
            if vote is not None and vote is not Decision.COMMIT:
                violations.append(
                    InvariantViolation(
                        invariant="commit-implies-commit-vote (Inv. 12b)",
                        shard=shard,
                        detail=f"{replica.pid}: slot {slot} decided commit but voted {vote}",
                    )
                )
    return violations


# ----------------------------------------------------------------------
# system-wide checks
# ----------------------------------------------------------------------
def _check_global_decision_agreement(
    replicas_by_shard: Dict[str, Sequence],
    client_decisions: Optional[Dict[TxnId, Decision]],
    include_crashed: bool,
) -> List[InvariantViolation]:
    violations = []
    per_txn: Dict[str, Dict[str, Decision]] = {}
    for shard, replicas in replicas_by_shard.items():
        for replica in replicas:
            if replica.crashed and not include_crashed:
                continue
            for slot, decision in replica.dec_arr.items():
                txn = replica.txn_arr.get(slot)
                if txn is None:
                    continue
                per_txn.setdefault(txn, {})[f"{replica.pid}"] = decision
    if client_decisions is not None:
        for txn, decision in client_decisions.items():
            if decision is not None:
                per_txn.setdefault(txn, {})["<client-history>"] = decision
    for txn, observations in per_txn.items():
        observed = set(observations.values())
        if len(observed) > 1:
            violations.append(
                InvariantViolation(
                    invariant="global-decision-agreement (Inv. 4b)",
                    shard=None,
                    detail=f"transaction {txn}: {observations}",
                )
            )
    return violations
