"""Correctness checker for TCS histories (paper Section 2).

A history ``h`` is *correct with respect to a certification function f* when
its committed projection has a *legal linearization*: a total order of the
committed transactions that (i) respects the real-time order (if ``t`` was
decided before ``t'`` was certified then ``t`` precedes ``t'``) and (ii) in
which every transaction's commit decision is what ``f`` computes over the
payloads of the transactions preceding it.

Because ``f`` is distributive (requirement (1)), ``f(L, l) = commit`` iff
``f({l'}, l) = commit`` for every ``l' ∈ L``.  Therefore a legal
linearization exists iff the directed graph with

* a *conflict edge* ``b -> a`` whenever ``f({l_a}, l_b) = abort`` (``b``
  must precede ``a``), and
* a *real-time edge* ``a -> b`` whenever ``decide(a) ≺h certify(b)``

is acyclic; any topological order of it is a legal linearization.  The
checker builds this graph and reports either a witness linearization or the
offending cycle.  An exhaustive fallback is provided for schemes whose
distributivity the caller does not trust (and is used by tests to validate
the graph construction itself).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.certification import CertificationScheme
from repro.core.types import Decision, TxnId
from repro.spec.history import History


@dataclass
class CheckResult:
    """Outcome of a correctness check."""

    ok: bool
    reason: str = ""
    linearization: List[TxnId] = field(default_factory=list)
    cycle: List[TxnId] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class TCSChecker:
    """Checks histories for correctness with respect to a certification scheme."""

    def __init__(self, scheme: CertificationScheme) -> None:
        self.scheme = scheme

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def check(self, history: History) -> CheckResult:
        """Check the committed projection of ``history`` (graph-based)."""
        if history.contradictions:
            txn, first, second = history.contradictions[0]
            return CheckResult(
                ok=False,
                reason=(
                    f"contradictory decisions externalised for {txn}: "
                    f"{first.value} vs {second.value}"
                ),
            )
        committed = history.committed()
        # Snapshot reads attach their resolved payload to the decide event;
        # effective_payload_of prefers it over the certify-time marker.
        payloads = {txn: history.effective_payload_of(txn) for txn in committed}
        edges = self._build_edges(history, committed, payloads)
        order, cycle = _topological_order(committed, edges)
        if cycle:
            return CheckResult(
                ok=False,
                reason="no legal linearization: conflict/real-time cycle",
                cycle=cycle,
            )
        # Defensive re-validation of the witness (cheap, and guards against a
        # non-distributive scheme slipping through the graph construction).
        witness_ok, reason = self._legal(order, payloads)
        if not witness_ok:
            return CheckResult(ok=False, reason=reason)
        return CheckResult(ok=True, linearization=order)

    def check_exhaustive(self, history: History, limit: int = 8) -> CheckResult:
        """Brute-force search over permutations (only for small histories)."""
        committed = history.committed()
        if len(committed) > limit:
            raise ValueError(
                f"exhaustive check limited to {limit} committed transactions, "
                f"got {len(committed)}"
            )
        payloads = {txn: history.effective_payload_of(txn) for txn in committed}
        rt_pairs = set(history.real_time_pairs(committed))
        for order in itertools.permutations(committed):
            position = {txn: i for i, txn in enumerate(order)}
            if any(position[a] > position[b] for a, b in rt_pairs):
                continue
            ok, _ = self._legal(list(order), payloads)
            if ok:
                return CheckResult(ok=True, linearization=list(order))
        return CheckResult(ok=False, reason="no legal linearization (exhaustive)")

    def check_decisions_unique(self, history: History) -> CheckResult:
        """Sanity check: at most one decision per transaction (enforced while
        recording, re-checked here for defence in depth)."""
        seen: Dict[TxnId, Decision] = {}
        for event in history.events:
            if event.kind != "decide":
                continue
            if event.txn in seen and seen[event.txn] is not event.decision:
                return CheckResult(ok=False, reason=f"two decisions for {event.txn}")
            seen[event.txn] = event.decision
        return CheckResult(ok=True)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _build_edges(
        self,
        history: History,
        committed: Sequence[TxnId],
        payloads: Dict[TxnId, object],
    ) -> Dict[TxnId, Set[TxnId]]:
        edges: Dict[TxnId, Set[TxnId]] = {txn: set() for txn in committed}
        # Real-time edges: a must precede b.
        for a, b in history.real_time_pairs(committed):
            edges[a].add(b)
        # Conflict edges: if committing a before b would abort b, then b must
        # precede a in any legal linearization.
        for a in committed:
            for b in committed:
                if a == b:
                    continue
                if self.scheme.global_certify([payloads[a]], payloads[b]) is Decision.ABORT:
                    edges[b].add(a)
        return edges

    def _legal(
        self, order: Sequence[TxnId], payloads: Dict[TxnId, object]
    ) -> Tuple[bool, str]:
        placed: List[object] = []
        for txn in order:
            decision = self.scheme.global_certify(placed, payloads[txn])
            if decision is not Decision.COMMIT:
                return False, f"transaction {txn} cannot commit at its position"
            placed.append(payloads[txn])
        return True, ""


def _topological_order(
    nodes: Sequence[TxnId], edges: Dict[TxnId, Set[TxnId]]
) -> Tuple[List[TxnId], List[TxnId]]:
    """Kahn's algorithm; returns (order, []) or ([], cycle_witness).

    Ties are broken by smallest transaction id (a min-heap of the ready set),
    which keeps the witness linearization deterministic at O(E + V log V)
    instead of the former re-sort-per-step O(V^2 log V).
    """
    indegree: Dict[TxnId, int] = {node: 0 for node in nodes}
    for src, dsts in edges.items():
        for dst in dsts:
            if dst in indegree:
                indegree[dst] += 1
    ready = [node for node, deg in indegree.items() if deg == 0]
    heapq.heapify(ready)
    order: List[TxnId] = []
    while ready:
        node = heapq.heappop(ready)
        order.append(node)
        for dst in edges.get(node, ()):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                heapq.heappush(ready, dst)
    if len(order) == len(nodes):
        return order, []
    cycle = [node for node in nodes if node not in set(order)]
    return [], cycle
