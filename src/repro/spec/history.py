"""TCS histories.

A history is a sequence of ``certify(t, l)`` and ``decide(t, d)`` actions
such that every transaction is certified at most once and every decide
responds to exactly one preceding certify (Section 2).  Clients record their
interactions with the service into a shared :class:`History`, which the
checker and the metrics layer consume.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.types import Decision, TxnId


def _stable(value: Any) -> Any:
    """A canonical, hash-seed-independent rendering of a payload value.

    Sets and frozensets iterate in ``PYTHONHASHSEED`` order, so they are
    sorted by repr before hashing; containers and dataclasses (e.g.
    ``TransactionPayload``, whose read/write sets are frozensets) recurse.
    Everything else relies on its repr being deterministic (the leaves
    here are txn ids, keys, versions and primitives — all are).
    """
    if isinstance(value, (set, frozenset)):
        return ("set", sorted(repr(_stable(v)) for v in value))
    if isinstance(value, dict):
        return ("dict", sorted((repr(k), repr(_stable(v))) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_stable(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (field.name, _stable(getattr(value, field.name)))
                for field in dataclasses.fields(value)
            ),
        )
    return value


@dataclass(frozen=True)
class Event:
    """One action of a history."""

    kind: str  # "certify" | "decide"
    txn: TxnId
    time: float
    seq: int
    payload: Any = None
    decision: Optional[Decision] = None


class History:
    """An append-only TCS history with the derived relations the spec uses."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._certified: Dict[TxnId, Event] = {}
        self._decided: Dict[TxnId, Event] = {}
        # Contradictory decide events observed for the same transaction.
        # A correct protocol never produces these (Invariant 4b); the broken
        # RDMA variant used for the Figure 4a ablation does, and the checker
        # reports them rather than the recorder raising mid-simulation.
        self.contradictions: List[Tuple[TxnId, Decision, Decision]] = []
        # Completion callbacks; the cluster drivers' decision watchers hook
        # in here so that waiting for decisions is O(1) per event instead of
        # a full-history rescan.
        self._certify_listeners: List[Callable[[TxnId], None]] = []
        self._decide_listeners: List[Callable[[TxnId, Decision], None]] = []
        self._contradiction_listeners: List[
            Callable[[TxnId, Decision, Decision], None]
        ] = []

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_certify_listener(self, fn: Callable[[TxnId], None]) -> None:
        """Call ``fn(txn)`` whenever a new transaction is certified."""
        self._certify_listeners.append(fn)

    def remove_certify_listener(self, fn: Callable[[TxnId], None]) -> None:
        self._certify_listeners.remove(fn)

    def add_decide_listener(self, fn: Callable[[TxnId, Decision], None]) -> None:
        """Call ``fn(txn, decision)`` on each transaction's *first* decide."""
        self._decide_listeners.append(fn)

    def remove_decide_listener(self, fn: Callable[[TxnId, Decision], None]) -> None:
        self._decide_listeners.remove(fn)

    def add_contradiction_listener(
        self, fn: Callable[[TxnId, Decision, Decision], None]
    ) -> None:
        """Call ``fn(txn, first, second)`` when a *contradictory* decide is
        recorded for an already-decided transaction (Invariant 4b violations;
        only the broken ablation protocol produces these)."""
        self._contradiction_listeners.append(fn)

    def remove_contradiction_listener(
        self, fn: Callable[[TxnId, Decision, Decision], None]
    ) -> None:
        self._contradiction_listeners.remove(fn)

    def subscribe(
        self,
        on_certify: Optional[Callable[[TxnId], None]] = None,
        on_decide: Optional[Callable[[TxnId, Decision], None]] = None,
        on_contradiction: Optional[Callable[[TxnId, Decision, Decision], None]] = None,
    ) -> "HistorySubscription":
        """Register the given callbacks and return one closeable handle.

        The online checker and the invariant monitor consume histories
        through this API instead of rescanning ``events``; the handle is a
        context manager so subscriptions do not leak on long-lived histories.
        """
        return HistorySubscription(self, on_certify, on_decide, on_contradiction)

    def watch(self, txns: Optional[Sequence[TxnId]] = None) -> "DecisionWatcher":
        """A :class:`DecisionWatcher` over ``txns`` (default: every certified
        transaction, including ones certified after the watcher is created)."""
        return DecisionWatcher(self, txns)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_certify(self, txn: TxnId, payload: Any, time: float) -> Event:
        if txn in self._certified:
            raise ValueError(f"transaction {txn!r} certified twice")
        event = Event(kind="certify", txn=txn, time=time, seq=len(self.events), payload=payload)
        self.events.append(event)
        self._certified[txn] = event
        for listener in self._certify_listeners:
            listener(txn)
        return event

    def record_decide(
        self, txn: TxnId, decision: Decision, time: float, payload: Any = None
    ) -> Event:
        """Record a decision.  ``payload`` is normally None (the payload rides
        the certify event); snapshot reads certify a placeholder marker and
        attach their versioned read-only payload here, once the serving
        replica has determined which versions were observed."""
        if txn not in self._certified:
            raise ValueError(f"decide for unknown transaction {txn!r}")
        if txn in self._decided:
            previous = self._decided[txn].decision
            if previous is not decision:
                self.contradictions.append((txn, previous, decision))
                for listener in self._contradiction_listeners:
                    listener(txn, previous, decision)
            return self._decided[txn]
        event = Event(
            kind="decide",
            txn=txn,
            time=time,
            seq=len(self.events),
            payload=payload,
            decision=decision,
        )
        self.events.append(event)
        self._decided[txn] = event
        for listener in self._decide_listeners:
            listener(txn, decision)
        return event

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def certified(self) -> List[TxnId]:
        return list(self._certified)

    def payload_of(self, txn: TxnId) -> Any:
        return self._certified[txn].payload

    def decided_payload_of(self, txn: TxnId) -> Any:
        """The payload attached to the decide event, if any (snapshot reads)."""
        event = self._decided.get(txn)
        return event.payload if event else None

    def effective_payload_of(self, txn: TxnId) -> Any:
        """The payload the checkers should certify against: the decide-time
        payload when one was attached (snapshot reads resolve their observed
        versions only at decide time), the certify-time payload otherwise."""
        decided = self.decided_payload_of(txn)
        return decided if decided is not None else self._certified[txn].payload

    def decision_of(self, txn: TxnId) -> Optional[Decision]:
        event = self._decided.get(txn)
        return event.decision if event else None

    def decided(self) -> Dict[TxnId, Decision]:
        return {txn: event.decision for txn, event in self._decided.items()}

    def committed(self) -> List[TxnId]:
        """Transactions that committed, in decide order."""
        return [
            event.txn
            for event in self.events
            if event.kind == "decide" and event.decision is Decision.COMMIT
        ]

    def is_complete(self) -> bool:
        """True when every certify has a matching decide."""
        return set(self._certified) == set(self._decided)

    def pending(self) -> Set[TxnId]:
        return set(self._certified) - set(self._decided)

    def real_time_precedes(self, first: TxnId, second: TxnId) -> bool:
        """``first ≺rt second``: first was decided before second was certified."""
        decide = self._decided.get(first)
        certify = self._certified.get(second)
        if decide is None or certify is None:
            return False
        return decide.seq < certify.seq

    def real_time_pairs(self, txns: Optional[Iterable[TxnId]] = None) -> List[Tuple[TxnId, TxnId]]:
        """All ``(a, b)`` with ``a ≺rt b`` among the given transactions."""
        txns = list(txns) if txns is not None else list(self._certified)
        pairs = []
        for a in txns:
            for b in txns:
                if a != b and self.real_time_precedes(a, b):
                    pairs.append((a, b))
        return pairs

    def digest(self) -> str:
        """A SHA-256 fingerprint of the full event sequence.

        Two histories digest equal iff they recorded the same actions, on
        the same transactions with the same payloads and decisions, in the
        same order at the same virtual times — the byte-identity contract
        the parallel execution modes are held to.  Stable across processes
        and ``PYTHONHASHSEED`` values (unordered payload containers are
        canonicalized first), so digests can be compared between a serial
        parent and pool workers, or across machines.
        """
        fingerprint = hashlib.sha256()
        for event in self.events:
            fingerprint.update(
                repr(
                    (
                        event.kind,
                        event.txn,
                        event.time,
                        event.seq,
                        _stable(event.payload),
                        None if event.decision is None else event.decision.name,
                    )
                ).encode()
            )
        return fingerprint.hexdigest()

    def __len__(self) -> int:
        return len(self.events)


class HistorySubscription:
    """A closeable bundle of history listeners (see :meth:`History.subscribe`)."""

    def __init__(
        self,
        history: History,
        on_certify: Optional[Callable[[TxnId], None]] = None,
        on_decide: Optional[Callable[[TxnId, Decision], None]] = None,
        on_contradiction: Optional[Callable[[TxnId, Decision, Decision], None]] = None,
    ) -> None:
        self._history = history
        self._on_certify = on_certify
        self._on_decide = on_decide
        self._on_contradiction = on_contradiction
        self._closed = False
        if on_certify is not None:
            history.add_certify_listener(on_certify)
        if on_decide is not None:
            history.add_decide_listener(on_decide)
        if on_contradiction is not None:
            history.add_contradiction_listener(on_contradiction)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._on_certify is not None:
            self._history.remove_certify_listener(self._on_certify)
        if self._on_decide is not None:
            self._history.remove_decide_listener(self._on_decide)
        if self._on_contradiction is not None:
            self._history.remove_contradiction_listener(self._on_contradiction)

    def __enter__(self) -> "HistorySubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DecisionWatcher:
    """O(1)-per-event completion tracking for a set of transactions.

    Instead of rescanning the whole history after every fired event (the
    old ``run_until_decided`` predicate, O(events x txns) overall), a
    watcher subscribes to the history's decide events and keeps a counter
    of outstanding transactions, turning the wait into O(events).

    With ``txns=None`` the watcher tracks *every* certified transaction,
    including transactions certified while the watcher is open (it also
    subscribes to certify events), which matches the semantics of waiting
    for the full history to become complete.

    Watchers are context managers; always close them (or use ``with``) so
    the listener subscriptions do not accumulate on long-lived histories.
    """

    def __init__(self, history: History, txns: Optional[Sequence[TxnId]] = None) -> None:
        self._history = history
        self._track_all = txns is None
        self._waiting: Set[TxnId] = set()
        self._closed = False
        if self._track_all:
            self._waiting.update(history.pending())
            history.add_certify_listener(self._on_certify)
        else:
            for txn in txns:
                if history.decision_of(txn) is None:
                    self._waiting.add(txn)
        history.add_decide_listener(self._on_decide)

    def _on_certify(self, txn: TxnId) -> None:
        self._waiting.add(txn)

    def _on_decide(self, txn: TxnId, decision: Decision) -> None:
        self._waiting.discard(txn)

    @property
    def outstanding(self) -> int:
        """Number of tracked transactions still awaiting a decision."""
        return len(self._waiting)

    def is_done(self) -> bool:
        return not self._waiting

    @property
    def done(self) -> bool:
        return not self._waiting

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._track_all:
            self._history.remove_certify_listener(self._on_certify)
        self._history.remove_decide_listener(self._on_decide)

    def __enter__(self) -> "DecisionWatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
