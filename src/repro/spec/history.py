"""TCS histories.

A history is a sequence of ``certify(t, l)`` and ``decide(t, d)`` actions
such that every transaction is certified at most once and every decide
responds to exactly one preceding certify (Section 2).  Clients record their
interactions with the service into a shared :class:`History`, which the
checker and the metrics layer consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.types import Decision, TxnId


@dataclass(frozen=True)
class Event:
    """One action of a history."""

    kind: str  # "certify" | "decide"
    txn: TxnId
    time: float
    seq: int
    payload: Any = None
    decision: Optional[Decision] = None


class History:
    """An append-only TCS history with the derived relations the spec uses."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._certified: Dict[TxnId, Event] = {}
        self._decided: Dict[TxnId, Event] = {}
        # Contradictory decide events observed for the same transaction.
        # A correct protocol never produces these (Invariant 4b); the broken
        # RDMA variant used for the Figure 4a ablation does, and the checker
        # reports them rather than the recorder raising mid-simulation.
        self.contradictions: List[Tuple[TxnId, Decision, Decision]] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_certify(self, txn: TxnId, payload: Any, time: float) -> Event:
        if txn in self._certified:
            raise ValueError(f"transaction {txn!r} certified twice")
        event = Event(kind="certify", txn=txn, time=time, seq=len(self.events), payload=payload)
        self.events.append(event)
        self._certified[txn] = event
        return event

    def record_decide(self, txn: TxnId, decision: Decision, time: float) -> Event:
        if txn not in self._certified:
            raise ValueError(f"decide for unknown transaction {txn!r}")
        if txn in self._decided:
            previous = self._decided[txn].decision
            if previous is not decision:
                self.contradictions.append((txn, previous, decision))
            return self._decided[txn]
        event = Event(kind="decide", txn=txn, time=time, seq=len(self.events), decision=decision)
        self.events.append(event)
        self._decided[txn] = event
        return event

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def certified(self) -> List[TxnId]:
        return list(self._certified)

    def payload_of(self, txn: TxnId) -> Any:
        return self._certified[txn].payload

    def decision_of(self, txn: TxnId) -> Optional[Decision]:
        event = self._decided.get(txn)
        return event.decision if event else None

    def decided(self) -> Dict[TxnId, Decision]:
        return {txn: event.decision for txn, event in self._decided.items()}

    def committed(self) -> List[TxnId]:
        """Transactions that committed, in decide order."""
        return [
            event.txn
            for event in self.events
            if event.kind == "decide" and event.decision is Decision.COMMIT
        ]

    def is_complete(self) -> bool:
        """True when every certify has a matching decide."""
        return set(self._certified) == set(self._decided)

    def pending(self) -> Set[TxnId]:
        return set(self._certified) - set(self._decided)

    def real_time_precedes(self, first: TxnId, second: TxnId) -> bool:
        """``first ≺rt second``: first was decided before second was certified."""
        decide = self._decided.get(first)
        certify = self._certified.get(second)
        if decide is None or certify is None:
            return False
        return decide.seq < certify.seq

    def real_time_pairs(self, txns: Optional[Iterable[TxnId]] = None) -> List[Tuple[TxnId, TxnId]]:
        """All ``(a, b)`` with ``a ≺rt b`` among the given transactions."""
        txns = list(txns) if txns is not None else list(self._certified)
        pairs = []
        for a in txns:
            for b in txns:
                if a != b and self.real_time_precedes(a, b):
                    pairs.append((a, b))
        return pairs

    def __len__(self) -> int:
        return len(self.events)
