"""Declarative scenario descriptions.

A :class:`ScenarioSpec` fully determines one simulated experiment: which
protocol to deploy, how large the cluster is, which workload the clients
generate, and which faults strike at which virtual times.  Specs are plain
frozen dataclasses, so a scenario is a value — it can be registered in the
library, tweaked with :meth:`ScenarioSpec.with_overrides`, swept across
protocols, or constructed ad hoc by a benchmark.

Fault targets are *roles* resolved against the live cluster when the step
executes (or at build time for setup steps), not hard-coded process ids:

* ``"leader:shard-1"`` — current leader of ``shard-1``;
* ``"follower:shard-1"`` / ``"follower:shard-1:2"`` — a current follower
  (by index, default 0);
* ``"member:shard-2:0"`` — a configuration member by index;
* ``"config-service"`` — the configuration service process;
* anything else — a literal process id.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


class ScenarioError(ValueError):
    """An invalid scenario description."""


FAULT_ACTIONS = (
    "crash",  # crash the resolved target
    "crash-leader",  # crash the current leader of `shard`
    "crash-follower",  # crash a live follower of `shard`
    "reconfigure",  # initiate reconfiguration of `shard` (global for RDMA)
    "retry-stalled",  # leaders re-drive their prepared-but-undecided slots
    "delay-channel",  # add `delay` extra latency on the channel src -> dst
    "block-channel",  # drop all future messages on the channel src -> dst
    "partition",  # cut the resolved target off from every other process
    "heal",  # remove all partitions/blocks and extra channel delays
)

CHECK_MODES = (
    "off",  # no history validation (contradiction detection stays on)
    "final",  # batch TCSChecker over the full history at quiescence
    "online",  # IncrementalTCSChecker subscribed to the history during the run
)

LATENCY_MODELS = (
    "unit",  # every message takes exactly one delay (the paper's unit)
    "fixed",  # every message takes exactly `value` delays
    "uniform",  # delays drawn uniformly from [low, high]
    "lognormal",  # heavy-tailed delays with the given mean and sigma
    "exponential",  # memoryless delays with the given mean
    "regions",  # WAN topology: named regions, intra/inter-region delays
)

WORKLOAD_KINDS = (
    "uniform",  # read/write transactions over uniformly random keys
    "zipfian",  # read/write transactions over Zipf-skewed keys
    "bank",  # balance transfers (money-conservation workload)
    "spanning",  # explicit multi-shard payloads, optionally pinned coordinator
)


@dataclass(frozen=True)
class FaultStep:
    """One fault-injection action at virtual time ``at``.

    Steps with ``at <= 0`` are *setup* steps: they are applied while the
    cluster is being built, before any transaction is submitted (the place
    for ``delay-channel`` steps shaping an adversarial schedule).  Steps
    with ``at > 0`` are scheduled on the simulation clock and fire between
    events like any other activity in the system.
    """

    at: float
    action: str
    shard: Optional[str] = None
    target: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    delay: float = 0.0
    suspects: Tuple[str, ...] = ()

    def validate(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ScenarioError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.action in ("crash-leader", "crash-follower", "reconfigure") and not self.shard:
            raise ScenarioError(f"fault action {self.action!r} requires a shard")
        if self.action in ("crash", "partition") and not self.target:
            raise ScenarioError(f"fault action {self.action!r} requires a target")
        if self.action == "block-channel" and (not self.src or not self.dst):
            raise ScenarioError("fault action 'block-channel' requires src and dst")
        if self.action == "delay-channel":
            if not self.src or not self.dst:
                raise ScenarioError("fault action 'delay-channel' requires src and dst")
            if self.delay <= 0:
                raise ScenarioError("fault action 'delay-channel' requires a positive delay")
            if self.at > 0:
                raise ScenarioError(
                    "'delay-channel' must be a setup step (at <= 0): extra latency "
                    "cannot be installed retroactively for in-flight messages"
                )


@dataclass(frozen=True)
class LatencySpec:
    """Which delay distribution the network applies, per link class.

    The default (``model="unit"``) is the paper's unit: every message takes
    exactly one delay, so virtual time counts message delays on the critical
    path.  The other scalar models stress the protocol under jitter
    (``uniform``), heavy tails (``lognormal``) and memoryless queueing
    (``exponential``); all draws come from the scenario's seeded RNG, so
    runs stay deterministic.  ``jitter`` adds uniform noise in
    ``[0, jitter]`` on top of any model but ``unit``.

    ``model="regions"`` is the declarative WAN form: processes are placed
    in named ``regions`` (replicas by replica index, so every shard spans
    the regions; explicit ``placement`` pairs override), links within a
    region take ``intra`` delays and links between regions take the
    per-pair delays from ``links`` (``(src-region, dst-region, delay)``
    triples; a pair listed in one direction only is treated symmetric).
    """

    model: str = "unit"
    value: float = 1.0  # fixed: the constant delay
    low: float = 0.5  # uniform: lower bound
    high: float = 1.5  # uniform: upper bound
    mean: float = 1.0  # lognormal / exponential: distribution mean
    sigma: float = 0.5  # lognormal: shape (tail weight)
    jitter: float = 0.0  # additive uniform noise in [0, jitter]
    regions: Tuple[str, ...] = ()  # regions: region names
    intra: float = 1.0  # regions: intra-region delay
    links: Tuple[Tuple[str, str, float], ...] = ()  # regions: (src, dst, delay)
    placement: Tuple[Tuple[str, str], ...] = ()  # regions: (pid, region) pins

    def validate(self) -> None:
        if self.model not in LATENCY_MODELS:
            raise ScenarioError(
                f"unknown latency model {self.model!r}; expected one of {LATENCY_MODELS}"
            )
        if self.jitter < 0:
            raise ScenarioError("latency jitter must be non-negative")
        if self.model == "unit" and self.jitter:
            raise ScenarioError(
                "the unit model is the paper's exact-delay unit; "
                "use model='fixed' with jitter instead"
            )
        if self.model == "fixed" and self.value <= 0:
            raise ScenarioError("fixed latency requires a positive value")
        if self.model == "uniform":
            if self.low < 0:
                raise ScenarioError("uniform latency bounds must be non-negative")
            if self.high < self.low:
                raise ScenarioError("uniform latency requires low <= high")
        if self.model in ("lognormal", "exponential") and self.mean <= 0:
            raise ScenarioError(f"{self.model} latency requires a positive mean")
        if self.model == "lognormal" and self.sigma <= 0:
            raise ScenarioError("lognormal latency requires a positive sigma")
        if self.model == "regions":
            if len(self.regions) < 2:
                raise ScenarioError("region latency needs at least two regions")
            if len(set(self.regions)) != len(self.regions):
                raise ScenarioError("region names must be unique")
            if self.intra < 0:
                raise ScenarioError("intra-region delay must be non-negative")
            covered = set()
            for src, dst, delay in self.links:
                if src not in self.regions or dst not in self.regions:
                    raise ScenarioError(
                        f"link ({src!r}, {dst!r}) names an unknown region"
                    )
                if src == dst:
                    raise ScenarioError(
                        f"link ({src!r}, {dst!r}): intra-region delay is set by 'intra'"
                    )
                if delay < 0:
                    raise ScenarioError("inter-region delays must be non-negative")
                if (src, dst) in covered:
                    raise ScenarioError(
                        f"duplicate link ({src!r}, {dst!r}): each direction may "
                        "be given at most once"
                    )
                covered.add((src, dst))
            for src in self.regions:
                for dst in self.regions:
                    if src != dst and (src, dst) not in covered and (dst, src) not in covered:
                        raise ScenarioError(
                            f"missing inter-region delay for {src!r} <-> {dst!r}"
                        )
            for pid, region in self.placement:
                if region not in self.regions:
                    raise ScenarioError(
                        f"placement of {pid!r} names unknown region {region!r}"
                    )

    def describe(self) -> str:
        """A compact label for sweep tables and result dicts."""
        if self.model == "unit":
            return "unit"
        if self.model == "fixed":
            params = f"value={self.value:g}"
        elif self.model == "uniform":
            params = f"low={self.low:g},high={self.high:g}"
        elif self.model == "lognormal":
            params = f"mean={self.mean:g},sigma={self.sigma:g}"
        elif self.model == "exponential":
            params = f"mean={self.mean:g}"
        else:
            links = "/".join(f"{src}-{dst}:{delay:g}" for src, dst, delay in self.links)
            params = f"regions={'/'.join(self.regions)},intra={self.intra:g},links={links}"
            if self.placement:
                pins = "/".join(f"{pid}@{region}" for pid, region in self.placement)
                params += f",pins={pins}"
        if self.jitter:
            params += f",jitter={self.jitter:g}"
        return f"{self.model}({params})"


@dataclass(frozen=True)
class BatchSpec:
    """Protocol-level batching policy (declarative form of
    :class:`repro.core.batching.BatchPolicy`).

    With ``size >= 2`` coordinators accumulate their per-destination
    fan-out (PREPAREs to shard leaders, ACCEPT relays, DECISION broadcasts;
    replicated commands for the 2PC baseline) and flush per-destination
    batches: when a batch reaches ``size`` messages, when its first message
    has lingered ``linger`` virtual-time units (``adaptive=False``), or —
    the adaptive default — at the end of the virtual instant that opened
    it, so messages produced at the same instant coalesce at zero virtual
    latency.  Batch composition is deterministic (arrival order, never hash
    order), and batching is invisible to the TCS checker: batches carry the
    unbatched protocol messages verbatim, in order.

    ``size = 0`` (the default) keeps the paper's one-message-per-transaction
    flow.
    """

    size: int = 0
    linger: float = 0.0
    adaptive: bool = True

    def compile(self):
        """The :class:`repro.core.batching.BatchPolicy` this spec describes
        (the single home of the field bounds — validation delegates here)."""
        from repro.core.batching import BatchPolicy  # late: keep spec modules light

        return BatchPolicy(size=self.size, linger=self.linger, adaptive=self.adaptive)

    def validate(self) -> None:
        try:
            self.compile()
        except ValueError as error:
            raise ScenarioError(str(error)) from None

    @property
    def enabled(self) -> bool:
        return self.size >= 2

    def describe(self) -> str:
        return self.compile().describe()


@dataclass(frozen=True)
class RetrySpec:
    """Client-session re-submission policy (declarative form of
    :class:`repro.client.RetryPolicy`).

    With ``timeout > 0`` every client drives its transactions through a
    session: a transaction still undecided ``timeout`` message delays after
    submission is re-submitted — failing over to a coordinator not yet tried
    and refreshing the client's configuration view from the configuration
    service — with the wait multiplied by ``backoff`` per attempt, up to
    ``max_attempts`` total submissions (then the transaction counts as
    *orphaned*).  Re-submissions reuse the transaction id; coordinators
    deduplicate and re-answer decided transactions from their decision
    caches, so duplicates can never yield two different decisions.

    ``timeout = 0`` (the default) keeps the paper's fire-and-forget client.
    """

    timeout: float = 0.0
    backoff: float = 2.0
    max_attempts: int = 4

    def compile(self):
        """The :class:`repro.client.RetryPolicy` this spec describes (the
        single home of the field bounds — validation delegates here)."""
        from repro.client import RetryPolicy  # late: keep spec modules dependency-light

        return RetryPolicy(
            timeout=self.timeout,
            backoff=self.backoff,
            max_attempts=self.max_attempts,
        )

    def validate(self) -> None:
        try:
            self.compile()
        except ValueError as error:
            raise ScenarioError(str(error)) from None

    @property
    def enabled(self) -> bool:
        return self.timeout > 0

    def describe(self) -> str:
        if not self.enabled:
            return "off"
        return (
            f"timeout={self.timeout:g},backoff={self.backoff:g},"
            f"max_attempts={self.max_attempts}"
        )


@dataclass(frozen=True)
class ReadSpec:
    """Snapshot-read fast-path policy (declarative form of
    :class:`repro.core.reads.ReadPolicy`).

    With ``mode="snapshot"`` shard leaders hold configuration-service read
    leases and answer single-shard read-only transactions directly from
    their applied MVCC stores — no coordinator, no certification — behind a
    closed-timestamp watermark; reads that hit an expired lease or a
    prepared-but-undecided conflicting write fall back to the certified
    path.  ``mode="broken-snapshot"`` is the ablation: leaders serve even
    when the lease has expired or conflicting writes are pending, which the
    checker must flag as a serializability violation.

    ``mode="certified"`` (the default) disables the fast path entirely:
    read-only transactions certify like any other transaction, and no read
    machinery is instantiated.
    """

    mode: str = "certified"
    lease: float = 0.0  # lease duration in message delays; 0 = engine default

    def compile(self):
        """The :class:`repro.core.reads.ReadPolicy` this spec describes (the
        single home of the field bounds — validation delegates here)."""
        from repro.core.reads import DEFAULT_LEASE, ReadPolicy  # late: keep spec light

        policy = ReadPolicy(mode=self.mode, lease=self.lease or DEFAULT_LEASE)
        policy.validate()
        return policy

    def validate(self) -> None:
        if self.lease < 0:
            raise ScenarioError("read lease must be >= 0 (0 = default duration)")
        try:
            self.compile()
        except ValueError as error:
            raise ScenarioError(str(error)) from None

    @property
    def enabled(self) -> bool:
        return self.mode != "certified"

    def describe(self) -> str:
        return self.compile().describe()


@dataclass(frozen=True)
class DetectorSpec:
    """Heartbeat failure-detector policy (declarative form of
    :class:`repro.core.failuredetector.DetectorPolicy`).

    With ``interval > 0`` every replica heartbeats its co-members once per
    ``interval`` message delays and scores their silence — ``bounded`` mode
    suspects after ``threshold`` whole missed windows, ``phi`` mode when the
    silence over the smoothed inter-arrival mean reaches ``phi_threshold``.
    Suspicions go to the configuration service, which aggregates them per
    (shard, epoch, suspect) and — once ``confirmations`` distinct observers
    agree — asks a surviving member to reconfigure through the ordinary CAS
    path, then pushes ``CONFIG_CHANGE`` to subscribed clients so sessions
    fail over before their retry timers fire.

    ``interval = 0`` (the default) disables the detector entirely,
    preserving the paper's oracle-free, timeout-driven failover.
    """

    mode: str = "bounded"
    interval: float = 0.0
    threshold: int = 3
    phi_threshold: float = 4.0
    confirmations: int = 1

    def compile(self):
        """The :class:`repro.core.failuredetector.DetectorPolicy` this spec
        describes (the single home of the field bounds)."""
        from repro.core.failuredetector import DetectorPolicy  # late: keep spec light

        policy = DetectorPolicy(
            mode=self.mode,
            interval=self.interval,
            threshold=self.threshold,
            phi_threshold=self.phi_threshold,
            confirmations=self.confirmations,
        )
        policy.validate()
        return policy

    def validate(self) -> None:
        try:
            self.compile()
        except ValueError as error:
            raise ScenarioError(str(error)) from None

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def describe(self) -> str:
        return self.compile().describe()


@dataclass(frozen=True)
class NetworkSpec:
    """Bandwidth/queueing network model plus the commit-path optimizations
    it makes measurable (declarative form of
    :class:`repro.runtime.network.LinkSpec` and the pipelining/affinity
    knobs).

    With ``bandwidth > 0`` every directed channel becomes a FIFO queue:
    each message pays a serialization time of
    ``overhead + wire_size(message) / bandwidth`` and queues behind earlier
    messages on the same link, so delivery time is propagation + queue wait
    + serialization.  Batches serialize the sum of their parts plus one
    header, which is what gives batch-size sweeps a real latency/throughput
    knee.  ``bandwidth = 0`` (the default) keeps the pure-delay network.

    ``pipeline`` controls leader-side vote pipelining: coordinators overlap
    PREPARE certification of new transactions with ACCEPT persistence of
    earlier ones (the default, and the paper's behaviour).  Setting it to
    False serializes the commit path stop-and-wait style — the measurement
    baseline the pipelining speedup is quoted against.

    ``sticky`` pins each client (and each distinct shard set) to one
    coordinator instead of rotating round-robin, deepening per-coordinator
    batches at the cost of load spread.
    """

    bandwidth: float = 0.0  # bytes per delay unit; 0 disables the model
    overhead: float = 0.0  # fixed per-message serialization cost (delays)
    pipeline: bool = True  # overlap PREPARE of N+1 with ACCEPT of N
    sticky: bool = False  # sticky client -> coordinator affinity

    def compile(self):
        """The :class:`repro.runtime.network.LinkSpec` this spec describes,
        or None when the bandwidth model is off."""
        from repro.runtime.network import LinkSpec  # late: keep spec modules light

        if not self.enabled:
            return None
        return LinkSpec(bandwidth=self.bandwidth, overhead=self.overhead)

    def validate(self) -> None:
        if self.bandwidth < 0:
            raise ScenarioError("network bandwidth must be >= 0 (0 = unlimited)")
        if self.overhead < 0:
            raise ScenarioError("network overhead must be >= 0")
        if self.overhead and not self.enabled:
            raise ScenarioError(
                "network overhead is a serialization cost; it requires a "
                "positive bandwidth"
            )

    @property
    def enabled(self) -> bool:
        return self.bandwidth > 0

    def describe(self) -> str:
        if not self.enabled and self.pipeline and not self.sticky:
            return "off"
        parts = []
        if self.enabled:
            parts.append(f"bw={self.bandwidth:g}")
            if self.overhead:
                parts.append(f"ovh={self.overhead:g}")
        if not self.pipeline:
            parts.append("nopipe")
        if self.sticky:
            parts.append("sticky")
        return ",".join(parts)


@dataclass(frozen=True)
class WorkloadSpec:
    """What the clients do.

    ``txns`` transactions are driven in closed-loop batches of ``batch``;
    each batch executes speculatively against the committed store state and
    is certified concurrently (which is where conflicts and aborts arise).

    With ``think_time > 0`` the driver switches to *closed-loop client
    sessions*: ``sessions`` concurrent logical clients (default: ``batch``)
    each keep one transaction in flight and pause for an exponentially
    distributed think time (mean ``think_time``, in message delays) between
    a decision and the next submission — the classic interactive-client
    model, as opposed to the default batch-driven open pressure.
    """

    kind: str = "uniform"
    txns: int = 100
    batch: int = 10
    num_keys: int = 128
    theta: float = 0.9
    reads_per_txn: int = 2
    writes_per_txn: int = 1
    num_accounts: int = 16
    initial_balance: int = 100
    hot_fraction: float = 0.0
    read_ratio: float = 0.0  # fraction of read-only point lookups (uniform/zipfian)
    think_time: float = 0.0
    sessions: int = 0  # closed-loop sessions; 0 means `batch`
    coordinator: Optional[str] = None  # role, only for kind="spanning"

    def validate(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ScenarioError(
                f"unknown workload kind {self.kind!r}; expected one of {WORKLOAD_KINDS}"
            )
        if self.txns < 1:
            raise ScenarioError("workload needs at least one transaction")
        if self.batch < 1:
            raise ScenarioError("workload batch size must be >= 1")
        if self.kind in ("uniform", "zipfian"):
            if self.num_keys < 1:
                raise ScenarioError("num_keys must be >= 1")
            if self.writes_per_txn > self.reads_per_txn:
                raise ScenarioError("writes_per_txn must not exceed reads_per_txn")
        if self.kind == "zipfian" and self.theta < 0:
            raise ScenarioError("zipfian theta must be >= 0")
        if self.kind == "bank" and self.num_accounts < 2:
            raise ScenarioError("bank workload needs at least two accounts")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ScenarioError("hot_fraction must be within [0, 1]")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ScenarioError("read_ratio must be within [0, 1]")
        if self.read_ratio and self.kind not in ("uniform", "zipfian"):
            raise ScenarioError(
                "read_ratio mixes read-only point lookups into the key/value "
                "workloads; it requires kind='uniform' or kind='zipfian'"
            )
        if self.think_time < 0:
            raise ScenarioError("think_time must be >= 0")
        if self.sessions < 0:
            raise ScenarioError("sessions must be >= 0")
        if self.kind == "spanning" and (self.think_time > 0 or self.sessions):
            raise ScenarioError(
                "closed-loop think times drive the transactional store; "
                "kind='spanning' submits explicit payloads and does not support them"
            )
        if self.coordinator is not None and self.kind != "spanning":
            raise ScenarioError("a pinned coordinator requires kind='spanning'")


PROTOCOL_BASELINE = "2pc-paxos"

EXEC_MODES = (
    "serial",  # the classic single-heap engine
    "parallel-shards",  # conservative parallel-DES shard groups
)

#: Latency models whose ``delay`` never consults the RNG.  Only these are
#: eligible for parallel-shards: random draws happen in event-execution
#: order, which differs between the serial and the grouped engine.
DETERMINISTIC_LATENCY_MODELS = ("unit", "fixed", "regions")


@dataclass(frozen=True)
class ExecSpec:
    """How a scenario executes — never *what* it computes.

    ``jobs`` is the Tier-A knob: how many worker processes fan out whole
    runs (sweep grid points, repetitions); 0 means one per core.  ``mode``
    and ``groups`` are the Tier-B knob: ``parallel-shards`` runs one
    simulation on the grouped conservative-DES engine, partitioning the
    shards into ``groups`` weakly-coupled groups.  Execution settings are
    deliberately excluded from result dicts: the same spec must produce
    byte-identical results whatever the execution plan.
    """

    jobs: int = 1
    mode: str = "serial"
    groups: int = 2

    def validate(self) -> None:
        if self.mode not in EXEC_MODES:
            raise ScenarioError(
                f"unknown exec mode {self.mode!r}; expected one of {EXEC_MODES}"
            )
        if self.jobs < 0:
            raise ScenarioError("jobs must be >= 0 (0 = one worker per core)")
        if self.groups < 2:
            raise ScenarioError("parallel-shards needs at least two groups")

    def describe(self) -> str:
        if self.mode == "parallel-shards":
            return f"parallel-shards(groups={self.groups},jobs={self.jobs})"
        return f"serial(jobs={self.jobs})"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible experiment description."""

    name: str
    description: str = ""
    protocol: str = "message-passing"
    num_shards: int = 2
    replicas_per_shard: int = 2
    num_clients: int = 1
    spares_per_shard: int = 2
    isolation: str = "serializability"
    seed: int = 0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    # Which delay distribution the network applies; the default is the
    # paper's unit model (the unit its latency claims are stated in).
    latency: LatencySpec = field(default_factory=LatencySpec)
    # Client-session resilience: timeout-driven re-submission with
    # coordinator failover (off by default — the paper's client model).
    retry: RetrySpec = field(default_factory=RetrySpec)
    # Protocol-level batching of the certification fan-out (off by default —
    # the paper's one-message-per-transaction flow).
    batch: BatchSpec = field(default_factory=BatchSpec)
    # Snapshot-read fast path: lease-guarded MVCC reads served by shard
    # leaders without certification (off by default — every transaction,
    # read-only or not, goes through the certification service).
    read: ReadSpec = field(default_factory=ReadSpec)
    # Heartbeat failure detector driving unsolicited view changes (off by
    # default — failover waits for client retry timeouts, the paper's
    # external-oracle-free model).
    detector: DetectorSpec = field(default_factory=DetectorSpec)
    # Bandwidth/queueing network model plus pipelining and coordinator
    # affinity (off by default — the pure-delay network, with the paper's
    # pipelined commit path).
    network: NetworkSpec = field(default_factory=NetworkSpec)
    faults: Tuple[FaultStep, ...] = ()
    max_events: int = 5_000_000
    # How the recorded history is validated: "online" (default) attaches the
    # incremental checker during the run and flags a violation at the event
    # introducing it; "final" runs the batch TCSChecker at quiescence (its
    # graph construction is quadratic in the transaction count); "off" skips
    # history validation (contradiction detection stays on — it is O(1)).
    check_mode: str = "online"
    check_invariants: bool = True
    # Online-checker garbage collection: prune the linearization graph and
    # conflict indexes behind the decided frontier so memory stays bounded
    # on streaming (unbounded) workloads.  Only meaningful with
    # check_mode="online".
    check_gc: bool = False
    # Correct protocols must produce a safe history; ablation scenarios
    # document the expected violation by setting this to False.
    expect_safe: bool = True
    # Execution plan (process fan-out / parallel-DES engine).  Excluded
    # from result dicts: it decides how the run executes, not what it
    # computes, and every plan must yield byte-identical results.
    execution: ExecSpec = field(default_factory=ExecSpec)

    def validate(self) -> None:
        from repro.cluster import protocol_names  # late: avoid import cycle

        known = protocol_names() + (PROTOCOL_BASELINE,)
        if self.protocol not in known:
            raise ScenarioError(
                f"unknown protocol {self.protocol!r}; expected one of {known}"
            )
        if self.num_shards < 1 or self.replicas_per_shard < 1 or self.num_clients < 1:
            raise ScenarioError(
                "num_shards, replicas_per_shard and num_clients must be >= 1"
            )
        if self.spares_per_shard < 0:
            raise ScenarioError("spares_per_shard must be >= 0")
        if self.max_events < 1:
            raise ScenarioError("max_events must be >= 1")
        if self.check_mode not in CHECK_MODES:
            raise ScenarioError(
                f"unknown check_mode {self.check_mode!r}; expected one of {CHECK_MODES}"
            )
        self.workload.validate()
        self.latency.validate()
        self.retry.validate()
        self.batch.validate()
        self.read.validate()
        self.detector.validate()
        self.network.validate()
        self.execution.validate()
        if self.execution.mode == "parallel-shards":
            if self.latency.model not in DETERMINISTIC_LATENCY_MODELS or self.latency.jitter:
                raise ScenarioError(
                    "parallel-shards requires a deterministic latency model "
                    f"({', '.join(DETERMINISTIC_LATENCY_MODELS)}; no jitter): "
                    "random per-message draws would leave the serial RNG order"
                )
            if self.execution.groups > self.num_shards:
                raise ScenarioError(
                    f"parallel-shards with {self.execution.groups} groups needs "
                    f"at least that many shards (got {self.num_shards})"
                )
        for step in self.faults:
            step.validate()
        if self.protocol == PROTOCOL_BASELINE:
            if self.faults:
                raise ScenarioError(
                    "the 2pc-paxos baseline has no reconfiguration path; "
                    "fault schedules require one of the reconfigurable protocols"
                )
            if self.isolation != "serializability":
                raise ScenarioError("the 2pc-paxos baseline only runs serializability")
            if self.replicas_per_shard % 2 == 0:
                raise ScenarioError(
                    "the 2pc-paxos baseline needs 2f+1 (odd) replicas per shard"
                )

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy of the spec with the given fields replaced (re-validated)."""
        spec = replace(self, **overrides)
        spec.validate()
        return spec

    @property
    def fault_schedule(self) -> Tuple[FaultStep, ...]:
        """Fault steps in execution order (setup steps first, then by time;
        ties broken by declaration order)."""
        indexed = list(enumerate(self.faults))
        return tuple(
            step
            for _, step in sorted(indexed, key=lambda pair: (pair[1].at, pair[0]))
        )
