"""Declarative scenario descriptions.

A :class:`ScenarioSpec` fully determines one simulated experiment: which
protocol to deploy, how large the cluster is, which workload the clients
generate, and which faults strike at which virtual times.  Specs are plain
frozen dataclasses, so a scenario is a value — it can be registered in the
library, tweaked with :meth:`ScenarioSpec.with_overrides`, swept across
protocols, or constructed ad hoc by a benchmark.

Fault targets are *roles* resolved against the live cluster when the step
executes (or at build time for setup steps), not hard-coded process ids:

* ``"leader:shard-1"`` — current leader of ``shard-1``;
* ``"follower:shard-1"`` / ``"follower:shard-1:2"`` — a current follower
  (by index, default 0);
* ``"member:shard-2:0"`` — a configuration member by index;
* ``"config-service"`` — the configuration service process;
* anything else — a literal process id.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


class ScenarioError(ValueError):
    """An invalid scenario description."""


FAULT_ACTIONS = (
    "crash",  # crash the resolved target
    "crash-leader",  # crash the current leader of `shard`
    "crash-follower",  # crash a live follower of `shard`
    "reconfigure",  # initiate reconfiguration of `shard` (global for RDMA)
    "retry-stalled",  # leaders re-drive their prepared-but-undecided slots
    "delay-channel",  # add `delay` extra latency on the channel src -> dst
    "block-channel",  # drop all future messages on the channel src -> dst
    "partition",  # cut the resolved target off from every other process
    "heal",  # remove all partitions/blocks and extra channel delays
)

CHECK_MODES = (
    "off",  # no history validation (contradiction detection stays on)
    "final",  # batch TCSChecker over the full history at quiescence
    "online",  # IncrementalTCSChecker subscribed to the history during the run
)

WORKLOAD_KINDS = (
    "uniform",  # read/write transactions over uniformly random keys
    "zipfian",  # read/write transactions over Zipf-skewed keys
    "bank",  # balance transfers (money-conservation workload)
    "spanning",  # explicit multi-shard payloads, optionally pinned coordinator
)


@dataclass(frozen=True)
class FaultStep:
    """One fault-injection action at virtual time ``at``.

    Steps with ``at <= 0`` are *setup* steps: they are applied while the
    cluster is being built, before any transaction is submitted (the place
    for ``delay-channel`` steps shaping an adversarial schedule).  Steps
    with ``at > 0`` are scheduled on the simulation clock and fire between
    events like any other activity in the system.
    """

    at: float
    action: str
    shard: Optional[str] = None
    target: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    delay: float = 0.0
    suspects: Tuple[str, ...] = ()

    def validate(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ScenarioError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.action in ("crash-leader", "crash-follower", "reconfigure") and not self.shard:
            raise ScenarioError(f"fault action {self.action!r} requires a shard")
        if self.action in ("crash", "partition") and not self.target:
            raise ScenarioError(f"fault action {self.action!r} requires a target")
        if self.action == "block-channel" and (not self.src or not self.dst):
            raise ScenarioError("fault action 'block-channel' requires src and dst")
        if self.action == "delay-channel":
            if not self.src or not self.dst:
                raise ScenarioError("fault action 'delay-channel' requires src and dst")
            if self.delay <= 0:
                raise ScenarioError("fault action 'delay-channel' requires a positive delay")
            if self.at > 0:
                raise ScenarioError(
                    "'delay-channel' must be a setup step (at <= 0): extra latency "
                    "cannot be installed retroactively for in-flight messages"
                )


@dataclass(frozen=True)
class WorkloadSpec:
    """What the clients do.

    ``txns`` transactions are driven in closed-loop batches of ``batch``;
    each batch executes speculatively against the committed store state and
    is certified concurrently (which is where conflicts and aborts arise).

    With ``think_time > 0`` the driver switches to *closed-loop client
    sessions*: ``sessions`` concurrent logical clients (default: ``batch``)
    each keep one transaction in flight and pause for an exponentially
    distributed think time (mean ``think_time``, in message delays) between
    a decision and the next submission — the classic interactive-client
    model, as opposed to the default batch-driven open pressure.
    """

    kind: str = "uniform"
    txns: int = 100
    batch: int = 10
    num_keys: int = 128
    theta: float = 0.9
    reads_per_txn: int = 2
    writes_per_txn: int = 1
    num_accounts: int = 16
    initial_balance: int = 100
    hot_fraction: float = 0.0
    think_time: float = 0.0
    sessions: int = 0  # closed-loop sessions; 0 means `batch`
    coordinator: Optional[str] = None  # role, only for kind="spanning"

    def validate(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ScenarioError(
                f"unknown workload kind {self.kind!r}; expected one of {WORKLOAD_KINDS}"
            )
        if self.txns < 1:
            raise ScenarioError("workload needs at least one transaction")
        if self.batch < 1:
            raise ScenarioError("workload batch size must be >= 1")
        if self.kind in ("uniform", "zipfian"):
            if self.num_keys < 1:
                raise ScenarioError("num_keys must be >= 1")
            if self.writes_per_txn > self.reads_per_txn:
                raise ScenarioError("writes_per_txn must not exceed reads_per_txn")
        if self.kind == "zipfian" and self.theta < 0:
            raise ScenarioError("zipfian theta must be >= 0")
        if self.kind == "bank" and self.num_accounts < 2:
            raise ScenarioError("bank workload needs at least two accounts")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ScenarioError("hot_fraction must be within [0, 1]")
        if self.think_time < 0:
            raise ScenarioError("think_time must be >= 0")
        if self.sessions < 0:
            raise ScenarioError("sessions must be >= 0")
        if self.kind == "spanning" and (self.think_time > 0 or self.sessions):
            raise ScenarioError(
                "closed-loop think times drive the transactional store; "
                "kind='spanning' submits explicit payloads and does not support them"
            )
        if self.coordinator is not None and self.kind != "spanning":
            raise ScenarioError("a pinned coordinator requires kind='spanning'")


PROTOCOL_BASELINE = "2pc-paxos"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible experiment description."""

    name: str
    description: str = ""
    protocol: str = "message-passing"
    num_shards: int = 2
    replicas_per_shard: int = 2
    num_clients: int = 1
    spares_per_shard: int = 2
    isolation: str = "serializability"
    seed: int = 0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: Tuple[FaultStep, ...] = ()
    max_events: int = 5_000_000
    # How the recorded history is validated: "online" (default) attaches the
    # incremental checker during the run and flags a violation at the event
    # introducing it; "final" runs the batch TCSChecker at quiescence (its
    # graph construction is quadratic in the transaction count); "off" skips
    # history validation (contradiction detection stays on — it is O(1)).
    check_mode: str = "online"
    check_invariants: bool = True
    # Correct protocols must produce a safe history; ablation scenarios
    # document the expected violation by setting this to False.
    expect_safe: bool = True

    def validate(self) -> None:
        from repro.cluster import protocol_names  # late: avoid import cycle

        known = protocol_names() + (PROTOCOL_BASELINE,)
        if self.protocol not in known:
            raise ScenarioError(
                f"unknown protocol {self.protocol!r}; expected one of {known}"
            )
        if self.num_shards < 1 or self.replicas_per_shard < 1 or self.num_clients < 1:
            raise ScenarioError(
                "num_shards, replicas_per_shard and num_clients must be >= 1"
            )
        if self.spares_per_shard < 0:
            raise ScenarioError("spares_per_shard must be >= 0")
        if self.max_events < 1:
            raise ScenarioError("max_events must be >= 1")
        if self.check_mode not in CHECK_MODES:
            raise ScenarioError(
                f"unknown check_mode {self.check_mode!r}; expected one of {CHECK_MODES}"
            )
        self.workload.validate()
        for step in self.faults:
            step.validate()
        if self.protocol == PROTOCOL_BASELINE:
            if self.faults:
                raise ScenarioError(
                    "the 2pc-paxos baseline has no reconfiguration path; "
                    "fault schedules require one of the reconfigurable protocols"
                )
            if self.isolation != "serializability":
                raise ScenarioError("the 2pc-paxos baseline only runs serializability")
            if self.replicas_per_shard % 2 == 0:
                raise ScenarioError(
                    "the 2pc-paxos baseline needs 2f+1 (odd) replicas per shard"
                )

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy of the spec with the given fields replaced (re-validated)."""
        spec = replace(self, **overrides)
        spec.validate()
        return spec

    @property
    def fault_schedule(self) -> Tuple[FaultStep, ...]:
        """Fault steps in execution order (setup steps first, then by time;
        ties broken by declaration order)."""
        indexed = list(enumerate(self.faults))
        return tuple(
            step
            for _, step in sorted(indexed, key=lambda pair: (pair[1].at, pair[0]))
        )
