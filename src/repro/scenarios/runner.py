"""The scenario engine: build a cluster, inject faults, drive a workload.

``ScenarioRunner`` is the single driving loop shared by the examples, the
benchmark harness, the CLI and the tests.  It

1. builds the cluster described by a :class:`ScenarioSpec` (any registered
   protocol variant, or the 2PC-over-Paxos baseline);
2. applies setup fault steps (``at <= 0``) and schedules the timed ones on
   the simulation clock, resolving role targets (``"leader:shard-0"``)
   against the live cluster at execution time;
3. drives the workload in closed-loop batches through the transactional
   store (or submits explicit spanning payloads), waiting on decision
   watchers rather than polling the history;
4. drains the simulation and distils a structured :class:`ScenarioResult`
   (throughput, latency, abort rate, message and event counts, safety
   verdict).

Everything is deterministic in the spec's seed: two runs of the same spec
produce identical results (modulo wall-clock time).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.metrics import (
    BatchStats,
    LatencySummary,
    PhaseBreakdown,
    RetryStats,
    collect_link_stats,
    format_table,
    phase_breakdown,
    summarize,
)
from repro.baselines.cluster import BaselineCluster
from repro.cluster import Cluster
from repro.core.serializability import TransactionPayload
from repro.core.types import Decision, Phase
from repro.scenarios.latency import compile_latency_model
from repro.scenarios.spec import (
    PROTOCOL_BASELINE,
    FaultStep,
    ScenarioError,
    ScenarioSpec,
)
from repro.spec.incremental import IncrementalTCSChecker
from repro.spec.invariants import InvariantMonitor, check_invariants
from repro.store.executor import TransactionalStore
from repro.workload.generators import (
    BankWorkload,
    ClosedLoopDriver,
    ReadWriteWorkload,
    UniformKeyGenerator,
    ZipfianKeyGenerator,
)


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario run."""

    scenario: str
    protocol: str
    seed: int
    txns_submitted: int
    committed: int
    aborted: int
    undecided: int
    abort_rate: float
    throughput: float  # committed transactions per 1000 message delays
    duration: float  # virtual time elapsed
    events_fired: int
    messages_sent: int
    messages_delivered: int
    latency: Optional[LatencySummary]
    check_ok: bool
    invariant_violations: int
    contradictions: int
    expect_safe: bool
    check_mode: str = "online"
    check_reason: str = ""  # why the checker failed ("" when it passed)
    latency_model: str = "unit"  # LatencySpec.describe() of the network model
    retry_model: str = "off"  # RetrySpec.describe() of the session policy
    batch_model: str = "off"  # BatchSpec.describe() of the batching policy
    read_model: str = "off"  # ReadSpec.describe() of the snapshot-read policy
    retries: int = 0  # client-session re-submissions
    failovers: int = 0  # re-submissions that switched coordinator
    orphaned: int = 0  # transactions abandoned after max_attempts
    duplicate_requests: int = 0  # duplicate CERTIFYs deduplicated by coordinators
    batches: int = 0  # batch messages flushed by the batching layer
    batched_messages: int = 0  # protocol messages those batches carried
    mean_batch_size: float = 0.0  # batched_messages / batches
    max_batch_size: int = 0  # largest batch observed
    batch_sizes: Dict[int, int] = field(default_factory=dict)  # size -> batch count
    reads_served: int = 0  # snapshot reads answered on the fast path
    read_fallbacks: int = 0  # fast-path reads that fell back to certification
    read_fallback_reasons: Dict[str, int] = field(default_factory=dict)
    read_stale_serves: int = 0  # broken-snapshot mode: reads served stale
    network_model: str = "off"  # NetworkSpec.describe() of the link model
    bytes_sent: float = 0.0  # wire bytes charged to the link (0 when off)
    link_queue_wait_mean: float = 0.0  # mean FIFO queue wait per message
    link_queue_wait_max: float = 0.0  # worst FIFO queue wait observed
    link_busy_time: float = 0.0  # total serialization time across all links
    link_max_depth: int = 0  # deepest per-link FIFO queue observed
    detector_model: str = "off"  # DetectorSpec.describe() of the failure detector
    suspicions: int = 0  # peers newly suspected by any observer
    false_suspicions: int = 0  # suspicions refuted by a later heartbeat
    view_changes: int = 0  # CS_VIEW_CHANGE requests issued by the service
    unsolicited_reconfigurations: int = 0  # reconfigurations the detector started
    pushed_failovers: int = 0  # session failovers driven by CONFIG_CHANGE pushes
    recovery_times: List[float] = field(default_factory=list)  # crash -> next install
    phases: Optional[PhaseBreakdown] = None  # submit/certify/decide split
    faults_executed: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    history_digest: str = ""  # History.digest(): fingerprint of the event sequence

    @property
    def safety_ok(self) -> bool:
        """True when the run produced a correct history (checker passed, no
        invariant violations, no contradictory decisions)."""
        return self.check_ok and self.invariant_violations == 0 and self.contradictions == 0

    @property
    def passed(self) -> bool:
        """The run matched the scenario's safety expectation: correct
        protocols must be safe, ablation scenarios must expose their bug."""
        return self.safety_ok == self.expect_safe

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "txns_submitted": self.txns_submitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "undecided": self.undecided,
            "abort_rate": self.abort_rate,
            "throughput": self.throughput,
            "duration": self.duration,
            "events_fired": self.events_fired,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "latency": self.latency.as_dict() if self.latency else None,
            "latency_model": self.latency_model,
            "retry_model": self.retry_model,
            "batch_model": self.batch_model,
            "retries": self.retries,
            "failovers": self.failovers,
            "orphaned": self.orphaned,
            "duplicate_requests": self.duplicate_requests,
            "batches": self.batches,
            "batched_messages": self.batched_messages,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
            "read_model": self.read_model,
            "reads_served": self.reads_served,
            "read_fallbacks": self.read_fallbacks,
            "read_fallback_reasons": dict(sorted(self.read_fallback_reasons.items())),
            "read_stale_serves": self.read_stale_serves,
            "network_model": self.network_model,
            "bytes_sent": self.bytes_sent,
            "link_queue_wait_mean": self.link_queue_wait_mean,
            "link_queue_wait_max": self.link_queue_wait_max,
            "link_busy_time": self.link_busy_time,
            "link_max_depth": self.link_max_depth,
            "detector_model": self.detector_model,
            "suspicions": self.suspicions,
            "false_suspicions": self.false_suspicions,
            "view_changes": self.view_changes,
            "unsolicited_reconfigurations": self.unsolicited_reconfigurations,
            "pushed_failovers": self.pushed_failovers,
            "recovery_times": list(self.recovery_times),
            "phases": self.phases.as_dict() if self.phases else None,
            "check_ok": self.check_ok,
            "check_mode": self.check_mode,
            "check_reason": self.check_reason,
            "invariant_violations": self.invariant_violations,
            "contradictions": self.contradictions,
            "safety_ok": self.safety_ok,
            "expect_safe": self.expect_safe,
            "passed": self.passed,
            "faults_executed": list(self.faults_executed),
            "history_digest": self.history_digest,
        }

    def render(self) -> str:
        rows = [
            ("protocol", self.protocol),
            ("transactions", f"{self.committed} committed / {self.aborted} aborted"
                             + (f" / {self.undecided} undecided" if self.undecided else "")),
            ("abort rate", f"{self.abort_rate:.3f}"),
            ("throughput", f"{self.throughput:.1f} committed txns / 1000 delays"),
            ("virtual duration", f"{self.duration:.1f} delays"),
            ("events fired", self.events_fired),
            ("messages", f"{self.messages_sent} sent / {self.messages_delivered} delivered"),
        ]
        if self.latency_model != "unit":
            rows.append(("latency model", self.latency_model))
        if self.retry_model != "off":
            rows.append(("retry policy", self.retry_model))
            rows.append(
                ("client retries",
                 f"{self.retries} retries / {self.failovers} failovers / "
                 f"{self.orphaned} orphaned / {self.duplicate_requests} dups deduped"),
            )
        if self.batch_model != "off":
            rows.append(("batch policy", self.batch_model))
            rows.append(
                ("batching",
                 f"{self.batches} batches / {self.batched_messages} messages / "
                 f"mean {self.mean_batch_size:.2f} / max {self.max_batch_size}"),
            )
        if self.read_model != "off":
            rows.append(("read policy", self.read_model))
            detail = (
                f"{self.reads_served} served / {self.read_fallbacks} fallbacks"
            )
            if self.read_fallback_reasons:
                reasons = ", ".join(
                    f"{reason}: {count}"
                    for reason, count in sorted(self.read_fallback_reasons.items())
                )
                detail += f" ({reasons})"
            if self.read_stale_serves:
                detail += f" / {self.read_stale_serves} STALE"
            rows.append(("snapshot reads", detail))
        if self.network_model != "off":
            rows.append(("network model", self.network_model))
            rows.append(
                ("link",
                 f"{self.bytes_sent:.0f} bytes / busy {self.link_busy_time:.1f} / "
                 f"queue wait mean {self.link_queue_wait_mean:.2f} "
                 f"max {self.link_queue_wait_max:.2f} / depth {self.link_max_depth}"),
            )
        if self.detector_model != "off":
            rows.append(("failure detector", self.detector_model))
            rows.append(
                ("detector",
                 f"{self.suspicions} suspicions / {self.false_suspicions} false / "
                 f"{self.view_changes} view changes / "
                 f"{self.unsolicited_reconfigurations} unsolicited reconfigs / "
                 f"{self.pushed_failovers} pushed failovers"),
            )
        if self.recovery_times:
            ttr = ", ".join(f"{t:.1f}" for t in self.recovery_times)
            rows.append(("time to recovery", f"{ttr} delays (crash -> install)"))
        if self.latency is not None:
            rows.append(
                ("client latency", f"mean {self.latency.mean:.2f} / p99 {self.latency.p99:.2f} delays")
            )
        if self.phases is not None:
            for label, summary in (
                ("submit -> certify", self.phases.submit_to_certify),
                ("queue wait", self.phases.queue_wait),
                ("certify -> decide", self.phases.certify_to_decide),
                ("decide -> client", self.phases.decide_to_client),
            ):
                if summary is None:
                    continue
                if label == "queue wait" and summary.maximum == 0.0:
                    continue  # all-zero queueing (unbatched / adaptive) is noise
                rows.append(
                    (f"phase {label}", f"mean {summary.mean:.2f} / p99 {summary.p99:.2f} delays")
                )
        verdict = "SAFE" if self.safety_ok else "UNSAFE"
        expectation = "as expected" if self.passed else "UNEXPECTED"
        rows.append(("safety", f"{verdict} ({expectation}, check_mode={self.check_mode})"))
        if self.check_reason:
            rows.append(("violation", self.check_reason))
        for note in self.faults_executed:
            rows.append(("fault", note))
        body = format_table(["metric", "value"], rows)
        return f"=== scenario: {self.scenario} ===\n{body}"


class ScenarioRunner:
    """Builds and drives one scenario; see the module docstring."""

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec
        self.cluster: Any = None
        self.store: Optional[TransactionalStore] = None
        self.faults_executed: List[str] = []
        self._crashed: List[str] = []
        # (virtual time, shard) of every crash this runner injected, matched
        # against the configuration service's install log to compute
        # time-to-recovery (crash -> next configuration install).
        self._crash_times: List[Tuple[float, Optional[str]]] = []
        # Online validation: attached to the history while the run executes.
        self.checker: Optional[IncrementalTCSChecker] = None
        self.monitor: Optional[InvariantMonitor] = None

    # ------------------------------------------------------------------
    # construction and fault wiring
    # ------------------------------------------------------------------
    def build(self) -> Any:
        """Construct the cluster and arm the fault schedule (idempotent)."""
        if self.cluster is not None:
            return self.cluster
        spec = self.spec
        latency = compile_latency_model(spec.latency)
        retry = spec.retry.compile()
        batch = spec.batch.compile()
        read = spec.read.compile()
        detector = spec.detector.compile()
        link = spec.network.compile()
        # Tier-B engine selection: groups > 0 builds the cluster on the
        # conservative parallel-DES scheduler (byte-identical results).
        groups = spec.execution.groups if spec.execution.mode == "parallel-shards" else 0
        if spec.protocol == PROTOCOL_BASELINE:
            self.cluster = BaselineCluster(
                num_shards=spec.num_shards,
                failures_tolerated=(spec.replicas_per_shard - 1) // 2,
                num_clients=spec.num_clients,
                latency=latency,
                seed=spec.seed,
                retry=retry,
                batch=batch,
                groups=groups,
                read=read,
                detector=detector,
                link=link,
                pipeline=spec.network.pipeline,
                sticky=spec.network.sticky,
            )
        else:
            self.cluster = Cluster(
                num_shards=spec.num_shards,
                replicas_per_shard=spec.replicas_per_shard,
                num_clients=spec.num_clients,
                protocol=spec.protocol,
                isolation=spec.isolation,
                latency=latency,
                seed=spec.seed,
                spares_per_shard=spec.spares_per_shard,
                retry=retry,
                batch=batch,
                groups=groups,
                read=read,
                detector=detector,
                link=link,
                pipeline=spec.network.pipeline,
                sticky=spec.network.sticky,
            )
        if spec.check_mode == "online":
            self.checker = IncrementalTCSChecker(
                self.cluster.scheme, self.cluster.history, gc=spec.check_gc
            )
            if spec.check_invariants and spec.protocol != PROTOCOL_BASELINE:
                self.monitor = InvariantMonitor(self.cluster.history)
        for step in spec.fault_schedule:
            if step.at <= 0:
                self._execute_fault(step)
            else:
                self.cluster.scheduler.schedule_at(step.at, self._execute_fault, step)
        return self.cluster

    def resolve(self, role: Optional[str]) -> Optional[str]:
        """Resolve a role description to a process id (see spec module)."""
        if role is None:
            return None
        cluster = self.cluster
        if role == "config-service":
            return cluster.config_service.pid
        kind, _, rest = role.partition(":")
        if kind in ("leader", "follower", "member") and rest:
            shard, _, index_text = rest.partition(":")
            index = int(index_text) if index_text else 0
            if kind == "leader":
                return cluster.leader_of(shard)
            if kind == "follower":
                followers = cluster.followers_of(shard)
                if not followers:
                    raise ScenarioError(
                        f"role {role!r}: shard {shard!r} has no followers"
                    )
                return followers[index % len(followers)]
            members = cluster.members_of(shard)
            if not members:
                raise ScenarioError(f"role {role!r}: shard {shard!r} has no members")
            return members[index % len(members)]
        return role

    def _note_fault(self, text: str) -> None:
        self.faults_executed.append(f"t={self.cluster.scheduler.now:g}: {text}")

    def _execute_fault(self, step: FaultStep) -> None:
        cluster = self.cluster
        if step.action == "crash":
            pid = self.resolve(step.target)
            cluster.crash(pid)
            self._crashed.append(pid)
            self._note_crash(pid)
            self._note_fault(f"crash {pid}")
        elif step.action == "crash-leader":
            pid = cluster.crash_leader(step.shard)
            self._crashed.append(pid)
            self._note_crash(pid, step.shard)
            self._note_fault(f"crash leader {pid} of {step.shard}")
        elif step.action == "crash-follower":
            pid = cluster.crash_follower(step.shard)
            self._crashed.append(pid)
            self._note_crash(pid, step.shard)
            self._note_fault(f"crash follower {pid} of {step.shard}")
        elif step.action == "reconfigure":
            initiator = self.resolve(step.target)
            suspects = [self.resolve(role) for role in step.suspects]
            if not suspects:
                # Default suspicion: everything this runner crashed so far.
                suspects = list(self._crashed)
            cluster.reconfigure(
                step.shard, initiator=initiator, run=False, suspects=suspects
            )
            self._note_fault(f"reconfigure {step.shard} (suspects: {suspects or 'none'})")
        elif step.action == "retry-stalled":
            retried = self._retry_stalled(self.resolve(step.target))
            self._note_fault(f"retry {retried} stalled slot(s)")
        elif step.action == "delay-channel":
            src, dst = self.resolve(step.src), self.resolve(step.dst)
            cluster.network.add_extra_delay(src, dst, step.delay)
            self._note_fault(f"delay {src} -> {dst} by {step.delay:g}")
        elif step.action == "block-channel":
            src, dst = self.resolve(step.src), self.resolve(step.dst)
            cluster.network.block(src, dst)
            self._note_fault(f"block {src} -> {dst}")
        elif step.action == "partition":
            pid = self.resolve(step.target)
            others = [p for p in cluster.network.processes if p != pid]
            cluster.network.partition([pid], others)
            self._note_fault(f"partition {pid}")
        elif step.action == "heal":
            cluster.network.heal()
            cluster.network.clear_extra_delays()
            self._note_fault("heal all channels")
        else:  # pragma: no cover - spec.validate() rejects unknown actions
            raise ScenarioError(f"unknown fault action {step.action!r}")

    def _note_crash(self, pid: str, shard: Optional[str] = None) -> None:
        """Record a crash for time-to-recovery accounting."""
        if shard is None:
            replica = getattr(self.cluster, "replicas", {}).get(pid)
            shard = getattr(replica, "shard", None)
        self._crash_times.append((self.cluster.scheduler.now, shard))

    def _recovery_times(self) -> List[float]:
        """Crash-to-install delays: for every injected crash, the time until
        the configuration service installed the next configuration of the
        crashed process's shard (empty when no recovery happened — or no
        configuration service exists, as in the baseline)."""
        service = getattr(self.cluster, "config_service", None)
        log = getattr(service, "install_log", ())
        times: List[float] = []
        for crashed_at, shard in self._crash_times:
            for installed_at, installed_shard, _epoch in log:
                if installed_at > crashed_at and (
                    shard is None or installed_shard == shard
                ):
                    times.append(installed_at - crashed_at)
                    break
        return times

    def _retry_stalled(self, target: Optional[str]) -> int:
        """Re-drive prepared-but-undecided slots through their leaders (the
        paper's coordinator-recovery path, lines 70-73)."""
        if target is not None:
            replicas = [self.cluster.replicas[target]]
        else:
            replicas = [
                replica
                for replica in self.cluster.replicas.values()
                if replica.is_leader and not replica.crashed
            ]
        retried = 0
        for replica in replicas:
            for slot, phase in sorted(replica.phase_arr.items()):
                if phase is Phase.PREPARED:
                    if replica.retry(slot) is not None:
                        retried += 1
        return retried

    # ------------------------------------------------------------------
    # workload driving
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Build (if needed), drive the workload, drain, and summarise."""
        spec = self.spec
        cluster = self.build()
        wall_start = _time.perf_counter()
        start_time = cluster.scheduler.now
        if spec.workload.kind == "spanning":
            self._drive_spanning()
        else:
            self._drive_store()
        # Drain everything still in flight: trailing decision deliveries,
        # scheduled faults, reconfigurations and their recovery traffic.
        cluster.run(max_events=spec.max_events)
        wall = _time.perf_counter() - wall_start
        return self._collect(start_time, wall)

    def _drive_store(self) -> None:
        spec = self.spec
        workload = spec.workload
        if workload.kind == "bank":
            bank = BankWorkload(
                num_accounts=workload.num_accounts,
                initial_balance=workload.initial_balance,
                seed=spec.seed,
                hot_fraction=workload.hot_fraction,
            )
            self.store = TransactionalStore(self.cluster, initial=bank.initial_state())
            self.cluster.seed_read_stores(bank.initial_state())
            bodies = bank.batch(workload.txns)
        else:
            if workload.kind == "zipfian":
                keys = ZipfianKeyGenerator(
                    num_keys=workload.num_keys, theta=workload.theta, seed=spec.seed
                )
            else:
                keys = UniformKeyGenerator(num_keys=workload.num_keys, seed=spec.seed)
            generator = ReadWriteWorkload(
                keys,
                reads_per_txn=workload.reads_per_txn,
                writes_per_txn=workload.writes_per_txn,
                seed=spec.seed,
                read_ratio=workload.read_ratio,
            )
            initial = {f"key-{i}": 0 for i in range(workload.num_keys)}
            self.store = TransactionalStore(self.cluster, initial=initial)
            self.cluster.seed_read_stores(initial)
            txn_specs = generator.batch(workload.txns)
            if workload.read_ratio > 0 and workload.think_time <= 0:
                # Mixed waves: read-only transactions take the snapshot-read
                # fast path (when the cluster runs one), everything else is
                # certified.  Each wave executes against the same committed
                # snapshot, exactly like run_batch.
                self._drive_mixed(txn_specs)
                return
            bodies = [spec_.body() for spec_ in txn_specs]
        if workload.think_time > 0:
            ClosedLoopDriver(
                self.store,
                bodies,
                sessions=workload.sessions or workload.batch,
                think_time=workload.think_time,
                seed=spec.seed,
            ).run(max_events=spec.max_events)
        else:
            for offset in range(0, len(bodies), workload.batch):
                self.store.run_batch(bodies[offset : offset + workload.batch])

    def _drive_mixed(self, txn_specs) -> None:
        """Closed-loop waves of a read/write mix: writes go through the
        certified path, read-only specs through :meth:`submit_read_async`
        (which itself falls back to certification when the cluster has no
        fast path or the read spans shards)."""
        spec = self.spec
        batch = spec.workload.batch
        for offset in range(0, len(txn_specs), batch):
            txns = []
            for txn_spec in txn_specs[offset : offset + batch]:
                if txn_spec.writes:
                    txns.append(self.store.submit_async(txn_spec.body()))
                else:
                    txns.append(self.store.submit_read_async(txn_spec.reads))
            self.cluster.run_until_decided(txns, max_events=spec.max_events)

    def _drive_spanning(self) -> None:
        spec = self.spec
        workload = spec.workload
        coordinator = self.resolve(workload.coordinator)
        payloads = [
            self._spanning_payload(index) for index in range(workload.txns)
        ]
        for offset in range(0, len(payloads), workload.batch):
            txns = [
                self.cluster.submit(payload, coordinator=coordinator)
                for payload in payloads[offset : offset + workload.batch]
            ]
            self.cluster.run_until_decided(txns, max_events=spec.max_events)

    def _spanning_payload(self, index: int) -> TransactionPayload:
        """A payload touching one key on each of two adjacent shards."""
        shards = self.cluster.shards
        first = shards[index % len(shards)]
        second = shards[(index + 1) % len(shards)]
        keys = [
            self._key_on_shard(first, f"span{index}a"),
            self._key_on_shard(second, f"span{index}b"),
        ]
        return TransactionPayload.make(
            reads=[(key, (0, "")) for key in keys],
            writes=[(key, index) for key in keys],
            tiebreak=f"span{index}",
        )

    def _key_on_shard(self, shard: str, hint: str) -> str:
        return self.cluster.scheme.sharding.key_for_shard(shard, hint=hint)

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------
    def _collect(self, start_time: float, wall: float) -> ScenarioResult:
        spec = self.spec
        cluster = self.cluster
        history = cluster.history
        decided = history.decided()
        submitted = len(history.certified())
        committed = sum(1 for d in decided.values() if d is Decision.COMMIT)
        aborted = sum(1 for d in decided.values() if d is Decision.ABORT)
        undecided = submitted - len(decided)
        duration = max(cluster.scheduler.now - start_time, 1e-9)
        latencies = cluster.client_latencies()
        check_ok, check_reason, violations = self._verdict()
        stats = cluster.message_stats
        retry_stats: RetryStats = cluster.retry_stats()
        batch_stats: BatchStats = cluster.batch_stats()
        read_stats: Dict[str, Any] = (
            cluster.read_stats() if hasattr(cluster, "read_stats") else {}
        )
        detector_stats: Dict[str, Any] = (
            cluster.detector_stats() if hasattr(cluster, "detector_stats") else {}
        )
        link_stats = collect_link_stats(cluster.network)
        return ScenarioResult(
            scenario=spec.name,
            protocol=spec.protocol,
            seed=spec.seed,
            txns_submitted=submitted,
            committed=committed,
            aborted=aborted,
            undecided=undecided,
            abort_rate=(aborted / len(decided)) if decided else 0.0,
            throughput=committed / duration * 1000.0,
            duration=cluster.scheduler.now - start_time,
            events_fired=cluster.scheduler.events_fired,
            messages_sent=stats.total_sent,
            messages_delivered=stats.total_delivered,
            latency=summarize(latencies) if latencies else None,
            latency_model=spec.latency.describe(),
            retry_model=spec.retry.describe(),
            batch_model=spec.batch.describe(),
            retries=retry_stats.retries,
            failovers=retry_stats.failovers,
            orphaned=retry_stats.orphaned,
            duplicate_requests=retry_stats.duplicate_requests,
            batches=batch_stats.batches,
            batched_messages=batch_stats.messages,
            mean_batch_size=batch_stats.mean_size,
            max_batch_size=batch_stats.max_size,
            batch_sizes=dict(batch_stats.sizes),
            read_model=spec.read.describe(),
            reads_served=read_stats.get("reads_served", 0),
            read_fallbacks=read_stats.get("read_fallbacks", 0),
            read_fallback_reasons=dict(read_stats.get("fallback_reasons", {})),
            read_stale_serves=read_stats.get("stale_serves", 0),
            network_model=spec.network.describe(),
            bytes_sent=link_stats.bytes_sent if link_stats else 0.0,
            link_queue_wait_mean=(
                link_stats.queue_wait.mean
                if link_stats and link_stats.queue_wait
                else 0.0
            ),
            link_queue_wait_max=(
                link_stats.queue_wait.maximum
                if link_stats and link_stats.queue_wait
                else 0.0
            ),
            link_busy_time=link_stats.busy_time if link_stats else 0.0,
            link_max_depth=link_stats.max_depth if link_stats else 0,
            detector_model=spec.detector.describe(),
            suspicions=detector_stats.get("suspicions", 0),
            false_suspicions=detector_stats.get("false_suspicions", 0),
            view_changes=detector_stats.get("view_changes", 0),
            unsolicited_reconfigurations=detector_stats.get(
                "unsolicited_reconfigurations", 0
            ),
            pushed_failovers=retry_stats.pushed_failovers,
            recovery_times=self._recovery_times(),
            phases=phase_breakdown(cluster.phase_samples()),
            check_ok=check_ok,
            invariant_violations=len(violations),
            contradictions=len(history.contradictions),
            expect_safe=spec.expect_safe,
            check_mode=spec.check_mode,
            check_reason=check_reason,
            faults_executed=list(self.faults_executed),
            wall_seconds=wall,
            history_digest=history.digest(),
        )

    def _verdict(self) -> Tuple[bool, str, List[Any]]:
        """The safety verdict under the spec's ``check_mode``."""
        spec = self.spec
        cluster = self.cluster
        if spec.check_mode == "off":
            return True, "", []
        if spec.check_mode == "online":
            check = self.checker.result()
            violations: List[Any] = []
            if spec.protocol != PROTOCOL_BASELINE and spec.check_invariants:
                violations = check_invariants(
                    cluster.member_replicas_by_shard(), monitor=self.monitor
                )
            return check.ok, check.reason, violations
        if spec.protocol == PROTOCOL_BASELINE:
            check, violations = cluster.check()
        else:
            check, violations = cluster.check(include_invariants=spec.check_invariants)
        return check.ok, check.reason, violations


def run_scenario(spec: ScenarioSpec, **overrides) -> ScenarioResult:
    """Run one scenario (optionally overriding spec fields first)."""
    if overrides:
        spec = spec.with_overrides(**overrides)
    return ScenarioRunner(spec).run()


def run_sweep(
    spec: ScenarioSpec, protocols: Tuple[str, ...], jobs: int = 1
) -> Dict[str, ScenarioResult]:
    """Run the same scenario under several protocols (same seed/workload);
    with ``jobs > 1`` the protocols fan out over a process pool."""
    from repro.scenarios.executor import run_protocols  # late: avoid cycle

    return run_protocols(spec, protocols, jobs=jobs)
