"""Sweep drivers: one scenario across a grid of latency or batching points.

A *sweep* runs the same :class:`~repro.scenarios.spec.ScenarioSpec` (same
workload, faults and seed) once per grid point and collects the results
into a curve:

* a **latency sweep** varies the :class:`LatencySpec`; because the
  per-phase breakdown (submit -> certify -> decide) rides along on every
  :class:`~repro.scenarios.runner.ScenarioResult`, the curve separates
  protocol cost (the certify -> decide phase, measured in critical-path
  message delays) from network cost (the request/response phases, which
  scale directly with the link-delay distribution);
* a **batch sweep** varies the :class:`BatchSpec`, rendering batch size
  against throughput, latency, messages sent and the observed mean batch
  size — the knob-tuning view for the protocol-level batching pipeline;
* a **read-ratio sweep** varies ``workload.read_ratio``, rendering the
  read mix against throughput, latency and fast-path hit counts — the
  evaluation view for the snapshot-read fast path (run it once with
  ``read.mode='snapshot'`` and once without for the crossover);
* a **detector sweep** varies the :class:`DetectorSpec` (heartbeat
  interval x suspicion threshold), rendering each policy against
  suspicions, false positives, pushed failovers and time-to-recovery —
  the tuning view for the failure detector's speed/accuracy tradeoff;
* a **bandwidth sweep** varies the :class:`NetworkSpec` (link capacity,
  per-message overhead, commit-path toggles), rendering each link model
  against throughput, latency, bytes on the wire and FIFO queueing — the
  evaluation view for the bandwidth-aware network layer (batches stop
  being free once serialization time is charged).

Used by ``python -m repro.scenarios sweep <scenario> --latency ... /
--batch ... / --read-ratio ... / --detector ... / --bandwidth ...`` and
importable directly::

    from repro.scenarios.sweep import DEFAULT_GRID, run_latency_sweep
    curve = run_latency_sweep(get_scenario("steady-state"))
    print(curve.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.analysis.metrics import format_table
from repro.scenarios.latency import parse_latency
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.scenarios.spec import (
    LATENCY_MODELS,
    BatchSpec,
    DetectorSpec,
    LatencySpec,
    NetworkSpec,
    ScenarioError,
    ScenarioSpec,
)


# The stock grid: the paper's unit model, bounded jitter around one delay,
# a heavy tail, and a memoryless network — same mean (one delay) for the
# three random models, so differences come from distribution shape alone.
# Listed in canonical grid order (see sort_latency_grid).
DEFAULT_GRID: Tuple[LatencySpec, ...] = (
    LatencySpec(model="unit"),
    LatencySpec(model="uniform", low=0.5, high=1.5),
    LatencySpec(model="lognormal", mean=1.0, sigma=0.8),
    LatencySpec(model="exponential", mean=1.0),
)


def sort_latency_grid(grid: Sequence[LatencySpec]) -> Tuple[LatencySpec, ...]:
    """Canonical grid order: model rank (the :data:`LATENCY_MODELS` listing
    order), then the point's canonical parameter label.  Sweeps sort their
    grid on entry so the output row order — and therefore every derived
    artifact (curves, JSON, diffs) — depends only on the *set* of points
    requested, not on the order flags appeared on the command line."""
    return tuple(
        sorted(grid, key=lambda p: (LATENCY_MODELS.index(p.model), p.describe()))
    )


def sort_batch_grid(grid: Sequence[BatchSpec]) -> Tuple[BatchSpec, ...]:
    """Canonical batch-grid order: by (size, linger, adaptive) — the
    unbatched baseline first, then growing size caps."""
    return tuple(sorted(grid, key=lambda p: (p.size, p.linger, p.adaptive)))


def parse_grid(texts: Iterable[str]) -> Tuple[LatencySpec, ...]:
    """Parse CLI latency points; the single word ``default`` expands to
    :data:`DEFAULT_GRID`."""
    grid: List[LatencySpec] = []
    for text in texts:
        if text.strip() == "default":
            grid.extend(DEFAULT_GRID)
        else:
            grid.append(parse_latency(text))
    return tuple(grid)


@dataclass
class LatencySweepResult:
    """One scenario's results across a latency grid, in grid order."""

    scenario: str
    protocol: str
    seed: int
    points: List[Tuple[str, ScenarioResult]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for _, result in self.points)

    def result_for(self, label: str) -> ScenarioResult:
        for point_label, result in self.points:
            if point_label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r}")

    def curve(self) -> List[Dict[str, Any]]:
        """The latency-vs-throughput curve: one row per grid point.  A point
        with no client-observed decisions reports null latencies (a 0.0
        would read as the best point on the curve)."""
        rows = []
        for label, result in self.points:
            rows.append(
                {
                    "latency_model": label,
                    "throughput": result.throughput,
                    "mean_latency": result.latency.mean if result.latency else None,
                    "p99_latency": result.latency.p99 if result.latency else None,
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "passed": self.passed,
            "curve": self.curve(),
            "points": [
                {"latency_model": label, "result": result.as_dict()}
                for label, result in self.points
            ],
        }

    def render(self) -> str:
        headers = [
            "latency model",
            "committed",
            "abort",
            "tput/1k",
            "lat mean",
            "lat p99",
            "submit>cert",
            "cert>decide",
            "decide>client",
        ]
        def _mean(summary) -> str:
            return f"{summary.mean:.2f}" if summary is not None else "-"

        rows = []
        for label, result in self.points:
            phases = result.phases
            rows.append(
                [
                    label,
                    result.committed,
                    f"{result.abort_rate:.3f}",
                    f"{result.throughput:.1f}",
                    f"{result.latency.mean:.2f}" if result.latency else "-",
                    f"{result.latency.p99:.2f}" if result.latency else "-",
                    _mean(phases.submit_to_certify) if phases else "-",
                    _mean(phases.certify_to_decide) if phases else "-",
                    _mean(phases.decide_to_client) if phases else "-",
                ]
            )
        body = format_table(headers, rows)
        verdict = "all safe" if self.passed else "FAILED"
        return (
            f"=== latency sweep: {self.scenario} ({self.protocol}, seed {self.seed}) "
            f"— {verdict} ===\n{body}"
        )


def run_latency_sweep(
    spec: ScenarioSpec,
    grid: Sequence[LatencySpec] = DEFAULT_GRID,
    jobs: int = 1,
    **overrides: Any,
) -> LatencySweepResult:
    """Run ``spec`` once per latency point (optionally overriding spec
    fields first); every point reuses the spec's seed, workload and faults,
    so the curve isolates the effect of the delay distribution.

    The grid is sorted canonically (:func:`sort_latency_grid`), and with
    ``jobs > 1`` the points fan out over a process pool — the sweep result
    is byte-identical for any ``jobs`` value.
    """
    if overrides:
        spec = spec.with_overrides(**overrides)
    from repro.scenarios.executor import run_latency_points

    sweep = LatencySweepResult(
        scenario=spec.name, protocol=spec.protocol, seed=spec.seed
    )
    sweep.points.extend(run_latency_points(spec, sort_latency_grid(grid), jobs=jobs))
    return sweep


# ----------------------------------------------------------------------
# batch sweeps
# ----------------------------------------------------------------------

# The stock batch grid: the unbatched baseline plus doubling adaptive size
# caps, so the curve shows where coalescing saturates for the workload.
DEFAULT_BATCH_GRID: Tuple[BatchSpec, ...] = (
    BatchSpec(),
    BatchSpec(size=4),
    BatchSpec(size=8),
    BatchSpec(size=16),
    BatchSpec(size=32),
)


def parse_batch(text: str) -> BatchSpec:
    """Parse one CLI batch point: ``off``, a size (``32``), or a size with
    ``k=v`` parameters (``32:linger=2`` — a linger implies a time-cap,
    i.e. non-adaptive, policy unless ``adaptive=true`` is forced)."""
    text = text.strip()
    if text == "off":
        return BatchSpec()
    head, _, params_text = text.partition(":")
    try:
        size = int(head)
    except ValueError:
        raise ScenarioError(
            f"invalid batch point {text!r}: expected 'off' or SIZE[:k=v,...]"
        ) from None
    fields: Dict[str, Any] = {"size": size}
    for pair in filter(None, (p.strip() for p in params_text.split(","))):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ScenarioError(f"invalid batch parameter {pair!r}: expected k=v")
        if key == "linger":
            try:
                fields["linger"] = float(value)
            except ValueError:
                raise ScenarioError(f"invalid linger value {value!r}") from None
            fields.setdefault("adaptive", False)
        elif key == "adaptive":
            if value not in ("true", "false"):
                raise ScenarioError("adaptive must be 'true' or 'false'")
            fields["adaptive"] = value == "true"
        else:
            raise ScenarioError(
                f"unknown batch parameter {key!r}; expected linger or adaptive"
            )
    spec = BatchSpec(**fields)
    spec.validate()
    return spec


def parse_batch_grid(texts: Iterable[str]) -> Tuple[BatchSpec, ...]:
    """Parse CLI batch points; the single word ``default`` expands to
    :data:`DEFAULT_BATCH_GRID`."""
    grid: List[BatchSpec] = []
    for text in texts:
        if text.strip() == "default":
            grid.extend(DEFAULT_BATCH_GRID)
        else:
            grid.append(parse_batch(text))
    return tuple(grid)


@dataclass
class BatchSweepResult:
    """One scenario's results across a batch-policy grid, in grid order."""

    scenario: str
    protocol: str
    seed: int
    points: List[Tuple[str, ScenarioResult]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for _, result in self.points)

    def result_for(self, label: str) -> ScenarioResult:
        for point_label, result in self.points:
            if point_label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r}")

    def curve(self) -> List[Dict[str, Any]]:
        """Batch size vs throughput/latency/messages: one row per point."""
        rows = []
        for label, result in self.points:
            rows.append(
                {
                    "batch_model": label,
                    "throughput": result.throughput,
                    "mean_latency": result.latency.mean if result.latency else None,
                    "p99_latency": result.latency.p99 if result.latency else None,
                    "messages_sent": result.messages_sent,
                    "mean_batch_size": result.mean_batch_size,
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "passed": self.passed,
            "curve": self.curve(),
            "points": [
                {"batch_model": label, "result": result.as_dict()}
                for label, result in self.points
            ],
        }

    def render(self) -> str:
        headers = [
            "batch policy",
            "committed",
            "tput/1k",
            "lat mean",
            "lat p99",
            "queue wait",
            "messages",
            "batches",
            "mean size",
        ]
        rows = []
        for label, result in self.points:
            queue = result.phases.queue_wait if result.phases else None
            rows.append(
                [
                    label,
                    result.committed,
                    f"{result.throughput:.1f}",
                    f"{result.latency.mean:.2f}" if result.latency else "-",
                    f"{result.latency.p99:.2f}" if result.latency else "-",
                    f"{queue.mean:.2f}" if queue is not None else "-",
                    result.messages_sent,
                    result.batches,
                    f"{result.mean_batch_size:.2f}" if result.batches else "-",
                ]
            )
        body = format_table(headers, rows)
        verdict = "all safe" if self.passed else "FAILED"
        return (
            f"=== batch sweep: {self.scenario} ({self.protocol}, seed {self.seed}) "
            f"— {verdict} ===\n{body}"
        )


# ----------------------------------------------------------------------
# read-ratio sweeps
# ----------------------------------------------------------------------

# The stock read-ratio grid: write-only through read-dominated, the YCSB
# spread the snapshot-read fast path is evaluated on.
DEFAULT_READ_RATIO_GRID: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9)


def parse_read_ratio_grid(texts: Iterable[str]) -> Tuple[float, ...]:
    """Parse CLI read-ratio points; the single word ``default`` expands to
    :data:`DEFAULT_READ_RATIO_GRID`."""
    grid: List[float] = []
    for text in texts:
        text = text.strip()
        if text == "default":
            grid.extend(DEFAULT_READ_RATIO_GRID)
            continue
        try:
            ratio = float(text)
        except ValueError:
            raise ScenarioError(
                f"invalid read-ratio point {text!r}: expected a float in [0, 1]"
            ) from None
        if not 0.0 <= ratio <= 1.0:
            raise ScenarioError(f"read-ratio point {ratio:g} must be within [0, 1]")
        grid.append(ratio)
    return tuple(grid)


def sort_read_ratio_grid(grid: Sequence[float]) -> Tuple[float, ...]:
    """Canonical read-ratio grid order: ascending, duplicates dropped."""
    return tuple(sorted(set(grid)))


@dataclass
class ReadRatioSweepResult:
    """One scenario's results across a read-ratio grid, in grid order."""

    scenario: str
    protocol: str
    seed: int
    read_model: str = "off"
    points: List[Tuple[str, ScenarioResult]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for _, result in self.points)

    def result_for(self, label: str) -> ScenarioResult:
        for point_label, result in self.points:
            if point_label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r}")

    def curve(self) -> List[Dict[str, Any]]:
        """Read ratio vs throughput/latency/fast-path hit rate."""
        rows = []
        for label, result in self.points:
            rows.append(
                {
                    "read_ratio": float(label),
                    "throughput": result.throughput,
                    "mean_latency": result.latency.mean if result.latency else None,
                    "p99_latency": result.latency.p99 if result.latency else None,
                    "reads_served": result.reads_served,
                    "read_fallbacks": result.read_fallbacks,
                    "messages_sent": result.messages_sent,
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "read_model": self.read_model,
            "passed": self.passed,
            "curve": self.curve(),
            "points": [
                {"read_ratio": float(label), "result": result.as_dict()}
                for label, result in self.points
            ],
        }

    def render(self) -> str:
        headers = [
            "read ratio",
            "committed",
            "abort",
            "tput/1k",
            "lat mean",
            "lat p99",
            "fast reads",
            "fallbacks",
            "messages",
        ]
        rows = []
        for label, result in self.points:
            rows.append(
                [
                    label,
                    result.committed,
                    f"{result.abort_rate:.3f}",
                    f"{result.throughput:.1f}",
                    f"{result.latency.mean:.2f}" if result.latency else "-",
                    f"{result.latency.p99:.2f}" if result.latency else "-",
                    result.reads_served,
                    result.read_fallbacks,
                    result.messages_sent,
                ]
            )
        body = format_table(headers, rows)
        verdict = "all safe" if self.passed else "FAILED"
        return (
            f"=== read-ratio sweep: {self.scenario} ({self.protocol}, "
            f"read={self.read_model}, seed {self.seed}) — {verdict} ===\n{body}"
        )


def run_read_ratio_sweep(
    spec: ScenarioSpec,
    grid: Sequence[float] = DEFAULT_READ_RATIO_GRID,
    jobs: int = 1,
    **overrides: Any,
) -> ReadRatioSweepResult:
    """Run ``spec`` once per read-ratio point (optionally overriding spec
    fields first); every point reuses the spec's seed, latency model, read
    policy and faults, so the curve isolates the effect of the read mix —
    and, when the spec enables ``read.mode='snapshot'``, of the fast path
    serving it.

    The grid is sorted canonically (:func:`sort_read_ratio_grid`), and with
    ``jobs > 1`` the points fan out over a process pool — the sweep result
    is byte-identical for any ``jobs`` value.
    """
    if overrides:
        spec = spec.with_overrides(**overrides)
    from repro.scenarios.executor import run_read_ratio_points

    sweep = ReadRatioSweepResult(
        scenario=spec.name,
        protocol=spec.protocol,
        seed=spec.seed,
        read_model=spec.read.describe(),
    )
    sweep.points.extend(
        run_read_ratio_points(spec, sort_read_ratio_grid(grid), jobs=jobs)
    )
    return sweep


def run_batch_sweep(
    spec: ScenarioSpec,
    grid: Sequence[BatchSpec] = DEFAULT_BATCH_GRID,
    jobs: int = 1,
    **overrides: Any,
) -> BatchSweepResult:
    """Run ``spec`` once per batch point (optionally overriding spec fields
    first); every point reuses the spec's seed, workload, latency model and
    faults, so the curve isolates the effect of the batching policy.

    The grid is sorted canonically (:func:`sort_batch_grid`), and with
    ``jobs > 1`` the points fan out over a process pool — the sweep result
    is byte-identical for any ``jobs`` value.
    """
    if overrides:
        spec = spec.with_overrides(**overrides)
    from repro.scenarios.executor import run_batch_points

    sweep = BatchSweepResult(scenario=spec.name, protocol=spec.protocol, seed=spec.seed)
    sweep.points.extend(run_batch_points(spec, sort_batch_grid(grid), jobs=jobs))
    return sweep


# ----------------------------------------------------------------------
# detector sweeps
# ----------------------------------------------------------------------

# The stock detector grid: the timeout-driven baseline (detector off) plus
# heartbeat interval x suspicion threshold combinations spanning aggressive
# (fast detection, false-positive-prone) to conservative.
DEFAULT_DETECTOR_GRID: Tuple[DetectorSpec, ...] = (
    DetectorSpec(),
    DetectorSpec(interval=1.0, threshold=3),
    DetectorSpec(interval=2.0, threshold=3),
    DetectorSpec(interval=2.0, threshold=6),
    DetectorSpec(interval=4.0, threshold=3),
)


def parse_detector(text: str) -> DetectorSpec:
    """Parse one CLI detector point: ``off``, an interval (``2``), or an
    interval with ``k=v`` parameters
    (``2:threshold=6``, ``2:mode=phi,phi=6``, ``1:confirmations=2``)."""
    text = text.strip()
    if text == "off":
        return DetectorSpec()
    head, _, params_text = text.partition(":")
    try:
        interval = float(head)
    except ValueError:
        raise ScenarioError(
            f"invalid detector point {text!r}: expected 'off' or INTERVAL[:k=v,...]"
        ) from None
    fields: Dict[str, Any] = {"interval": interval}
    for pair in filter(None, (p.strip() for p in params_text.split(","))):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ScenarioError(f"invalid detector parameter {pair!r}: expected k=v")
        if key == "threshold":
            try:
                fields["threshold"] = int(value)
            except ValueError:
                raise ScenarioError(f"invalid threshold value {value!r}") from None
        elif key == "phi":
            try:
                fields["phi_threshold"] = float(value)
            except ValueError:
                raise ScenarioError(f"invalid phi value {value!r}") from None
            fields.setdefault("mode", "phi")
        elif key == "mode":
            fields["mode"] = value
        elif key == "confirmations":
            try:
                fields["confirmations"] = int(value)
            except ValueError:
                raise ScenarioError(f"invalid confirmations value {value!r}") from None
        else:
            raise ScenarioError(
                f"unknown detector parameter {key!r}; "
                "expected threshold, mode, phi or confirmations"
            )
    spec = DetectorSpec(**fields)
    spec.validate()
    return spec


def parse_detector_grid(texts: Iterable[str]) -> Tuple[DetectorSpec, ...]:
    """Parse CLI detector points; the single word ``default`` expands to
    :data:`DEFAULT_DETECTOR_GRID`."""
    grid: List[DetectorSpec] = []
    for text in texts:
        if text.strip() == "default":
            grid.extend(DEFAULT_DETECTOR_GRID)
        else:
            grid.append(parse_detector(text))
    return tuple(grid)


def sort_detector_grid(grid: Sequence[DetectorSpec]) -> Tuple[DetectorSpec, ...]:
    """Canonical detector-grid order: the off point (interval 0) first, then
    by (interval, mode, threshold, phi_threshold, confirmations)."""
    return tuple(
        sorted(
            grid,
            key=lambda p: (
                p.interval, p.mode, p.threshold, p.phi_threshold, p.confirmations
            ),
        )
    )


@dataclass
class DetectorSweepResult:
    """One scenario's results across a detector-policy grid, in grid order."""

    scenario: str
    protocol: str
    seed: int
    points: List[Tuple[str, ScenarioResult]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for _, result in self.points)

    def result_for(self, label: str) -> ScenarioResult:
        for point_label, result in self.points:
            if point_label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r}")

    def curve(self) -> List[Dict[str, Any]]:
        """Detector policy vs recovery speed and detection quality: one row
        per grid point.  ``mean_ttr`` is null when no crash/install pair was
        observed (e.g. the off point never reconfigured)."""
        rows = []
        for label, result in self.points:
            ttr = (
                sum(result.recovery_times) / len(result.recovery_times)
                if result.recovery_times
                else None
            )
            rows.append(
                {
                    "detector_model": label,
                    "throughput": result.throughput,
                    "mean_latency": result.latency.mean if result.latency else None,
                    "p99_latency": result.latency.p99 if result.latency else None,
                    "suspicions": result.suspicions,
                    "false_suspicions": result.false_suspicions,
                    "view_changes": result.view_changes,
                    "unsolicited_reconfigurations": result.unsolicited_reconfigurations,
                    "pushed_failovers": result.pushed_failovers,
                    "mean_ttr": ttr,
                    "orphaned": result.orphaned,
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "passed": self.passed,
            "curve": self.curve(),
            "points": [
                {"detector_model": label, "result": result.as_dict()}
                for label, result in self.points
            ],
        }

    def render(self) -> str:
        headers = [
            "detector",
            "committed",
            "tput/1k",
            "lat mean",
            "suspicions",
            "false",
            "view chg",
            "pushed",
            "mean TTR",
            "orphaned",
        ]
        rows = []
        for label, result in self.points:
            ttr = (
                sum(result.recovery_times) / len(result.recovery_times)
                if result.recovery_times
                else None
            )
            rows.append(
                [
                    label,
                    result.committed,
                    f"{result.throughput:.1f}",
                    f"{result.latency.mean:.2f}" if result.latency else "-",
                    result.suspicions,
                    result.false_suspicions,
                    result.view_changes,
                    result.pushed_failovers,
                    f"{ttr:.1f}" if ttr is not None else "-",
                    result.orphaned,
                ]
            )
        body = format_table(headers, rows)
        verdict = "all safe" if self.passed else "FAILED"
        return (
            f"=== detector sweep: {self.scenario} ({self.protocol}, seed {self.seed}) "
            f"— {verdict} ===\n{body}"
        )


def run_detector_sweep(
    spec: ScenarioSpec,
    grid: Sequence[DetectorSpec] = DEFAULT_DETECTOR_GRID,
    jobs: int = 1,
    **overrides: Any,
) -> DetectorSweepResult:
    """Run ``spec`` once per detector point (optionally overriding spec
    fields first); every point reuses the spec's seed, workload, latency
    model and fault schedule, so the curve isolates the heartbeat interval x
    suspicion threshold tradeoff: aggressive policies recover faster (small
    TTR, many pushed failovers) but flag slow peers falsely, conservative
    ones approach the timeout-driven baseline.

    The grid is sorted canonically (:func:`sort_detector_grid`), and with
    ``jobs > 1`` the points fan out over a process pool — the sweep result
    is byte-identical for any ``jobs`` value.
    """
    if overrides:
        spec = spec.with_overrides(**overrides)
    from repro.scenarios.executor import run_detector_points

    sweep = DetectorSweepResult(
        scenario=spec.name, protocol=spec.protocol, seed=spec.seed
    )
    sweep.points.extend(run_detector_points(spec, sort_detector_grid(grid), jobs=jobs))
    return sweep


# ----------------------------------------------------------------------
# bandwidth sweeps
# ----------------------------------------------------------------------

# The stock bandwidth grid: the pure-delay baseline (links cost nothing)
# plus shrinking link capacities, in bytes per message delay.  Typical
# protocol messages weigh 50-300 bytes (see repro.runtime.wire), so 8000
# is a mild tax, 2000 makes serialization visible and 500 saturates links
# into real FIFO queues.
DEFAULT_BANDWIDTH_GRID: Tuple[NetworkSpec, ...] = (
    NetworkSpec(),
    NetworkSpec(bandwidth=8000.0),
    NetworkSpec(bandwidth=2000.0),
    NetworkSpec(bandwidth=500.0),
)


def parse_bandwidth(text: str) -> NetworkSpec:
    """Parse one CLI bandwidth point: ``off``, a bandwidth in bytes per
    delay (``2000``), or a bandwidth with ``k=v`` parameters
    (``2000:overhead=0.1``, ``500:pipeline=false``, ``2000:sticky=true``)."""
    text = text.strip()
    if text == "off":
        return NetworkSpec()
    head, _, params_text = text.partition(":")
    try:
        bandwidth = float(head)
    except ValueError:
        raise ScenarioError(
            f"invalid bandwidth point {text!r}: expected 'off' or BANDWIDTH[:k=v,...]"
        ) from None
    fields: Dict[str, Any] = {"bandwidth": bandwidth}
    for pair in filter(None, (p.strip() for p in params_text.split(","))):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ScenarioError(f"invalid bandwidth parameter {pair!r}: expected k=v")
        if key == "overhead":
            try:
                fields["overhead"] = float(value)
            except ValueError:
                raise ScenarioError(f"invalid overhead value {value!r}") from None
        elif key == "pipeline":
            if value not in ("true", "false"):
                raise ScenarioError("pipeline must be 'true' or 'false'")
            fields["pipeline"] = value == "true"
        elif key == "sticky":
            if value not in ("true", "false"):
                raise ScenarioError("sticky must be 'true' or 'false'")
            fields["sticky"] = value == "true"
        else:
            raise ScenarioError(
                f"unknown bandwidth parameter {key!r}; "
                "expected overhead, pipeline or sticky"
            )
    spec = NetworkSpec(**fields)
    spec.validate()
    return spec


def parse_bandwidth_grid(texts: Iterable[str]) -> Tuple[NetworkSpec, ...]:
    """Parse CLI bandwidth points; the single word ``default`` expands to
    :data:`DEFAULT_BANDWIDTH_GRID`."""
    grid: List[NetworkSpec] = []
    for text in texts:
        if text.strip() == "default":
            grid.extend(DEFAULT_BANDWIDTH_GRID)
        else:
            grid.append(parse_bandwidth(text))
    return tuple(grid)


def sort_bandwidth_grid(grid: Sequence[NetworkSpec]) -> Tuple[NetworkSpec, ...]:
    """Canonical bandwidth-grid order: the pure-delay off point first, then
    descending bandwidth (wide to narrow pipes), commit-path toggles last."""
    return tuple(
        sorted(
            grid,
            key=lambda p: (
                1 if p.enabled else 0,
                -p.bandwidth,
                p.overhead,
                not p.pipeline,
                p.sticky,
            ),
        )
    )


@dataclass
class BandwidthSweepResult:
    """One scenario's results across a bandwidth grid, in grid order."""

    scenario: str
    protocol: str
    seed: int
    points: List[Tuple[str, ScenarioResult]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for _, result in self.points)

    def result_for(self, label: str) -> ScenarioResult:
        for point_label, result in self.points:
            if point_label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r}")

    def curve(self) -> List[Dict[str, Any]]:
        """Link capacity vs throughput/latency/queueing: one row per point."""
        rows = []
        for label, result in self.points:
            rows.append(
                {
                    "network_model": label,
                    "throughput": result.throughput,
                    "mean_latency": result.latency.mean if result.latency else None,
                    "p99_latency": result.latency.p99 if result.latency else None,
                    "bytes_sent": result.bytes_sent,
                    "link_queue_wait_mean": result.link_queue_wait_mean,
                    "link_queue_wait_max": result.link_queue_wait_max,
                    "link_busy_time": result.link_busy_time,
                    "link_max_depth": result.link_max_depth,
                    "messages_sent": result.messages_sent,
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "passed": self.passed,
            "curve": self.curve(),
            "points": [
                {"network_model": label, "result": result.as_dict()}
                for label, result in self.points
            ],
        }

    def render(self) -> str:
        headers = [
            "network",
            "committed",
            "tput/1k",
            "lat mean",
            "lat p99",
            "bytes",
            "q wait",
            "q max",
            "depth",
            "messages",
        ]
        rows = []
        for label, result in self.points:
            rows.append(
                [
                    label,
                    result.committed,
                    f"{result.throughput:.1f}",
                    f"{result.latency.mean:.2f}" if result.latency else "-",
                    f"{result.latency.p99:.2f}" if result.latency else "-",
                    f"{result.bytes_sent:.0f}" if result.bytes_sent else "-",
                    f"{result.link_queue_wait_mean:.2f}",
                    f"{result.link_queue_wait_max:.2f}",
                    result.link_max_depth,
                    result.messages_sent,
                ]
            )
        body = format_table(headers, rows)
        verdict = "all safe" if self.passed else "FAILED"
        return (
            f"=== bandwidth sweep: {self.scenario} ({self.protocol}, seed {self.seed}) "
            f"— {verdict} ===\n{body}"
        )


def run_bandwidth_sweep(
    spec: ScenarioSpec,
    grid: Sequence[NetworkSpec] = DEFAULT_BANDWIDTH_GRID,
    jobs: int = 1,
    **overrides: Any,
) -> BandwidthSweepResult:
    """Run ``spec`` once per bandwidth point (optionally overriding spec
    fields first); every point reuses the spec's seed, workload, latency
    model and faults, so the curve isolates the effect of link capacity —
    serialization time and FIFO queueing on top of propagation delay.

    The grid is sorted canonically (:func:`sort_bandwidth_grid`), and with
    ``jobs > 1`` the points fan out over a process pool — the sweep result
    is byte-identical for any ``jobs`` value.
    """
    if overrides:
        spec = spec.with_overrides(**overrides)
    from repro.scenarios.executor import run_bandwidth_points

    sweep = BandwidthSweepResult(
        scenario=spec.name, protocol=spec.protocol, seed=spec.seed
    )
    sweep.points.extend(run_bandwidth_points(spec, sort_bandwidth_grid(grid), jobs=jobs))
    return sweep
