"""Latency sweep driver: one scenario across a grid of latency points.

A *sweep* runs the same :class:`~repro.scenarios.spec.ScenarioSpec` (same
workload, faults and seed) once per :class:`LatencySpec` in a grid and
collects the results into a latency-vs-throughput curve.  Because the
per-phase breakdown (submit -> certify -> decide) rides along on every
:class:`~repro.scenarios.runner.ScenarioResult`, the curve separates
protocol cost (the certify -> decide phase, measured in critical-path
message delays) from network cost (the request/response phases, which
scale directly with the link-delay distribution).

Used by ``python -m repro.scenarios sweep <scenario> --latency ...`` and
importable directly::

    from repro.scenarios.sweep import DEFAULT_GRID, run_latency_sweep
    curve = run_latency_sweep(get_scenario("steady-state"))
    print(curve.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.analysis.metrics import format_table
from repro.scenarios.latency import parse_latency
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.scenarios.spec import LatencySpec, ScenarioSpec


# The stock grid: the paper's unit model, bounded jitter around one delay,
# a memoryless network, and a heavy tail — same mean (one delay) for the
# three random models, so differences come from distribution shape alone.
DEFAULT_GRID: Tuple[LatencySpec, ...] = (
    LatencySpec(model="unit"),
    LatencySpec(model="uniform", low=0.5, high=1.5),
    LatencySpec(model="exponential", mean=1.0),
    LatencySpec(model="lognormal", mean=1.0, sigma=0.8),
)


def parse_grid(texts: Iterable[str]) -> Tuple[LatencySpec, ...]:
    """Parse CLI latency points; the single word ``default`` expands to
    :data:`DEFAULT_GRID`."""
    grid: List[LatencySpec] = []
    for text in texts:
        if text.strip() == "default":
            grid.extend(DEFAULT_GRID)
        else:
            grid.append(parse_latency(text))
    return tuple(grid)


@dataclass
class LatencySweepResult:
    """One scenario's results across a latency grid, in grid order."""

    scenario: str
    protocol: str
    seed: int
    points: List[Tuple[str, ScenarioResult]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for _, result in self.points)

    def result_for(self, label: str) -> ScenarioResult:
        for point_label, result in self.points:
            if point_label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r}")

    def curve(self) -> List[Dict[str, Any]]:
        """The latency-vs-throughput curve: one row per grid point.  A point
        with no client-observed decisions reports null latencies (a 0.0
        would read as the best point on the curve)."""
        rows = []
        for label, result in self.points:
            rows.append(
                {
                    "latency_model": label,
                    "throughput": result.throughput,
                    "mean_latency": result.latency.mean if result.latency else None,
                    "p99_latency": result.latency.p99 if result.latency else None,
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "passed": self.passed,
            "curve": self.curve(),
            "points": [
                {"latency_model": label, "result": result.as_dict()}
                for label, result in self.points
            ],
        }

    def render(self) -> str:
        headers = [
            "latency model",
            "committed",
            "abort",
            "tput/1k",
            "lat mean",
            "lat p99",
            "submit>cert",
            "cert>decide",
            "decide>client",
        ]
        def _mean(summary) -> str:
            return f"{summary.mean:.2f}" if summary is not None else "-"

        rows = []
        for label, result in self.points:
            phases = result.phases
            rows.append(
                [
                    label,
                    result.committed,
                    f"{result.abort_rate:.3f}",
                    f"{result.throughput:.1f}",
                    f"{result.latency.mean:.2f}" if result.latency else "-",
                    f"{result.latency.p99:.2f}" if result.latency else "-",
                    _mean(phases.submit_to_certify) if phases else "-",
                    _mean(phases.certify_to_decide) if phases else "-",
                    _mean(phases.decide_to_client) if phases else "-",
                ]
            )
        body = format_table(headers, rows)
        verdict = "all safe" if self.passed else "FAILED"
        return (
            f"=== latency sweep: {self.scenario} ({self.protocol}, seed {self.seed}) "
            f"— {verdict} ===\n{body}"
        )


def run_latency_sweep(
    spec: ScenarioSpec,
    grid: Sequence[LatencySpec] = DEFAULT_GRID,
    **overrides: Any,
) -> LatencySweepResult:
    """Run ``spec`` once per latency point (optionally overriding spec
    fields first); every point reuses the spec's seed, workload and faults,
    so the curve isolates the effect of the delay distribution."""
    if overrides:
        spec = spec.with_overrides(**overrides)
    sweep = LatencySweepResult(
        scenario=spec.name, protocol=spec.protocol, seed=spec.seed
    )
    for point in grid:
        result = ScenarioRunner(spec.with_overrides(latency=point)).run()
        sweep.points.append((point.describe(), result))
    return sweep
