"""Declarative scenario engine: one driving loop for every consumer.

``repro.scenarios`` turns "build a cluster, inject faults, run a workload,
collect metrics" into data: a :class:`ScenarioSpec` describes the
experiment, :class:`ScenarioRunner` executes it deterministically, and a
:class:`ScenarioResult` carries throughput, latency, abort-rate, message
and safety metrics.  The examples, the benchmark harness, the tests and
the ``python -m repro.scenarios`` CLI all run on this engine.
"""

from repro.scenarios.library import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.latency import compile_latency_model, parse_latency
from repro.scenarios.runner import (
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
    run_sweep,
)
from repro.scenarios.executor import (
    run_repetitions,
    run_scenarios,
)
from repro.scenarios.spec import (
    CHECK_MODES,
    EXEC_MODES,
    FAULT_ACTIONS,
    LATENCY_MODELS,
    PROTOCOL_BASELINE,
    WORKLOAD_KINDS,
    BatchSpec,
    ExecSpec,
    FaultStep,
    LatencySpec,
    NetworkSpec,
    RetrySpec,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.scenarios.sweep import (
    DEFAULT_BANDWIDTH_GRID,
    DEFAULT_BATCH_GRID,
    DEFAULT_GRID,
    BandwidthSweepResult,
    BatchSweepResult,
    LatencySweepResult,
    parse_bandwidth,
    parse_bandwidth_grid,
    parse_batch,
    parse_batch_grid,
    parse_grid,
    run_bandwidth_sweep,
    run_batch_sweep,
    run_latency_sweep,
    sort_bandwidth_grid,
    sort_batch_grid,
    sort_latency_grid,
)

__all__ = [
    "CHECK_MODES",
    "DEFAULT_BANDWIDTH_GRID",
    "DEFAULT_BATCH_GRID",
    "DEFAULT_GRID",
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "run_scenarios",
    "run_repetitions",
    "run_sweep",
    "run_bandwidth_sweep",
    "run_batch_sweep",
    "run_latency_sweep",
    "compile_latency_model",
    "parse_latency",
    "parse_bandwidth",
    "parse_bandwidth_grid",
    "parse_batch",
    "parse_batch_grid",
    "parse_grid",
    "sort_bandwidth_grid",
    "sort_batch_grid",
    "sort_latency_grid",
    "EXEC_MODES",
    "FAULT_ACTIONS",
    "LATENCY_MODELS",
    "PROTOCOL_BASELINE",
    "WORKLOAD_KINDS",
    "BandwidthSweepResult",
    "BatchSpec",
    "BatchSweepResult",
    "ExecSpec",
    "FaultStep",
    "LatencySpec",
    "LatencySweepResult",
    "NetworkSpec",
    "RetrySpec",
    "ScenarioError",
    "ScenarioSpec",
    "WorkloadSpec",
]
