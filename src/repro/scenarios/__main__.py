"""Command-line entry point: run scenarios without writing code.

Usage::

    python -m repro.scenarios list
    python -m repro.scenarios run steady-state [--seed 7] [--txns 40] [--json]
    python -m repro.scenarios run steady-state bank-transfers --jobs 2
    python -m repro.scenarios run steady-state --parallel-shards 2
    python -m repro.scenarios sweep steady-state --protocols message-passing,rdma
    python -m repro.scenarios sweep steady-state --latency default --jobs 4
    python -m repro.scenarios sweep steady-state \
        --latency unit --latency lognormal:mean=2,sigma=0.8
    python -m repro.scenarios sweep steady-state --batch default
    python -m repro.scenarios sweep steady-state \
        --batch off --batch 8 --batch 32 --batch 16:linger=2
    python -m repro.scenarios sweep read-heavy-steady-state \
        --read-ratio 0 --read-ratio 0.5 --read-ratio 0.9
    python -m repro.scenarios sweep detector-leader-crash --detector default
    python -m repro.scenarios sweep bandwidth-knee --bandwidth default
    python -m repro.scenarios steady-state          # shorthand for `run`

``sweep`` without a grid flag compares protocols under the scenario's own
latency and batching models (the classic protocol sweep); with
``--latency`` it runs each listed protocol across the latency grid and
prints one latency-vs-throughput curve per protocol (``--latency default``
expands to the stock four-point grid); with ``--batch`` it sweeps the
protocol-level batching policy instead and prints one
batch-size-vs-throughput/latency curve per protocol (``--batch default``
expands to off/4/8/16/32); with ``--read-ratio`` it sweeps the workload's
read mix and prints throughput plus snapshot-read fast-path hit counts per
point (``--read-ratio default`` expands to 0/0.25/0.5/0.75/0.9); with
``--detector`` it sweeps the failure-detector policy (heartbeat interval x
suspicion threshold) and prints suspicion/false-positive counts plus the
mean time-to-recovery per point (``--detector default`` expands to the
stock off/1x3/2x3/2x6/4x3 grid); with ``--bandwidth`` it sweeps the link
model (bytes per delay, optional per-message overhead and commit-path
toggles) and prints throughput, latency, bytes on the wire and FIFO queue
stats per point (``--bandwidth default`` expands to off/8000/2000/500).

Two independent parallelism knobs (see ``repro.runtime.parallel``):
``--jobs N`` fans whole runs — the scenarios listed on ``run``, the grid
points / protocols of a ``sweep`` — out over ``N`` worker processes
(``0`` = one per core); ``--parallel-shards G`` runs each simulation on
the conservative parallel-DES engine with ``G`` shard groups.  Both
preserve output byte for byte: results always come back in spec order,
and the grouped engine replays the exact serial event order.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.scenarios.executor import run_scenarios
from repro.scenarios.latency import parse_latency
from repro.scenarios.library import SCENARIOS, get_scenario, scenario_names
from repro.scenarios.runner import run_sweep
from repro.scenarios.spec import CHECK_MODES, ExecSpec, ScenarioError, ScenarioSpec
from repro.scenarios.sweep import (
    parse_bandwidth_grid,
    parse_batch,
    parse_batch_grid,
    parse_detector_grid,
    parse_grid,
    parse_read_ratio_grid,
    run_bandwidth_sweep,
    run_batch_sweep,
    run_detector_sweep,
    run_latency_sweep,
    run_read_ratio_sweep,
)


def _apply_overrides(spec: ScenarioSpec, args: argparse.Namespace) -> ScenarioSpec:
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "protocol", None):
        overrides["protocol"] = args.protocol
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if args.check_mode is not None:
        overrides["check_mode"] = args.check_mode
    if getattr(args, "latency_override", None):
        overrides["latency"] = parse_latency(args.latency_override)
    if getattr(args, "batch_override", None):
        overrides["batch"] = parse_batch(args.batch_override)
    workload_overrides = {}
    if args.txns is not None:
        workload_overrides["txns"] = args.txns
    if args.think_time is not None:
        workload_overrides["think_time"] = args.think_time
    if workload_overrides:
        overrides["workload"] = replace(spec.workload, **workload_overrides)
    if getattr(args, "parallel_shards", None):
        overrides["execution"] = replace(
            spec.execution, mode="parallel-shards", groups=args.parallel_shards
        )
    return spec.with_overrides(**overrides) if overrides else spec


def _cmd_list() -> int:
    width = max(len(name) for name in scenario_names())
    for name, spec in SCENARIOS.items():
        safety = "" if spec.expect_safe else "  [expected-unsafe]"
        print(f"{name.ljust(width)}  {spec.protocol:16s}  {spec.description}{safety}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    specs = [_apply_overrides(get_scenario(name), args) for name in args.names]
    results = run_scenarios(specs, jobs=args.jobs)
    if args.json:
        if len(results) == 1:
            print(json.dumps(results[0].as_dict(), indent=2))
        else:
            print(
                json.dumps(
                    {spec.name: result.as_dict() for spec, result in zip(specs, results)},
                    indent=2,
                )
            )
    else:
        for index, result in enumerate(results):
            if index:
                print()
            print(result.render())
    return 0 if all(result.passed for result in results) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _apply_overrides(get_scenario(args.name), args)
    protocols = tuple(p.strip() for p in args.protocols.split(",") if p.strip())
    grids_requested = sum(
        bool(g)
        for g in (
            args.latency,
            args.batch,
            args.read_ratio,
            args.detector,
            args.bandwidth,
        )
    )
    if grids_requested > 1:
        raise ScenarioError(
            "--latency, --batch, --read-ratio, --detector and --bandwidth "
            "sweeps are mutually exclusive"
        )
    if args.bandwidth:
        grid = parse_bandwidth_grid(args.bandwidth)
        sweeps = {
            protocol: run_bandwidth_sweep(spec, grid, jobs=args.jobs, protocol=protocol)
            for protocol in protocols
        }
        if args.json:
            print(json.dumps({p: s.as_dict() for p, s in sweeps.items()}, indent=2))
        else:
            for sweep in sweeps.values():
                print(sweep.render())
                print()
        return 0 if all(sweep.passed for sweep in sweeps.values()) else 1
    if args.detector:
        grid = parse_detector_grid(args.detector)
        sweeps = {
            protocol: run_detector_sweep(spec, grid, jobs=args.jobs, protocol=protocol)
            for protocol in protocols
        }
        if args.json:
            print(json.dumps({p: s.as_dict() for p, s in sweeps.items()}, indent=2))
        else:
            for sweep in sweeps.values():
                print(sweep.render())
                print()
        return 0 if all(sweep.passed for sweep in sweeps.values()) else 1
    if args.read_ratio:
        grid = parse_read_ratio_grid(args.read_ratio)
        sweeps = {
            protocol: run_read_ratio_sweep(spec, grid, jobs=args.jobs, protocol=protocol)
            for protocol in protocols
        }
        if args.json:
            print(json.dumps({p: s.as_dict() for p, s in sweeps.items()}, indent=2))
        else:
            for sweep in sweeps.values():
                print(sweep.render())
                print()
        return 0 if all(sweep.passed for sweep in sweeps.values()) else 1
    if args.batch:
        grid = parse_batch_grid(args.batch)
        sweeps = {
            protocol: run_batch_sweep(spec, grid, jobs=args.jobs, protocol=protocol)
            for protocol in protocols
        }
        if args.json:
            print(json.dumps({p: s.as_dict() for p, s in sweeps.items()}, indent=2))
        else:
            for sweep in sweeps.values():
                print(sweep.render())
                print()
        return 0 if all(sweep.passed for sweep in sweeps.values()) else 1
    if args.latency:
        grid = parse_grid(args.latency)
        sweeps = {
            protocol: run_latency_sweep(spec, grid, jobs=args.jobs, protocol=protocol)
            for protocol in protocols
        }
        if args.json:
            print(json.dumps({p: s.as_dict() for p, s in sweeps.items()}, indent=2))
        else:
            for sweep in sweeps.values():
                print(sweep.render())
                print()
        return 0 if all(sweep.passed for sweep in sweeps.values()) else 1
    results = run_sweep(spec, protocols, jobs=args.jobs)
    if args.json:
        print(json.dumps({p: r.as_dict() for p, r in results.items()}, indent=2))
    else:
        for result in results.values():
            print(result.render())
            print()
    return 0 if all(result.passed for result in results.values()) else 1


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None, help="override the spec seed")
    parser.add_argument("--shards", type=int, default=None, help="override the shard count")
    parser.add_argument("--txns", type=int, default=None, help="override the transaction count")
    parser.add_argument(
        "--check-mode",
        choices=CHECK_MODES,
        default=None,
        help="override how the history is validated (off / final / online)",
    )
    parser.add_argument(
        "--think-time",
        type=float,
        default=None,
        help="closed-loop client think time in delays (0 = batch-driven)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent runs (scenarios, sweep grid points, protocols) "
        "out over N worker processes; 0 = one per core; results are "
        "byte-identical to --jobs 1",
    )
    parser.add_argument(
        "--parallel-shards",
        type=int,
        default=None,
        metavar="G",
        help="run each simulation on the conservative parallel-DES engine "
        "with G shard groups (needs a deterministic latency model; replays "
        "the serial event order byte for byte)",
    )
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Shorthand: `python -m repro.scenarios <scenario>` means `run <scenario>`.
    if argv and argv[0] not in ("list", "run", "sweep", "-h", "--help"):
        argv.insert(0, "run")

    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run named simulation scenarios of the TCS reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the scenario library")

    run_parser = commands.add_parser("run", help="run one or more scenarios")
    run_parser.add_argument("names", nargs="+", choices=scenario_names(), metavar="name")
    run_parser.add_argument("--protocol", default=None, help="override the protocol")
    run_parser.add_argument(
        "--latency",
        dest="latency_override",
        default=None,
        metavar="MODEL[:k=v,...]",
        help="override the latency model (e.g. lognormal:mean=2,sigma=0.8)",
    )
    run_parser.add_argument(
        "--batch",
        dest="batch_override",
        default=None,
        metavar="SIZE[:k=v,...]",
        help="override the batching policy (e.g. 32, 16:linger=2, off)",
    )
    _add_common(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="run one scenario under several protocols and/or latency models"
    )
    sweep_parser.add_argument("name", choices=scenario_names())
    sweep_parser.add_argument(
        "--protocols",
        default="message-passing,rdma",
        help="comma-separated protocol list (default: message-passing,rdma)",
    )
    sweep_parser.add_argument(
        "--latency",
        action="append",
        default=[],
        metavar="MODEL[:k=v,...]",
        help="latency grid point (repeatable; 'default' expands to the stock "
        "grid); with this flag the sweep runs each protocol across the grid",
    )
    sweep_parser.add_argument(
        "--batch",
        action="append",
        default=[],
        metavar="SIZE[:k=v,...]",
        help="batch grid point (repeatable; 'off', a size cap like '32', or "
        "'16:linger=2'; 'default' expands to off/4/8/16/32); with this flag "
        "the sweep runs each protocol across the batching grid",
    )
    sweep_parser.add_argument(
        "--read-ratio",
        action="append",
        default=[],
        metavar="RATIO",
        help="read-ratio grid point in [0, 1] (repeatable; 'default' expands "
        "to 0/0.25/0.5/0.75/0.9); with this flag the sweep runs each protocol "
        "across the read-mix grid (enable the fast path with a snapshot-read "
        "scenario such as read-heavy-steady-state)",
    )
    sweep_parser.add_argument(
        "--detector",
        action="append",
        default=[],
        metavar="INTERVAL[:k=v,...]",
        help="detector grid point (repeatable; 'off', a heartbeat interval "
        "like '2', or '2:threshold=6' / '2:mode=phi,phi=6' / "
        "'1:confirmations=2'; 'default' expands to the stock "
        "interval x threshold grid); with this flag the sweep runs each "
        "protocol across the failure-detector grid",
    )
    sweep_parser.add_argument(
        "--bandwidth",
        action="append",
        default=[],
        metavar="BANDWIDTH[:k=v,...]",
        help="bandwidth grid point (repeatable; 'off', a link capacity in "
        "bytes per delay like '2000', or '2000:overhead=0.1' / "
        "'500:pipeline=false' / '2000:sticky=true'; 'default' expands to "
        "off/8000/2000/500); with this flag the sweep runs each protocol "
        "across the link-model grid",
    )
    _add_common(sweep_parser)

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        return _cmd_sweep(args)
    except ScenarioError as error:
        parser.exit(2, f"error: {error}\n")


if __name__ == "__main__":
    try:
        # Die quietly when the output is piped into `head` and the pipe
        # closes early, instead of dumping a BrokenPipeError traceback.
        import signal

        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (ImportError, AttributeError, ValueError):  # pragma: no cover
        pass  # no SIGPIPE on this platform
    raise SystemExit(main())
