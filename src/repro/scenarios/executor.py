"""Multi-core scenario execution: fan whole runs out over worker processes.

A scenario run is a pure function of its spec — same spec, same result,
byte for byte.  That makes sweeps, scenario packs and benchmark
repetitions embarrassingly parallel: this module fans them out over a
:class:`repro.runtime.parallel.ParallelExecutor` (a spawn-safe process
pool) and returns results in **spec order**, never completion order, so
parallel output is identical to a ``jobs=1`` run of the same inputs.

The workers re-import ``repro`` in fresh interpreters, so everything
crossing the pool boundary (specs in, results out) must be picklable —
:class:`ScenarioSpec` and :class:`ScenarioResult` both are.  Worker
failures surface as :class:`repro.runtime.parallel.WorkerError` carrying
the child's formatted traceback.

Entry points::

    run_scenarios(specs, jobs=4)          # scenario packs
    run_repetitions(spec, 8, jobs=4)      # seed-derived repetitions
    run_latency_points(spec, grid, jobs)  # latency sweep fan-out
    run_batch_points(spec, grid, jobs)    # batch sweep fan-out
    run_detector_points(spec, grid, jobs)  # detector sweep fan-out
    run_bandwidth_points(spec, grid, jobs)  # bandwidth sweep fan-out
    run_read_ratio_points(spec, ratios, jobs)  # read-ratio sweep fan-out
    run_protocols(spec, protocols, jobs)  # protocol comparison fan-out

The sweep drivers in :mod:`repro.scenarios.sweep` and the CLI's ``--jobs``
flag delegate here.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.runtime.parallel import ParallelExecutor, derive_seed
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.scenarios.spec import (
    BatchSpec,
    DetectorSpec,
    LatencySpec,
    NetworkSpec,
    ScenarioSpec,
)


def _run_spec(spec: ScenarioSpec) -> ScenarioResult:
    """The worker body: one full scenario run (module-level so the spawn
    pool can import it by qualified name)."""
    return ScenarioRunner(spec).run()


def run_scenarios(
    specs: Sequence[ScenarioSpec], jobs: int = 1
) -> List[ScenarioResult]:
    """Run every spec, ``jobs`` at a time; results come back in spec order."""
    return ParallelExecutor(jobs).map(_run_spec, list(specs))


def run_repetitions(
    spec: ScenarioSpec, repeats: int, jobs: int = 1
) -> List[ScenarioResult]:
    """Run ``repeats`` seed-derived repetitions of one spec.

    Repetition ``i`` runs with ``derive_seed(spec.seed, i)``, so the seed
    schedule is identical whatever the worker count — repetition results
    can be compared across ``jobs`` settings and across machines.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    specs = [
        spec.with_overrides(seed=derive_seed(spec.seed, index))
        for index in range(repeats)
    ]
    return run_scenarios(specs, jobs=jobs)


def run_latency_points(
    spec: ScenarioSpec, grid: Sequence[LatencySpec], jobs: int = 1
) -> List[Tuple[str, ScenarioResult]]:
    """One run per latency point, labelled, in grid order."""
    specs = [spec.with_overrides(latency=point) for point in grid]
    results = run_scenarios(specs, jobs=jobs)
    return [(point.describe(), result) for point, result in zip(grid, results)]


def run_batch_points(
    spec: ScenarioSpec, grid: Sequence[BatchSpec], jobs: int = 1
) -> List[Tuple[str, ScenarioResult]]:
    """One run per batch-policy point, labelled, in grid order."""
    specs = [spec.with_overrides(batch=point) for point in grid]
    results = run_scenarios(specs, jobs=jobs)
    return [(point.describe(), result) for point, result in zip(grid, results)]


def run_detector_points(
    spec: ScenarioSpec, grid: Sequence[DetectorSpec], jobs: int = 1
) -> List[Tuple[str, ScenarioResult]]:
    """One run per detector-policy point, labelled, in grid order."""
    specs = [spec.with_overrides(detector=point) for point in grid]
    results = run_scenarios(specs, jobs=jobs)
    return [(point.describe(), result) for point, result in zip(grid, results)]


def run_bandwidth_points(
    spec: ScenarioSpec, grid: Sequence[NetworkSpec], jobs: int = 1
) -> List[Tuple[str, ScenarioResult]]:
    """One run per bandwidth point, labelled, in grid order."""
    specs = [spec.with_overrides(network=point) for point in grid]
    results = run_scenarios(specs, jobs=jobs)
    return [(point.describe(), result) for point, result in zip(grid, results)]


def run_read_ratio_points(
    spec: ScenarioSpec, ratios: Sequence[float], jobs: int = 1
) -> List[Tuple[str, ScenarioResult]]:
    """One run per read-ratio point, labelled, in grid order.  Each point
    rewrites only ``workload.read_ratio``; protocol, read policy, latency
    model, seed and fault schedule stay fixed."""
    specs = [
        spec.with_overrides(workload=replace(spec.workload, read_ratio=ratio))
        for ratio in ratios
    ]
    results = run_scenarios(specs, jobs=jobs)
    return [(f"{ratio:g}", result) for ratio, result in zip(ratios, results)]


def run_protocols(
    spec: ScenarioSpec, protocols: Sequence[str], jobs: int = 1
) -> Dict[str, ScenarioResult]:
    """The same scenario under several protocols (same seed/workload)."""
    specs = [spec.with_overrides(protocol=protocol) for protocol in protocols]
    results = run_scenarios(specs, jobs=jobs)
    return dict(zip(protocols, results))
