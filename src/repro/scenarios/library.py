"""The built-in scenario library.

Each entry is a fully-specified :class:`ScenarioSpec`; run one with::

    python -m repro.scenarios run steady-state

or sweep it across protocols::

    python -m repro.scenarios sweep steady-state --protocols message-passing,rdma

All scenarios finish in seconds and return a structured
:class:`~repro.scenarios.runner.ScenarioResult`; every safety check must
pass except ``ablation-safety-demo``, which reproduces the Figure 4a
violation on purpose (``expect_safe=False``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.scenarios.spec import (
    BatchSpec,
    DetectorSpec,
    FaultStep,
    LatencySpec,
    NetworkSpec,
    ReadSpec,
    RetrySpec,
    ScenarioSpec,
    WorkloadSpec,
)


SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    spec.validate()
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None


register_scenario(
    ScenarioSpec(
        name="steady-state",
        description="Failure-free uniform read/write load across four shards.",
        protocol="message-passing",
        num_shards=4,
        replicas_per_shard=2,
        workload=WorkloadSpec(kind="uniform", txns=200, batch=10, num_keys=256),
    )
)

register_scenario(
    ScenarioSpec(
        name="hot-key-contention",
        description="Zipf-skewed access hammering a few hot keys; aborts expected.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(kind="zipfian", txns=150, batch=10, num_keys=48, theta=1.3),
    )
)

register_scenario(
    ScenarioSpec(
        name="leader-crash-under-load",
        description="A shard leader crashes mid-workload; the shard reconfigures "
        "and coordinator recovery re-drives the stalled transactions.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        faults=(
            FaultStep(at=40.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=41.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=90.5, action="retry-stalled"),
            FaultStep(at=140.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="rolling-reconfiguration",
        description="Every shard is reconfigured in turn while load continues "
        "(epoch churn without failures).",
        protocol="message-passing",
        num_shards=3,
        workload=WorkloadSpec(kind="uniform", txns=150, batch=10, num_keys=192),
        faults=(
            FaultStep(at=30.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=55.5, action="reconfigure", shard="shard-1"),
            FaultStep(at=80.5, action="reconfigure", shard="shard-2"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="mixed-isolation",
        description="Snapshot isolation under skewed load: write-write conflicts "
        "only, so far fewer aborts than serializability on the same trace.",
        protocol="message-passing",
        num_shards=2,
        isolation="snapshot-isolation",
        workload=WorkloadSpec(kind="zipfian", txns=150, batch=10, num_keys=48, theta=1.0),
    )
)

register_scenario(
    ScenarioSpec(
        name="rdma-steady-state",
        description="The RDMA protocol under uniform load (no ACCEPT_ACK "
        "messages; votes persisted by one-sided writes).  Sweep against "
        "message-passing for the paper's comparison.",
        protocol="rdma",
        num_shards=3,
        workload=WorkloadSpec(kind="uniform", txns=150, batch=10, num_keys=192),
    )
)

register_scenario(
    ScenarioSpec(
        name="multi-shard-skew",
        description="Three-key transactions over a skewed key space on four "
        "shards: most transactions span shards and pay cross-shard "
        "certification.",
        protocol="message-passing",
        num_shards=4,
        workload=WorkloadSpec(
            kind="zipfian", txns=160, batch=8, num_keys=256, theta=1.1, reads_per_txn=3
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="bank-transfers",
        description="Concurrent balance transfers with a hot account; money "
        "conservation is enforced by certification.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(
            kind="bank", txns=120, batch=6, num_accounts=12, hot_fraction=0.2
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="follower-partition",
        description="A follower is partitioned away mid-run (messages dropped, "
        "process alive); the shard reconfigures past it, the partition heals, "
        "and stalled transactions are re-driven.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        faults=(
            FaultStep(at=30.5, action="partition", target="follower:shard-0"),
            FaultStep(at=32.5, action="reconfigure", shard="shard-0",
                      suspects=("follower:shard-0",)),
            FaultStep(at=90.5, action="heal"),
            FaultStep(at=110.5, action="retry-stalled"),
            FaultStep(at=160.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="cascading-crashes",
        description="Failures pile up: a follower dies, then its shard's new "
        "leader, then a second shard's leader — each followed by a "
        "reconfiguration pulling in a spare, with recovery retries at the end.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=140, batch=8, num_keys=160),
        faults=(
            FaultStep(at=25.5, action="crash-follower", shard="shard-0"),
            FaultStep(at=27.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=55.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=57.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=85.5, action="crash-leader", shard="shard-1"),
            FaultStep(at=87.5, action="reconfigure", shard="shard-1"),
            FaultStep(at=140.5, action="retry-stalled"),
            FaultStep(at=200.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="config-service-outage",
        description="The configuration service is partitioned away while a "
        "leader crashes: the reconfiguration attempted during the outage is "
        "lost, the one after the heal succeeds, and recovery re-drives the "
        "transactions stalled in between.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        faults=(
            FaultStep(at=20.5, action="partition", target="config-service"),
            FaultStep(at=50.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=52.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=70.5, action="heal"),
            FaultStep(at=80.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=130.5, action="retry-stalled"),
            FaultStep(at=180.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="closed-loop-think",
        description="Interactive clients: eight closed-loop sessions each keep "
        "one transaction in flight and think (mean 4 delays) between requests "
        "— low concurrency, few conflicts, latency-bound throughput.",
        protocol="message-passing",
        num_shards=2,
        workload=WorkloadSpec(
            kind="uniform", txns=120, num_keys=128, think_time=4.0, sessions=8
        ),
    )
)

# ----------------------------------------------------------------------
# the geo-distributed (WAN) pack: every shard spans three regions, so the
# certification fan-out crosses region boundaries on the critical path.
# ----------------------------------------------------------------------

# One replica of each shard per region; cross-region one-way delays are in
# message-delay units relative to the intra-region hop (0.5): roughly the
# EU <-> US <-> AP proportions of real WAN round-trip times.
WAN_THREE_REGIONS = LatencySpec(
    model="regions",
    regions=("eu", "us", "ap"),
    intra=0.5,
    links=(("eu", "us", 3.0), ("eu", "ap", 5.0), ("us", "ap", 4.0)),
    jitter=0.25,
)

register_scenario(
    ScenarioSpec(
        name="wan-steady-state",
        description="Failure-free load on a 3-region WAN deployment (one "
        "replica of every shard per region); cross-region links dominate "
        "the commit path.",
        protocol="message-passing",
        num_shards=3,
        replicas_per_shard=3,
        latency=WAN_THREE_REGIONS,
        workload=WorkloadSpec(kind="uniform", txns=150, batch=10, num_keys=192),
    )
)

register_scenario(
    ScenarioSpec(
        name="wan-cross-region-contention",
        description="Zipf-skewed load hammering hot keys across the 3-region "
        "WAN: conflicting transactions race over slow links, so aborts rise "
        "with the inter-region delay.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        latency=WAN_THREE_REGIONS,
        workload=WorkloadSpec(kind="zipfian", txns=120, batch=10, num_keys=48, theta=1.2),
    )
)

register_scenario(
    ScenarioSpec(
        name="wan-leader-crash",
        description="A shard leader crashes mid-workload on the 3-region WAN; "
        "reconfiguration and coordinator recovery pay cross-region delays, "
        "so the stall is far longer than in the unit-latency variant.  A "
        "certify request still in flight to the crashed coordinator (a "
        "multi-delay window here, unlike under unit latency) would be lost "
        "by a fire-and-forget client; the session layer re-submits it to a "
        "different coordinator after the timeout, so the run must finish "
        "with zero undecided transactions.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        latency=WAN_THREE_REGIONS,
        workload=WorkloadSpec(kind="uniform", txns=100, batch=8, num_keys=128),
        retry=RetrySpec(timeout=80.0, backoff=2.0, max_attempts=4),
        faults=(
            FaultStep(at=120.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=125.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=300.5, action="retry-stalled"),
            FaultStep(at=500.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="wan-heavy-tail",
        description="Heavy-tail ablation: every link draws log-normal delays "
        "with the same 2-delay mean but sigma=1.2, so p99 latency blows up "
        "while mean throughput only halves — compare against "
        "latency=fixed:value=2.",
        protocol="message-passing",
        num_shards=3,
        replicas_per_shard=2,
        latency=LatencySpec(model="lognormal", mean=2.0, sigma=1.2),
        workload=WorkloadSpec(kind="uniform", txns=150, batch=10, num_keys=192),
    )
)

# ----------------------------------------------------------------------
# the resilience pack: client sessions with timeout-driven re-submission,
# coordinator failover and duplicate-safe certification.
# ----------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="coordinator-crash-storm",
        description="Coordinators die in waves: two followers (the default "
        "coordinator picks for the other shard's transactions) and then a "
        "leader crash in sequence, each followed by a reconfiguration.  "
        "Client sessions time out, fail over to untried coordinators and "
        "re-drive everything: the run must finish with zero undecided "
        "transactions.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        retry=RetrySpec(timeout=30.0, backoff=1.5, max_attempts=6),
        faults=(
            FaultStep(at=20.5, action="crash-follower", shard="shard-0"),
            FaultStep(at=22.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=40.5, action="crash-follower", shard="shard-1"),
            FaultStep(at=42.5, action="reconfigure", shard="shard-1"),
            FaultStep(at=60.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=62.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=120.5, action="retry-stalled"),
            FaultStep(at=180.5, action="retry-stalled"),
            FaultStep(at=240.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="failover-under-wan-tail",
        description="Coordinator failover across the 3-region WAN: a "
        "follower (serving as coordinator) and a shard leader crash while "
        "every retry pays cross-region delays and jitter.  Sessions must "
        "route around both crashes without orphaning a single transaction.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        latency=WAN_THREE_REGIONS,
        workload=WorkloadSpec(kind="uniform", txns=100, batch=8, num_keys=128),
        retry=RetrySpec(timeout=100.0, backoff=2.0, max_attempts=4),
        faults=(
            FaultStep(at=100.5, action="crash-follower", shard="shard-1"),
            FaultStep(at=105.5, action="reconfigure", shard="shard-1"),
            FaultStep(at=160.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=165.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=400.5, action="retry-stalled"),
            FaultStep(at=650.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="duplicate-delivery-fuzz",
        description="Duplicate-delivery fuzz: the session timeout (3 delays) "
        "sits below the ~6-delay commit path, so nearly every transaction is "
        "re-submitted — often several times, to several coordinators — while "
        "the original request is still in flight.  Dedup at the coordinators "
        "must re-answer from decision caches: the online checker verifies "
        "decision uniqueness and serializability under the duplicate storm.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=2,
        workload=WorkloadSpec(kind="uniform", txns=100, batch=10, num_keys=128),
        retry=RetrySpec(timeout=3.0, backoff=1.0, max_attempts=8),
    )
)

# ----------------------------------------------------------------------
# the batching pack: protocol-level request batching under saturation.
# ----------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="batch-saturation",
        description="Heavy open load with adaptive batching (size cap 32): "
        "coordinators coalesce the certify fan-out of each 50-transaction "
        "wave into per-shard batches, shard leaders certify whole batches "
        "in one pass, and the online checker verifies the history is "
        "indistinguishable from the unbatched protocol's.",
        protocol="message-passing",
        num_shards=4,
        replicas_per_shard=2,
        workload=WorkloadSpec(kind="uniform", txns=400, batch=50, num_keys=1024),
        batch=BatchSpec(size=32),
    )
)

register_scenario(
    ScenarioSpec(
        name="batch-vs-unbatched-wan",
        description="Time-cap batching on the 3-region WAN: coordinators "
        "linger 1 delay (a fraction of the 3-5-delay cross-region links) to "
        "amortise the certification fan-out, trading bounded queue_wait for "
        "fewer cross-region messages.  Compare against the same spec with "
        "batch=BatchSpec() — the differential tests assert both runs pass "
        "the online checker and that batching cuts messages sent.",
        protocol="message-passing",
        num_shards=3,
        replicas_per_shard=3,
        latency=WAN_THREE_REGIONS,
        workload=WorkloadSpec(kind="uniform", txns=150, batch=15, num_keys=256),
        batch=BatchSpec(size=16, linger=1.0, adaptive=False),
    )
)

# ----------------------------------------------------------------------
# the network pack: finite-bandwidth FIFO links with per-message overhead.
# ----------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="bandwidth-knee",
        description="Batching against a constrained link: every channel "
        "serializes at 1000 bytes/delay with a 0.4-delay per-message "
        "overhead, so tiny batches pay the overhead once per message while "
        "huge batches head-of-line-block the FIFO behind their own bytes.  "
        "Sweeping --batch over this spec traces the non-monotone "
        "latency/throughput knee; the benchmark harness pins its location.",
        protocol="message-passing",
        num_shards=4,
        replicas_per_shard=2,
        workload=WorkloadSpec(kind="uniform", txns=200, batch=50, num_keys=512),
        batch=BatchSpec(size=4),
        network=NetworkSpec(bandwidth=1000.0, overhead=0.4),
    )
)

register_scenario(
    ScenarioSpec(
        name="saturated-link",
        description="A link slow enough to saturate: 120 bytes/delay means a "
        "single certify fan-out wave queues several transmissions deep "
        "behind each channel, so queue wait — not propagation — dominates "
        "the commit path.  Unit propagation keeps the scenario eligible for "
        "--parallel-shards, where the queueing delays only ever push "
        "deliveries later than the lookahead bound, never earlier.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=2,
        workload=WorkloadSpec(kind="uniform", txns=150, batch=10, num_keys=192),
        network=NetworkSpec(bandwidth=120.0, overhead=0.1),
    )
)

# ----------------------------------------------------------------------
# the snapshot-read pack: lease-guarded MVCC reads bypassing certification.
# ----------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="read-heavy-steady-state",
        description="YCSB-B-style 90% read mix with the snapshot-read fast "
        "path: single-key read-only transactions go straight to the shard "
        "leader's leased MVCC store (no coordinator, no certification); "
        "reads that race a prepared write or an unleased leader fall back "
        "to the certified path, and the online checker validates the "
        "combined history.",
        protocol="message-passing",
        num_shards=4,
        replicas_per_shard=2,
        workload=WorkloadSpec(
            kind="uniform", txns=200, batch=10, num_keys=256, read_ratio=0.9
        ),
        read=ReadSpec(mode="snapshot"),
    )
)

register_scenario(
    ScenarioSpec(
        name="stale-lease-ablation",
        description="Why leases and the pending-writer guard matter: shard-0's "
        "leader never receives its lease grant (blocked channel) and learns "
        "decisions late (delayed channels from the coordinating shard-1 "
        "members), yet the broken-snapshot policy serves reads anyway — a "
        "read observes a pre-write version after the write's decision was "
        "externalised, and the checker flags the conflict/real-time cycle.  "
        "This scenario is EXPECTED to be unsafe; flip read.mode to "
        "'snapshot' and the same schedule is refused into safe fallbacks.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=2,
        workload=WorkloadSpec(
            kind="uniform", txns=120, batch=10, num_keys=16,
            reads_per_txn=1, writes_per_txn=1, read_ratio=0.6,
        ),
        read=ReadSpec(mode="broken-snapshot", lease=10.0),
        faults=(
            # Shape the stale window before any transaction is submitted:
            # decisions (and everything else) from shard-1's members — the
            # coordinators of shard-0-touching transactions — reach shard-0's
            # leader 8 delays late, while clients learn them on time; the
            # leader's lease grant never arrives at all.
            FaultStep(at=0.0, action="delay-channel",
                      src="member:shard-1:0", dst="leader:shard-0", delay=8.0),
            FaultStep(at=0.0, action="delay-channel",
                      src="member:shard-1:1", dst="leader:shard-0", delay=8.0),
            FaultStep(at=0.0, action="block-channel",
                      src="config-service", dst="leader:shard-0"),
        ),
        expect_safe=False,
    )
)

register_scenario(
    ScenarioSpec(
        name="baseline-steady-state",
        description="The vanilla 2PC-over-Paxos baseline (2f+1 replicas) on the "
        "steady-state workload, for cost comparisons.",
        protocol="2pc-paxos",
        num_shards=2,
        replicas_per_shard=3,
        workload=WorkloadSpec(kind="uniform", txns=100, batch=10, num_keys=128),
    )
)

register_scenario(
    ScenarioSpec(
        name="ablation-safety-demo",
        description="The Figure 4a counter-example: the naive RDMA + per-shard "
        "reconfiguration combination externalises two contradictory decisions "
        "for one spanning transaction.  This scenario is EXPECTED to be unsafe.",
        protocol="broken-rdma",
        num_shards=3,
        replicas_per_shard=2,
        seed=51,
        workload=WorkloadSpec(kind="spanning", txns=1, batch=1, coordinator="member:shard-2:0"),
        faults=(
            # Shape the adversarial schedule before the transaction starts:
            # the coordinator's ACCEPT to shard-1's follower crawls, and the
            # configuration service's updates to the coordinator crawl more.
            FaultStep(at=0.0, action="delay-channel",
                      src="member:shard-2:0", dst="follower:shard-1", delay=60.0),
            FaultStep(at=0.0, action="delay-channel",
                      src="config-service", dst="member:shard-2:0", delay=500.0),
            # Crash shard-1's leader once the transaction is prepared there,
            # reconfigure the shard past it, then let shard-0's leader
            # re-drive the stalled transaction with a stale view.
            FaultStep(at=10.5, action="crash-leader", shard="shard-1"),
            FaultStep(at=10.6, action="reconfigure", shard="shard-1",
                      target="follower:shard-1"),
            FaultStep(at=40.5, action="retry-stalled", target="leader:shard-0"),
        ),
        check_invariants=False,
        expect_safe=False,
    )
)

# ----------------------------------------------------------------------
# the failure-detector pack: heartbeat-driven unsolicited view changes.
# ----------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="detector-leader-crash",
        description="Detector-driven failover: shard-0's leader crashes and "
        "NO manual reconfigure step follows — the co-members' heartbeat "
        "detectors must suspect the silence, report to the configuration "
        "service, and drive an unsolicited view change that installs a new "
        "leader well before the 30-delay retry timeout would have.  The "
        "service pushes CONFIG_CHANGE to the sessions, which re-route "
        "in-flight transactions off the dead coordinator immediately; the "
        "run must end with zero undecided transactions.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        retry=RetrySpec(timeout=30.0, backoff=1.5, max_attempts=6),
        detector=DetectorSpec(interval=2.0, threshold=3),
        faults=(
            FaultStep(at=20.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=120.5, action="retry-stalled"),
            FaultStep(at=180.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="timeout-failover-leader-crash",
        description="The timeout-driven control for detector-leader-crash: "
        "the same workload and the same leader crash, but no detector — the "
        "deployment only recovers when the operator-style reconfigure step "
        "fires a full retry window (30 delays) after the crash.  Comparing "
        "this run's time-to-recovery against detector-leader-crash is the "
        "detector-vs-timeout tradeoff in one number.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        retry=RetrySpec(timeout=30.0, backoff=1.5, max_attempts=6),
        faults=(
            FaultStep(at=20.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=50.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=120.5, action="retry-stalled"),
            FaultStep(at=180.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="gray-failure-slow-leader",
        description="Gray failure: shard-0's leader stays alive but its "
        "outbound links to both co-members crawl (8 delays), so heartbeats "
        "arrive long past the suspicion threshold.  A bounded-timeout "
        "detector cannot tell slow from dead: the followers suspect, the "
        "service deposes the slow leader through the CAS path, and the "
        "epoch fence on its read lease keeps it from serving stale "
        "snapshots from the old configuration.  Late heartbeats that land "
        "after the suspicion count as false suspicions — the flapping "
        "signal the phi-accrual mode is designed to damp.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        retry=RetrySpec(timeout=30.0, backoff=1.5, max_attempts=6),
        detector=DetectorSpec(interval=2.0, threshold=3),
        faults=(
            FaultStep(at=0.0, action="delay-channel",
                      src="leader:shard-0", dst="follower:shard-0", delay=8.0),
            FaultStep(at=0.0, action="delay-channel",
                      src="leader:shard-0", dst="member:shard-0:2", delay=8.0),
            FaultStep(at=120.5, action="retry-stalled"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="flapping-detector",
        description="A lossy link, not a dead process: the leader's "
        "heartbeats to one co-member are blocked for 30 delays and then "
        "heal.  With confirmations=2 the single suspecting observer cannot "
        "convince the configuration service (one reporter < quorum), so no "
        "view change fires; when the link heals, the next heartbeat refutes "
        "the suspicion and is counted as a false suspicion.  The run must "
        "keep epoch 1 everywhere and decide every transaction.",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        workload=WorkloadSpec(kind="uniform", txns=120, batch=8, num_keys=128),
        retry=RetrySpec(timeout=30.0, backoff=1.5, max_attempts=6),
        detector=DetectorSpec(interval=2.0, threshold=3, confirmations=2),
        faults=(
            FaultStep(at=0.0, action="block-channel",
                      src="leader:shard-0", dst="follower:shard-0"),
            FaultStep(at=30.5, action="heal"),
        ),
    )
)
