"""Compiling declarative :class:`LatencySpec` values into runtime models.

The scenario layer describes delay distributions as data (frozen
:class:`~repro.scenarios.spec.LatencySpec` values inside a
:class:`~repro.scenarios.spec.ScenarioSpec`); the runtime layer consumes
strategy objects (:class:`~repro.runtime.network.LatencyModel`).  This
module is the bridge: :func:`compile_latency_model` turns the former into
the latter, and :func:`parse_latency` turns the CLI's compact point syntax
(``lognormal:mean=2,sigma=0.8``) into specs for the sweep driver.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.runtime.network import (
    ExponentialLatency,
    JitteredLatency,
    LatencyModel,
    LognormalLatency,
    RegionLatency,
    UniformLatency,
    UnitLatency,
)
from repro.scenarios.spec import LatencySpec, ScenarioError


def compile_latency_model(spec: LatencySpec) -> LatencyModel:
    """A concrete :class:`LatencyModel` realising ``spec`` (validated)."""
    spec.validate()
    if spec.model == "unit":
        return UnitLatency()
    if spec.model == "fixed":
        base: LatencyModel = UnitLatency(spec.value)
    elif spec.model == "uniform":
        base = UniformLatency(spec.low, spec.high)
    elif spec.model == "lognormal":
        base = LognormalLatency(mean=spec.mean, sigma=spec.sigma)
    elif spec.model == "exponential":
        base = ExponentialLatency(mean=spec.mean)
    else:  # regions — validate() rejects anything else
        inter: Dict[Tuple[str, str], float] = {}
        for src, dst, delay in spec.links:
            inter[(src, dst)] = delay
            # A link listed in one direction only is symmetric.
            inter.setdefault((dst, src), delay)
        base = RegionLatency(
            regions=spec.regions,
            intra=spec.intra,
            inter=inter,
            placement=dict(spec.placement),
        )
    if spec.jitter:
        base = JitteredLatency(base, spec.jitter)
    return base


# Float-valued LatencySpec fields settable from the CLI point syntax; the
# regions form carries tuples and is built in Python (or the library), not
# parsed from a one-liner.
# Keys outside the chosen model's set are rejected rather than ignored: a
# mistyped point (``fixed:mean=2``) must fail loudly, not run the sweep
# with a silently-defaulted parameter.  Every model but unit additionally
# accepts "jitter".
_MODEL_FIELDS: Dict[str, Tuple[str, ...]] = {
    "unit": (),
    "fixed": ("value",),
    "uniform": ("low", "high"),
    "lognormal": ("mean", "sigma"),
    "exponential": ("mean",),
    "regions": ("intra",),
}


def parse_latency(text: str) -> LatencySpec:
    """Parse one CLI latency point: ``model[:key=value[,key=value...]]``.

    Examples: ``unit``, ``fixed:value=2``, ``uniform:low=0.5,high=1.5``,
    ``lognormal:mean=2,sigma=0.8,jitter=0.1``.
    """
    model, _, params_text = text.strip().partition(":")
    allowed = _MODEL_FIELDS.get(model)
    if allowed is None:
        raise ScenarioError(
            f"unknown latency model {model!r}; expected one of {tuple(_MODEL_FIELDS)}"
        )
    if model != "unit":
        allowed = allowed + ("jitter",)
    overrides: Dict[str, float] = {}
    for part in filter(None, (p.strip() for p in params_text.split(","))):
        key, sep, value_text = part.partition("=")
        if not sep:
            raise ScenarioError(f"bad latency parameter {part!r}; expected key=value")
        if key not in allowed:
            raise ScenarioError(
                f"latency parameter {key!r} does not apply to model {model!r}; "
                f"allowed: {allowed or '(none)'}"
            )
        try:
            overrides[key] = float(value_text)
        except ValueError:
            raise ScenarioError(
                f"bad latency parameter {part!r}: {value_text!r} is not a number"
            ) from None
    spec = LatencySpec(model=model, **overrides)
    spec.validate()
    return spec
