"""Metrics and experiment reporting helpers."""

from repro.analysis.metrics import (
    LatencySummary,
    summarize,
    leader_load,
    messages_per_transaction,
    format_table,
    ExperimentReport,
)

__all__ = [
    "LatencySummary",
    "summarize",
    "leader_load",
    "messages_per_transaction",
    "format_table",
    "ExperimentReport",
]
