"""Measurement helpers used by the benchmark harness.

The paper's quantitative claims are expressed in *message delays* and in
*messages handled per transaction by a shard leader*; the helpers here turn
the raw simulation output (virtual-time latencies and per-process message
counters) into those units and format the comparison tables that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (in message delays)."""

    count: int
    mean: float
    median: float
    p99: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> LatencySummary:
    """Summarise a latency sample; raises on an empty sample."""
    sample = sorted(values)
    if not sample:
        raise ValueError("cannot summarise an empty sample")
    return LatencySummary(
        count=len(sample),
        mean=statistics.fmean(sample),
        median=statistics.median(sample),
        p99=percentile(sample, 0.99),
        minimum=sample[0],
        maximum=sample[-1],
    )


def percentile(sorted_sample: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_sample:
        raise ValueError("empty sample")
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    rank = max(0, min(len(sorted_sample) - 1, round(fraction * (len(sorted_sample) - 1))))
    return sorted_sample[rank]


def leader_load(stats, leaders: Sequence[str], num_transactions: int) -> float:
    """Average messages handled (sent + received) per transaction per leader."""
    if num_transactions <= 0 or not leaders:
        return 0.0
    total = sum(stats.handled_by(pid) for pid in leaders)
    return total / (num_transactions * len(leaders))


def messages_per_transaction(stats, num_transactions: int) -> float:
    """Total messages sent in the system per transaction."""
    if num_transactions <= 0:
        return 0.0
    return stats.total_sent / num_transactions


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table used by benchmarks to print paper-style rows."""
    columns = [str(h) for h in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class ExperimentReport:
    """A named table of results, printable by the benchmark harness."""

    experiment: str
    claim: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        body = format_table(self.headers, self.rows)
        return f"\n=== {self.experiment} ===\nClaim: {self.claim}\n{body}\n"

    def print(self) -> None:  # pragma: no cover - console output
        print(self.render())
