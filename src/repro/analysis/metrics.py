"""Measurement helpers used by the benchmark harness.

The paper's quantitative claims are expressed in *message delays* and in
*messages handled per transaction by a shard leader*; the helpers here turn
the raw simulation output (virtual-time latencies and per-process message
counters) into those units and format the comparison tables that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (in message delays)."""

    count: int
    mean: float
    median: float
    p99: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> LatencySummary:
    """Summarise a latency sample; raises on an empty sample."""
    sample = sorted(values)
    if not sample:
        raise ValueError("cannot summarise an empty sample")
    return LatencySummary(
        count=len(sample),
        mean=statistics.fmean(sample),
        median=statistics.median(sample),
        p99=percentile(sample, 0.99),
        minimum=sample[0],
        maximum=sample[-1],
    )


def percentile(sorted_sample: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_sample:
        raise ValueError("empty sample")
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    rank = max(0, min(len(sorted_sample) - 1, round(fraction * (len(sorted_sample) - 1))))
    return sorted_sample[rank]


# The phases of one transaction's client-observed latency; each name keys
# the per-phase sample lists produced by ``Cluster.phase_samples()``.
PHASES = ("submit_to_certify", "queue_wait", "certify_to_decide", "decide_to_client")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Client latency split along the commit path.

    * ``submit_to_certify`` — the client's request travelling to the
      coordinator (pure network cost: one message delay under the unit
      model, a distribution draw otherwise);
    * ``queue_wait`` — the request sitting in the coordinator's pending
      batch before the PREPARE fan-out is flushed (0 on the unbatched path
      and under adaptive batching, which flushes within the instant; up to
      the linger under time-cap batching);
    * ``certify_to_decide`` — the coordinator driving certification to a
      decision (the protocol's critical path — the paper's 3-delay claim
      lives here);
    * ``decide_to_client`` — the decision travelling back to the client.

    Separating the phases lets latency and batch sweeps tell protocol cost
    from network and queueing cost: a model that doubles mean link delay
    should double the network phases but scale the certify phase by the
    critical path's message-delay count, while a longer batch linger shows
    up in ``queue_wait`` alone.
    """

    submit_to_certify: Optional[LatencySummary]
    certify_to_decide: Optional[LatencySummary]
    decide_to_client: Optional[LatencySummary]
    queue_wait: Optional[LatencySummary] = None

    def as_dict(self) -> Dict[str, Optional[Dict[str, float]]]:
        return {
            name: summary.as_dict() if summary is not None else None
            for name in PHASES
            for summary in (getattr(self, name),)
        }


def phase_breakdown(samples: Mapping[str, Sequence[float]]) -> PhaseBreakdown:
    """Summarise per-phase latency samples (missing/empty phases are None)."""
    return PhaseBreakdown(
        **{
            name: summarize(samples[name]) if samples.get(name) else None
            for name in PHASES
        }
    )


def collect_phase_samples(clients, entries: Mapping) -> Dict[str, List[float]]:
    """Split client-observed latencies into the :data:`PHASES`.

    ``clients`` expose ``submit_times`` / ``decide_times`` per transaction;
    ``entries`` maps transactions to coordinator entries with ``started_at``
    / ``decided_at`` — the shape both the reconfigurable cluster and the
    2PC-over-Paxos baseline provide, so the phase definitions live in one
    place and cannot drift between them.  Entries carrying a
    ``dispatched_at`` stamp (set when the batching layer flushed the
    transaction's last PREPARE) additionally yield a ``queue_wait`` sample;
    their certify phase starts at the flush, keeping queueing delay out of
    the protocol-cost phase.
    """
    samples: Dict[str, List[float]] = {name: [] for name in PHASES}
    for client in clients:
        for txn, decide_time in client.decide_times.items():
            entry = entries.get(txn)
            if entry is None or entry.decided_at is None:
                continue
            samples["submit_to_certify"].append(
                entry.started_at - client.submit_times[txn]
            )
            dispatched = getattr(entry, "dispatched_at", None)
            certify_start = entry.started_at
            if dispatched is not None:
                samples["queue_wait"].append(dispatched - entry.started_at)
                certify_start = dispatched
            samples["certify_to_decide"].append(entry.decided_at - certify_start)
            samples["decide_to_client"].append(decide_time - entry.decided_at)
    return samples


@dataclass(frozen=True)
class RetryStats:
    """Client-session resilience counters for one run.

    * ``retries`` — timeout-driven re-submissions (any coordinator);
    * ``failovers`` — re-submissions that switched to a different
      coordinator (``retries - failovers`` re-tried the same one);
    * ``pushed_failovers`` — failovers triggered by a pushed
      ``CONFIG_CHANGE`` (the session learned its coordinator was removed
      before the retry timer fired);
    * ``orphaned`` — transactions abandoned after ``max_attempts`` without a
      decision (a resilient deployment should keep this at 0);
    * ``duplicate_requests`` — duplicate ``CERTIFY`` deliveries the
      coordinators deduplicated (re-answered from decision caches instead of
      re-certifying).
    """

    retries: int = 0
    failovers: int = 0
    pushed_failovers: int = 0
    orphaned: int = 0
    duplicate_requests: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "failovers": self.failovers,
            "pushed_failovers": self.pushed_failovers,
            "orphaned": self.orphaned,
            "duplicate_requests": self.duplicate_requests,
        }


def collect_retry_stats(sessions, coordinators) -> RetryStats:
    """Aggregate retry counters from client sessions and the duplicate
    deliveries counted by coordinator-capable processes.

    ``sessions`` expose ``retries`` / ``failovers`` / ``orphaned``;
    ``coordinators`` is any iterable of processes that may carry a
    ``duplicate_certify_requests`` counter — the shape both the
    reconfigurable cluster (every replica) and the 2PC-over-Paxos baseline
    (its dedicated coordinators) provide.
    """
    return RetryStats(
        retries=sum(session.retries for session in sessions),
        failovers=sum(session.failovers for session in sessions),
        pushed_failovers=sum(session.pushed_failovers for session in sessions),
        orphaned=sum(len(session.orphaned) for session in sessions),
        duplicate_requests=sum(
            getattr(process, "duplicate_certify_requests", 0) for process in coordinators
        ),
    )


@dataclass(frozen=True)
class BatchStats:
    """Protocol-batching counters for one run.

    * ``batches`` — batch messages flushed (PREPARE, ACCEPT and DECISION
      batches alike, across every batching process);
    * ``messages`` — protocol messages those batches carried;
    * ``sizes`` — the batch-size distribution (size -> batch count), the
      saturation signal a batch sweep plots: a size histogram pinned at 1
      means the flush policy never found anything to coalesce.
    """

    batches: int = 0
    messages: int = 0
    sizes: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_size(self) -> float:
        return self.messages / self.batches if self.batches else 0.0

    @property
    def max_size(self) -> int:
        return max(self.sizes, default=0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "batches": self.batches,
            "messages": self.messages,
            "mean_size": self.mean_size,
            "max_size": self.max_size,
            "sizes": {str(size): count for size, count in sorted(self.sizes.items())},
        }


def collect_batch_stats(processes) -> BatchStats:
    """Aggregate the counters of every :class:`~repro.core.batching.
    MessageBatcher` exposed by ``processes`` (via their ``batchers`` list —
    the shape all three coordinator variants provide)."""
    batches = 0
    messages = 0
    sizes: Dict[int, int] = {}
    for process in processes:
        for batcher in getattr(process, "batchers", ()):
            batches += batcher.batches_sent
            messages += batcher.messages_batched
            for size, count in batcher.size_counts.items():
                sizes[size] = sizes.get(size, 0) + count
    return BatchStats(batches=batches, messages=messages, sizes=sizes)


@dataclass(frozen=True)
class LinkStats:
    """Link-queue counters for one run under a bandwidth-aware network
    (:class:`repro.runtime.network.LinkSpec`).

    * ``bytes_sent`` — total wire bytes offered to the network (sized
      sends, including dropped ones — the offered load);
    * ``queue_wait`` — summary of per-message queue waits (time spent
      behind earlier messages on the same directed channel), in send
      order: the congestion signal a bandwidth sweep plots;
    * ``busy_time`` — total serialization time accumulated across all
      links (overhead + bytes/bandwidth per message);
    * ``max_depth`` — the deepest any single link queue ever got.
    """

    bytes_sent: float = 0.0
    queue_wait: Optional[LatencySummary] = None
    busy_time: float = 0.0
    max_depth: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "bytes_sent": self.bytes_sent,
            "queue_wait": self.queue_wait.as_dict() if self.queue_wait else None,
            "busy_time": self.busy_time,
            "max_depth": self.max_depth,
        }


def collect_link_stats(network) -> Optional[LinkStats]:
    """Summarise a :class:`~repro.runtime.network.Network`'s link-queue
    accounting; None when no bandwidth model is installed (the pure-delay
    network keeps no byte or queue state at all)."""
    link = getattr(network, "link", None)
    if link is None or not link.enabled:
        return None
    samples = network.queue_wait_samples
    return LinkStats(
        bytes_sent=network.stats.bytes_sent,
        queue_wait=summarize(samples) if samples else None,
        busy_time=network.link_busy_time,
        max_depth=network.link_max_depth,
    )


@dataclass(frozen=True)
class SpeedupReport:
    """Wall-clock comparison of the same task set run serially and fanned
    out over a worker pool (the merge-path summary behind
    ``BENCH_parallel.json``).

    Both runs must have executed the identical task list — the parallel
    executor guarantees byte-identical results, so the only thing allowed
    to differ is the wall clock.
    """

    tasks: int
    jobs: int
    serial_wall_seconds: float
    parallel_wall_seconds: float

    @property
    def speedup(self) -> float:
        """Serial wall time over parallel wall time (1.0 = no gain)."""
        if self.parallel_wall_seconds <= 0.0:
            return float("inf")
        return self.serial_wall_seconds / self.parallel_wall_seconds

    @property
    def efficiency(self) -> float:
        """Speedup per worker (1.0 = perfect linear scaling)."""
        return self.speedup / self.jobs if self.jobs else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tasks": self.tasks,
            "jobs": self.jobs,
            "serial_wall_seconds": self.serial_wall_seconds,
            "parallel_wall_seconds": self.parallel_wall_seconds,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
        }

    def render(self) -> str:
        return (
            f"{self.tasks} tasks: serial {self.serial_wall_seconds:.2f}s, "
            f"jobs={self.jobs} {self.parallel_wall_seconds:.2f}s "
            f"-> speedup {self.speedup:.2f}x "
            f"(efficiency {self.efficiency:.0%})"
        )


def leader_load(stats, leaders: Sequence[str], num_transactions: int) -> float:
    """Average messages handled (sent + received) per transaction per leader."""
    if num_transactions <= 0 or not leaders:
        return 0.0
    total = sum(stats.handled_by(pid) for pid in leaders)
    return total / (num_transactions * len(leaders))


def messages_per_transaction(stats, num_transactions: int) -> float:
    """Total messages sent in the system per transaction."""
    if num_transactions <= 0:
        return 0.0
    return stats.total_sent / num_transactions


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table used by benchmarks to print paper-style rows."""
    columns = [str(h) for h in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class ExperimentReport:
    """A named table of results, printable by the benchmark harness."""

    experiment: str
    claim: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        body = format_table(self.headers, self.rows)
        return f"\n=== {self.experiment} ===\nClaim: {self.claim}\n{body}\n"

    def print(self) -> None:  # pragma: no cover - console output
        print(self.render())
