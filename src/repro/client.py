"""Client processes and resilient client sessions.

A client owns the ``certify``/``decide`` interface of the TCS (Section 2):
it registers the transaction's static metadata (``client(t)``, ``shards(t)``)
in the :class:`~repro.core.directory.TransactionDirectory`, records the
``certify`` event into the shared :class:`~repro.spec.history.History`,
sends the request to a replica acting as coordinator, and records the
``decide`` event when the decision message arrives.

The paper's protocol keeps certification alive across replica failures and
reconfigurations, but it says nothing about the *client* side: a certify
request in flight to a crashed coordinator is simply lost.  The session
layer here closes that gap the way production distributed-KV clients do:

* a :class:`CoordinatorRouter` is the client-side routing table — members
  and leaders per shard, updated from ``CONFIG_CHANGE`` pushes (clients
  subscribe to the configuration service) and from ``get_last`` re-reads
  triggered by timeouts;
* a :class:`ClientSession` owns one client's submissions: it picks the
  coordinator, arms a timeout per in-flight transaction, and on expiry
  re-submits — with exponential backoff, failing over to a coordinator it
  has not tried yet — until the decision arrives or
  :attr:`RetryPolicy.max_attempts` is exhausted (the transaction is then
  *orphaned* and counted as such);
* re-submissions reuse the transaction id, so delivery is idempotent:
  coordinators and replicas deduplicate on the id and re-answer from their
  decision caches (see ``on_certify_request`` in the replica modules), which
  preserves the TCS decision-uniqueness property under duplicates.

With protocol-level batching enabled (:mod:`repro.core.batching`) the
session machinery is unchanged but rides a *batched transport*: submissions
to the same coordinator coalesce into ``CertifyRequestBatch`` messages and
decisions return in ``TxnDecisionBatch`` replies.  Retry semantics stay
per-transaction — each submission arms its own timeout when it is handed to
the transport (so client-side queueing counts against the timeout, as it
should), and a re-submission simply joins whatever batch its possibly
different coordinator is currently filling, where the id-based dedup
answers it like any other duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.batching import BatchPolicy, MessageBatcher
from repro.core.certification import CertificationScheme
from repro.core.directory import TransactionDirectory
from repro.core.messages import (
    CertifyRequest,
    CertifyRequestBatch,
    ConfigChange,
    CsGetLast,
    CsReply,
    ReadReply,
    ReadRequest,
    TxnDecision,
    TxnDecisionBatch,
)
from repro.core.serializability import SnapshotRead, TransactionPayload
from repro.core.types import Decision, GlobalConfiguration, ShardId, TxnId
from repro.runtime.process import Process
from repro.spec.history import History


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side re-submission policy.

    ``timeout`` is the virtual time (in message delays) a session waits for
    a decision before re-submitting; 0 disables re-submission entirely (the
    pre-session fire-and-forget behaviour).  Each further attempt multiplies
    the wait by ``backoff``; after ``max_attempts`` total submissions the
    transaction is abandoned and counted as orphaned.
    """

    timeout: float = 0.0
    backoff: float = 2.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError("retry timeout must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("retry backoff must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("retry max_attempts must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.timeout > 0

    def delay(self, attempt: int) -> float:
        """The timeout armed after submission ``attempt`` (1-based)."""
        return self.timeout * (self.backoff ** (attempt - 1))


class CoordinatorRouter:
    """Client-side view of the cluster topology used to pick coordinators.

    Mirrors the paper's Figure 2 placement: the coordinator of a transaction
    is preferably a member of a shard *not* involved in it.  The router is
    shared by every session of a cluster (one round-robin sequence), knows
    only what a real client could know — the bootstrap configurations plus
    whatever ``CONFIG_CHANGE`` pushes and ``get_last`` replies have taught
    it — and never peeks at live process state.
    """

    def __init__(
        self,
        shards: Sequence[ShardId],
        members: Mapping[ShardId, Tuple[str, ...]],
        leaders: Optional[Mapping[ShardId, str]] = None,
        epochs: Optional[Mapping[ShardId, int]] = None,
        sticky: bool = False,
    ) -> None:
        self.shards: List[ShardId] = list(shards)
        self.members: Dict[ShardId, Tuple[str, ...]] = {
            shard: tuple(pids) for shard, pids in members.items()
        }
        self.leaders: Dict[ShardId, str] = dict(leaders or {})
        self.epochs: Dict[ShardId, int] = dict(epochs or {})
        # Sticky affinity: pin each involved-shard set to one coordinator so
        # its batches fill deeper; re-pins on failover (exclusion) and drops
        # pins to members removed by a configuration change.
        self.sticky = sticky
        self._pins: Dict[Tuple[ShardId, ...], str] = {}
        self._round_robin = 0
        self.config_updates = 0
        # Sessions register here to learn about accepted configuration
        # changes synchronously (push-driven failover: re-submit to a new
        # coordinator *before* the retry timer fires).
        self._listeners: List[Callable[[ShardId, frozenset, str], None]] = []

    def add_listener(self, fn: Callable[[ShardId, frozenset, str], None]) -> None:
        """Call ``fn(shard, removed_members, new_leader)`` whenever a newer
        configuration of ``shard`` is installed."""
        self._listeners.append(fn)

    def note_config_change(
        self, shard: ShardId, epoch: int, members: Sequence[str], leader: str
    ) -> None:
        """Install a (possibly newer) configuration of ``shard``."""
        if epoch < self.epochs.get(shard, 0):
            return
        removed = frozenset(self.members.get(shard, ())) - frozenset(members)
        self.epochs[shard] = epoch
        self.members[shard] = tuple(members)
        self.leaders[shard] = leader
        if removed and self._pins:
            self._pins = {
                key: pid for key, pid in self._pins.items() if pid not in removed
            }
        self.config_updates += 1
        for listener in self._listeners:
            listener(shard, removed, leader)

    def candidates(self, involved: Sequence[ShardId]) -> List[str]:
        """Coordinator candidates for a transaction over ``involved`` shards,
        preferring members of uninvolved shards (Figure 2)."""
        involved = sorted(involved) or self.shards[:1]
        uninvolved = [shard for shard in self.shards if shard not in involved]
        out: List[str] = []
        for shard in uninvolved or involved:
            out.extend(self.members.get(shard, ()))
        return out

    def pick(self, involved: Sequence[ShardId], exclude: Sequence[str] = ()) -> str:
        """Round-robin over the candidates, skipping already-tried ones.

        When every candidate has been tried the exclusion is dropped — with
        nothing fresh left, re-trying a previous coordinator (which may have
        merely been slow) beats giving up.
        """
        candidates = self.candidates(involved)
        fresh = [pid for pid in candidates if pid not in exclude]
        pool = fresh or candidates
        if self.sticky:
            key = tuple(sorted(involved))
            pinned = self._pins.get(key)
            if pinned is not None and pinned in pool:
                return pinned
            self._round_robin += 1
            pinned = pool[self._round_robin % len(pool)]
            self._pins[key] = pinned
            return pinned
        self._round_robin += 1
        return pool[self._round_robin % len(pool)]


class StaticRouter:
    """Router over a fixed candidate list (the 2PC-over-Paxos baseline's
    dedicated coordinator processes have no shard topology to exploit)."""

    def __init__(self, pids: Sequence[str], sticky: bool = False) -> None:
        if not pids:
            raise ValueError("a router needs at least one candidate")
        self.pids: List[str] = list(pids)
        self.sticky = sticky
        self._pins: Dict[Tuple[ShardId, ...], str] = {}
        self._round_robin = 0
        self.config_updates = 0

    def note_config_change(self, *args: Any) -> None:  # pragma: no cover - no-op
        pass

    def add_listener(self, fn: Any) -> None:  # pragma: no cover - no-op
        pass

    def pick(self, involved: Sequence[ShardId], exclude: Sequence[str] = ()) -> str:
        fresh = [pid for pid in self.pids if pid not in exclude]
        pool = fresh or self.pids
        if self.sticky:
            key = tuple(sorted(involved))
            pinned = self._pins.get(key)
            if pinned is not None and pinned in pool:
                return pinned
            self._round_robin += 1
            pinned = pool[self._round_robin % len(pool)]
            self._pins[key] = pinned
            return pinned
        self._round_robin += 1
        return pool[self._round_robin % len(pool)]


@dataclass
class _SnapshotReadState:
    """Client-side state of one in-flight snapshot read."""

    objects: Tuple[str, ...]
    shard: ShardId
    # Certified-path insurance: the read-only payload to certify if the
    # leader refuses the fast path, and a thunk picking the coordinator to
    # send it to.  The pick is deferred to refusal time — the common case
    # never pays for it, and a late pick sees the current crash state.
    fallback_payload: TransactionPayload
    pick_fallback_coordinator: Callable[[], str]


@dataclass
class _Submission:
    """Per-transaction state machine of one session submission."""

    txn: TxnId
    payload: Any
    involved: Tuple[ShardId, ...]
    attempts: int = 1
    tried: List[str] = field(default_factory=list)
    timer: Any = None


class ClientSession:
    """Owns one client's submissions: coordinator selection, timeout-driven
    re-submission with backoff and failover, and retry accounting.

    With a disabled policy (``timeout == 0``) the session still routes
    submissions through the router but never re-submits — behaviourally the
    old fire-and-forget client, plus the shared round-robin.
    """

    def __init__(
        self,
        client: "Client",
        router: CoordinatorRouter,
        scheme: CertificationScheme,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.client = client
        self.router = router
        self.scheme = scheme
        self.policy = policy or RetryPolicy()
        self._inflight: Dict[TxnId, _Submission] = {}
        self.retries = 0  # re-submissions (any coordinator)
        self.failovers = 0  # re-submissions that switched coordinator
        self.pushed_failovers = 0  # failovers driven by CONFIG_CHANGE pushes
        self.config_refreshes = 0  # get_last re-reads triggered by timeouts
        self.orphaned: List[TxnId] = []  # gave up after max_attempts
        self._last_refresh_at = float("-inf")
        client.router = router
        client.add_decision_callback(self._on_decided)
        if self.policy.enabled:
            router.add_listener(self._on_config_push)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Any,
        coordinator: Optional[str] = None,
        txn: Optional[TxnId] = None,
    ) -> TxnId:
        involved = tuple(sorted(self.scheme.shards_of(payload)))
        coordinator = coordinator or self.router.pick(involved)
        txn = self.client.submit(payload, coordinator=coordinator, txn=txn)
        if self.policy.enabled:
            state = _Submission(
                txn=txn, payload=payload, involved=involved, tried=[coordinator]
            )
            self._inflight[txn] = state
            self._arm(state)
        return txn

    def _arm(self, state: _Submission) -> None:
        # Scheduled directly (not via Process.set_timer): this is the per-
        # transaction hot path, and _on_timeout is already a no-op once the
        # transaction is decided or the client is gone.
        state.timer = self.client.scheduler.schedule(
            self.policy.delay(state.attempts), self._on_timeout, state.txn
        )

    # ------------------------------------------------------------------
    # timeout-driven re-submission
    # ------------------------------------------------------------------
    def _on_timeout(self, txn: TxnId) -> None:
        state = self._inflight.get(txn)
        if state is None:  # decided (or already orphaned) in the meantime
            return
        if state.attempts >= self.policy.max_attempts:
            del self._inflight[txn]
            self.orphaned.append(txn)
            return
        # The coordinator may be slow *or* the configuration may have moved:
        # refresh the router's whole view from the configuration service
        # (coordinator candidates come from *uninvolved* shards, so involved
        # shards alone would miss them; replies benefit subsequent picks)
        # and fail over to an untried coordinator.  At most one refresh per
        # *current* backoff window — many transactions timing out together
        # must not multiply the config-service traffic, and a late-attempt
        # timeout whose window is `delay(attempts)` long must not re-read
        # more often than once per such window (throttling by the base
        # timeout under-throttled every backed-off attempt).
        now = self.client.now
        shards = tuple(getattr(self.router, "shards", ())) or state.involved
        if (
            shards
            and now - self._last_refresh_at >= self.policy.delay(state.attempts)
            and self.client.refresh_configurations(shards)
        ):
            self._last_refresh_at = now
            self.config_refreshes += 1
        previous = state.tried[-1]
        coordinator = self.router.pick(state.involved, exclude=tuple(state.tried))
        state.attempts += 1
        state.tried.append(coordinator)
        self.retries += 1
        if coordinator != previous:
            self.failovers += 1
        self.client.resubmit(txn, state.payload, coordinator, request_id=state.attempts)
        self._arm(state)

    # ------------------------------------------------------------------
    # push-driven failover (unsolicited view changes)
    # ------------------------------------------------------------------
    def _on_config_push(self, shard: ShardId, removed: frozenset, leader: str) -> None:
        """The router accepted a newer configuration of ``shard``: fail over
        any in-flight transaction whose current coordinator was removed,
        without waiting for its (possibly heavily backed-off) retry timer.

        The deposed process may merely have been partitioned, so the
        transaction id-based dedup still protects against double answers;
        re-submitting immediately just converts the rest of the timeout
        window into saved latency.
        """
        if not removed:
            return
        for txn in list(self._inflight):
            state = self._inflight.get(txn)
            if state is None or not state.tried or state.tried[-1] not in removed:
                continue
            if state.attempts >= self.policy.max_attempts:
                continue  # the armed timer will orphan it on expiry
            if state.timer is not None:
                state.timer.cancel()
            coordinator = self.router.pick(state.involved, exclude=tuple(state.tried))
            state.attempts += 1
            state.tried.append(coordinator)
            self.retries += 1
            self.failovers += 1
            self.pushed_failovers += 1
            self.client.resubmit(
                txn, state.payload, coordinator, request_id=state.attempts
            )
            self._arm(state)

    def _on_decided(self, txn: TxnId, decision: Decision) -> None:
        state = self._inflight.pop(txn, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()
        elif state is None and txn in self.orphaned:
            # The final attempt's decision arrived after the session had
            # already given the transaction up (a heavy-tail straggler):
            # nothing was lost, so it must not count as orphaned.
            self.orphaned.remove(txn)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def attempts_of(self, txn: TxnId) -> int:
        state = self._inflight.get(txn)
        return state.attempts if state is not None else 0


class Client(Process):
    """A TCS client."""

    def __init__(
        self,
        pid: str,
        scheme: CertificationScheme,
        directory: TransactionDirectory,
        history: History,
        config_service: Optional[str] = None,
        batch: Optional[BatchPolicy] = None,
    ) -> None:
        super().__init__(pid)
        self.scheme = scheme
        self.directory = directory
        self.history = history
        self.config_service = config_service
        # Batched transport: with an enabled policy, CERTIFY requests to the
        # same coordinator coalesce into CertifyRequestBatch messages.  The
        # per-transaction session machinery (timeout timers, retry
        # accounting, dedup on the transaction id) is untouched — a retry
        # simply rides whatever batch its (possibly different) coordinator
        # is currently filling.
        self.batch_policy = batch or BatchPolicy()
        self.batchers: list = []
        if self.batch_policy.enabled:
            self._request_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=lambda items: CertifyRequestBatch(requests=items),
            )
            self.batchers = [self._request_batcher]
        # True when the configuration service stores one system-wide record
        # (the RDMA protocol): a single get_last then covers every shard.
        self.global_config_service = False
        self.router: Optional[CoordinatorRouter] = None
        self.outcomes: Dict[TxnId, Decision] = {}
        self.submit_times: Dict[TxnId, float] = {}
        self.decide_times: Dict[TxnId, float] = {}
        self.coordinator_of: Dict[TxnId, str] = {}
        self.resubmissions = 0
        self.duplicate_decisions = 0
        # Snapshot-read fast path: in-flight reads, served values and
        # fast-path/fallback accounting.
        self._read_states: Dict[TxnId, _SnapshotReadState] = {}
        # Fallback read-only payloads awaiting their certified decision;
        # attached to the decide event when the TxnDecision arrives.
        self._read_payloads: Dict[TxnId, TransactionPayload] = {}
        self.read_results: Dict[TxnId, Tuple] = {}
        self.reads_served = 0
        self.read_fallbacks = 0
        self.read_fallback_reasons: Dict[str, int] = {}
        self._txn_counter = 0
        self._cs_request_id = 0
        self._cs_pending: Dict[int, ShardId] = {}
        # Completion callbacks, fired once per transaction when its decision
        # first reaches this client.  (History-wide waiting uses
        # History.add_decide_listener; these per-client hooks are for
        # closed-loop drivers and sessions that react to their own
        # completions.)
        self._decision_callbacks: list = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def next_txn_id(self) -> TxnId:
        self._txn_counter += 1
        return f"{self.pid}/t{self._txn_counter}"

    def submit(self, payload: Any, coordinator: str, txn: Optional[TxnId] = None) -> TxnId:
        """``certify(t, l)``: submit a transaction to a coordinator replica."""
        txn = txn or self.next_txn_id()
        shards = self.scheme.shards_of(payload)
        self.directory.register(txn, client=self.pid, shards=shards)
        self.history.record_certify(txn, payload, self.now)
        self.submit_times[txn] = self.now
        self.coordinator_of[txn] = coordinator
        self._send_request(coordinator, CertifyRequest(txn=txn, payload=payload))
        return txn

    def _send_request(self, coordinator: str, request: CertifyRequest) -> None:
        if self.batch_policy.enabled:
            self._request_batcher.add(coordinator, request)
        else:
            self.send(coordinator, request)

    def submit_read(
        self,
        objects: Sequence[str],
        shard: ShardId,
        leader: str,
        fallback_payload: TransactionPayload,
        pick_fallback_coordinator: Callable[[], str],
        txn: Optional[TxnId] = None,
    ) -> TxnId:
        """Submit a single-shard read-only transaction on the snapshot-read
        fast path: straight to the shard leader, no coordinator, no
        certification.

        The history records ``certify`` now with a :class:`SnapshotRead`
        marker (pinning the transaction's real-time birth to its
        invocation); the versioned read-only payload is attached to the
        ``decide`` event once it is known.  ``fallback_payload`` (the reads
        at the client's current committed versions) and
        ``pick_fallback_coordinator`` are the certified-path insurance used
        when the leader refuses (lease lapse, pending writer, deposed
        leader); the coordinator pick only happens on refusal.
        """
        txn = txn or self.next_txn_id()
        objects = tuple(sorted(objects))
        self.directory.register(txn, client=self.pid, shards=frozenset({shard}))
        self.history.record_certify(txn, SnapshotRead(objects=objects), self.now)
        self.submit_times[txn] = self.now
        self.coordinator_of[txn] = leader
        self._read_states[txn] = _SnapshotReadState(
            objects=objects,
            shard=shard,
            fallback_payload=fallback_payload,
            pick_fallback_coordinator=pick_fallback_coordinator,
        )
        self.send(leader, ReadRequest(txn=txn, objects=objects))
        return txn

    def on_read_reply(self, msg: ReadReply, sender: str) -> None:
        state = self._read_states.pop(msg.txn, None)
        if state is None:
            return
        if msg.ok:
            self.reads_served += 1
            self.read_results[msg.txn] = msg.reads
            payload = TransactionPayload.make(
                reads=((obj, version) for obj, _value, version in msg.reads),
                tiebreak=msg.txn,
            )
            self.history.record_decide(
                msg.txn, Decision.COMMIT, self.now, payload=payload
            )
            if msg.txn not in self.outcomes:
                self.outcomes[msg.txn] = Decision.COMMIT
                self.decide_times[msg.txn] = self.now
                for callback in self._decision_callbacks:
                    callback(msg.txn, Decision.COMMIT)
            return
        # Refused fast path: certify the read-only payload instead.  The
        # certify event exists from submit_read, so only the request goes
        # out; the decide event will carry the fallback payload.
        self.read_fallbacks += 1
        self.read_fallback_reasons[msg.reason] = (
            self.read_fallback_reasons.get(msg.reason, 0) + 1
        )
        coordinator = state.pick_fallback_coordinator()
        self._read_payloads[msg.txn] = state.fallback_payload
        self.coordinator_of[msg.txn] = coordinator
        self._send_request(
            coordinator,
            CertifyRequest(txn=msg.txn, payload=state.fallback_payload),
        )

    def resubmit(
        self, txn: TxnId, payload: Any, coordinator: str, request_id: int
    ) -> None:
        """Re-send an already-certified transaction to a (possibly different)
        coordinator.  The history's certify event and the directory entry
        exist from the first submission; only the request goes out again."""
        self.coordinator_of[txn] = coordinator
        self.resubmissions += 1
        self._send_request(
            coordinator,
            CertifyRequest(txn=txn, payload=payload, request_id=request_id),
        )

    # ------------------------------------------------------------------
    # configuration knowledge (session routing support)
    # ------------------------------------------------------------------
    def refresh_configurations(self, shards: Sequence[ShardId]) -> bool:
        """Re-read the latest configuration of the given shards from the
        configuration service; replies update the router asynchronously.
        Returns False when no configuration service is wired (baseline)."""
        if self.config_service is None:
            return False
        if self.global_config_service:
            # One reply carries every shard's configuration.
            shards = tuple(shards)[:1]
        for shard in shards:
            self._cs_request_id += 1
            self._cs_pending[self._cs_request_id] = shard
            self.send(
                self.config_service,
                CsGetLast(shard=shard, request_id=self._cs_request_id),
            )
        return True

    def on_cs_reply(self, msg: CsReply, sender: str) -> None:
        shard = self._cs_pending.pop(msg.request_id, None)
        if not msg.ok or msg.config is None or self.router is None:
            return
        config = msg.config
        if isinstance(config, GlobalConfiguration):
            # The RDMA protocol's service stores one system-wide record.
            for each_shard in sorted(config.members):
                self.router.note_config_change(
                    each_shard,
                    config.epoch,
                    config.members[each_shard],
                    config.leaders[each_shard],
                )
        elif shard is not None:
            self.router.note_config_change(
                shard, config.epoch, config.members, config.leader
            )

    def on_config_change(self, msg: ConfigChange, sender: str) -> None:
        """``CONFIG_CHANGE`` pushed by the configuration service (clients
        subscribe when sessions are enabled)."""
        if self.router is not None:
            self.router.note_config_change(msg.shard, msg.epoch, msg.members, msg.leader)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def add_decision_callback(self, fn) -> None:
        """Call ``fn(txn, decision)`` when a transaction of this client is
        first decided."""
        self._decision_callbacks.append(fn)

    def remove_decision_callback(self, fn) -> None:
        self._decision_callbacks.remove(fn)

    def on_txn_decision(self, msg: TxnDecision, sender: str) -> None:
        self.history.record_decide(
            msg.txn,
            msg.decision,
            self.now,
            payload=self._read_payloads.pop(msg.txn, None),
        )
        if msg.txn not in self.outcomes:
            self.outcomes[msg.txn] = msg.decision
            self.decide_times[msg.txn] = self.now
            for callback in self._decision_callbacks:
                callback(msg.txn, msg.decision)
        else:
            # A re-answered duplicate (or a second coordinator reporting the
            # same decision); the history has already deduplicated it.
            self.duplicate_decisions += 1

    def on_txn_decision_batch(self, msg: TxnDecisionBatch, sender: str) -> None:
        for decision in msg.decisions:
            self.on_txn_decision(decision, sender)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def decision_of(self, txn: TxnId) -> Optional[Decision]:
        return self.outcomes.get(txn)

    def latency_of(self, txn: TxnId) -> Optional[float]:
        """Client-observed latency: submission to decision receipt."""
        if txn not in self.decide_times:
            return None
        return self.decide_times[txn] - self.submit_times[txn]

    @property
    def pending(self) -> set:
        return set(self.submit_times) - set(self.outcomes)
