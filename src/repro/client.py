"""Client processes: submit transactions for certification and record history.

A client owns the ``certify``/``decide`` interface of the TCS (Section 2):
it registers the transaction's static metadata (``client(t)``, ``shards(t)``)
in the :class:`~repro.core.directory.TransactionDirectory`, records the
``certify`` event into the shared :class:`~repro.spec.history.History`,
sends the request to a replica acting as coordinator, and records the
``decide`` event when the decision message arrives.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.certification import CertificationScheme
from repro.core.directory import TransactionDirectory
from repro.core.messages import CertifyRequest, TxnDecision
from repro.core.types import Decision, TxnId
from repro.runtime.process import Process
from repro.spec.history import History


class Client(Process):
    """A TCS client."""

    def __init__(
        self,
        pid: str,
        scheme: CertificationScheme,
        directory: TransactionDirectory,
        history: History,
    ) -> None:
        super().__init__(pid)
        self.scheme = scheme
        self.directory = directory
        self.history = history
        self.outcomes: Dict[TxnId, Decision] = {}
        self.submit_times: Dict[TxnId, float] = {}
        self.decide_times: Dict[TxnId, float] = {}
        self.coordinator_of: Dict[TxnId, str] = {}
        self._txn_counter = 0
        # Completion callbacks, fired once per transaction when its decision
        # first reaches this client.  (History-wide waiting uses
        # History.add_decide_listener; these per-client hooks are for
        # closed-loop drivers that react to their own completions.)
        self._decision_callbacks: list = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def next_txn_id(self) -> TxnId:
        self._txn_counter += 1
        return f"{self.pid}/t{self._txn_counter}"

    def submit(self, payload: Any, coordinator: str, txn: Optional[TxnId] = None) -> TxnId:
        """``certify(t, l)``: submit a transaction to a coordinator replica."""
        txn = txn or self.next_txn_id()
        shards = self.scheme.shards_of(payload)
        self.directory.register(txn, client=self.pid, shards=shards)
        self.history.record_certify(txn, payload, self.now)
        self.submit_times[txn] = self.now
        self.coordinator_of[txn] = coordinator
        self.send(coordinator, CertifyRequest(txn=txn, payload=payload))
        return txn

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def add_decision_callback(self, fn) -> None:
        """Call ``fn(txn, decision)`` when a transaction of this client is
        first decided."""
        self._decision_callbacks.append(fn)

    def remove_decision_callback(self, fn) -> None:
        self._decision_callbacks.remove(fn)

    def on_txn_decision(self, msg: TxnDecision, sender: str) -> None:
        self.history.record_decide(msg.txn, msg.decision, self.now)
        if msg.txn not in self.outcomes:
            self.outcomes[msg.txn] = msg.decision
            self.decide_times[msg.txn] = self.now
            for callback in self._decision_callbacks:
                callback(msg.txn, msg.decision)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def decision_of(self, txn: TxnId) -> Optional[Decision]:
        return self.outcomes.get(txn)

    def latency_of(self, txn: TxnId) -> Optional[float]:
        """Client-observed latency: submission to decision receipt."""
        if txn not in self.decide_times:
            return None
        return self.decide_times[txn] - self.submit_times[txn]

    @property
    def pending(self) -> set:
        return set(self.submit_times) - set(self.outcomes)
