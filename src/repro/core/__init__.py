"""Core message-passing TCS protocol (paper Section 3, Figure 1).

The public pieces are:

* :mod:`repro.core.types` — transaction identifiers, decisions, phases,
  configurations;
* :mod:`repro.core.certification` — the certification-function framework
  (global ``f``, shard-local ``f_s`` and ``g_s``) the protocol is
  parametric in;
* :mod:`repro.core.serializability` — the serializability instantiation of
  Section 2 (read/write-set payloads with versions);
* :mod:`repro.core.replica` — the shard replica process implementing
  Figure 1 (prepare/accept/decide, coordinator duties, reconfiguration).
"""

from repro.core.types import (
    Decision,
    Phase,
    Status,
    Configuration,
    TxnId,
    ShardId,
    BOTTOM,
)
from repro.core.certification import CertificationScheme
from repro.core.serializability import (
    TransactionPayload,
    SerializabilityScheme,
    SnapshotIsolationScheme,
    KeyHashSharding,
)
from repro.core.replica import ShardReplica
from repro.core.directory import TransactionDirectory

__all__ = [
    "Decision",
    "Phase",
    "Status",
    "Configuration",
    "TxnId",
    "ShardId",
    "BOTTOM",
    "CertificationScheme",
    "TransactionPayload",
    "SerializabilityScheme",
    "SnapshotIsolationScheme",
    "KeyHashSharding",
    "ShardReplica",
    "TransactionDirectory",
]
