"""Incremental vote computation for shard leaders.

Figure 1 (line 12) has a leader vote on each new transaction against the
payloads of every committed and every prepared-to-commit slot in its
certification order.  Scanning the order per ``PREPARE`` costs O(slots),
which makes long simulations quadratic in the transaction count — the
dominant cost in steady-state workloads.

:class:`LeaderVoteCache` wraps a scheme-provided
:class:`~repro.core.certification.VoteIndex` and keeps it in sync with the
replica's slot arrays:

* votes for new slots consult the index (O(|payload|));
* slot phase transitions (prepared -> decided) update it incrementally;
* any bulk state change (``NEW_STATE`` transfer, one-sided RDMA writes into
  the arrays, leadership changes) simply *invalidates* the cache, which is
  rebuilt from the arrays on the next vote — correctness never depends on
  catching every mutation incrementally.

When the scheme offers no index (``make_vote_index`` returns None) the
cache transparently falls back to the historical full scan, so custom
certification schemes keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from repro.core.certification import VoteIndex
from repro.core.types import Decision, Phase


class LeaderVoteCache:
    """Keeps a :class:`VoteIndex` consistent with a replica's slot arrays."""

    def __init__(self, replica: Any) -> None:
        self._replica = replica
        self._index: Optional[VoteIndex] = None
        self._dirty = True
        # Slots whose payload the index currently counts in each set; used
        # to keep incremental updates idempotent.
        self._prepared_slots: Set[int] = set()
        self._committed_slots: Set[int] = set()

    # ------------------------------------------------------------------
    # cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the index; it is rebuilt from the arrays on the next vote."""
        self._dirty = True
        self._index = None
        self._prepared_slots.clear()
        self._committed_slots.clear()

    def _rebuild(self) -> None:
        replica = self._replica
        self._dirty = False
        self._index = replica.scheme.make_vote_index(replica.shard)
        self._prepared_slots.clear()
        self._committed_slots.clear()
        if self._index is None:
            return
        for slot, payload in replica.payload_arr.items():
            phase = replica.phase_arr.get(slot)
            if (
                phase is Phase.DECIDED
                and replica.dec_arr.get(slot) is Decision.COMMIT
            ):
                self._index.add_committed(payload)
                self._committed_slots.add(slot)
            elif (
                phase is Phase.PREPARED
                and replica.vote_arr.get(slot) is Decision.COMMIT
            ):
                self._index.add_prepared(payload)
                self._prepared_slots.add(slot)

    # ------------------------------------------------------------------
    # voting
    # ------------------------------------------------------------------
    def vote(self, slot: int, payload: Any) -> Decision:
        """The vote for ``payload`` entering the order at ``slot``.

        Must be called before the payload is stored in ``payload_arr`` (the
        new slot itself must not be certified against).
        """
        if self._dirty:
            self._rebuild()
        if self._index is None:
            return self._scan_vote(slot, payload)
        return self._index.vote(payload)

    def _scan_vote(self, slot: int, payload: Any) -> Decision:
        """The original Figure 1 full scan, for schemes without an index."""
        replica = self._replica
        committed = [
            replica.payload_arr[k]
            for k in replica.payload_arr
            if k < slot
            and replica.phase_arr.get(k) is Phase.DECIDED
            and replica.dec_arr.get(k) is Decision.COMMIT
        ]
        prepared = [
            replica.payload_arr[k]
            for k in replica.payload_arr
            if k < slot
            and replica.phase_arr.get(k) is Phase.PREPARED
            and replica.vote_arr.get(k) is Decision.COMMIT
        ]
        return replica.scheme.vote(replica.shard, committed, prepared, payload)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def note_prepared(self, slot: int) -> None:
        """Record that ``slot`` now holds a prepared transaction (call after
        the replica stored its payload and vote)."""
        if self._index is None:
            return
        replica = self._replica
        if (
            slot not in self._prepared_slots
            and replica.phase_arr.get(slot) is Phase.PREPARED
            and replica.vote_arr.get(slot) is Decision.COMMIT
        ):
            self._index.add_prepared(replica.payload_arr[slot])
            self._prepared_slots.add(slot)

    def note_decided(self, slot: int) -> None:
        """Record that ``slot`` transitioned to the decided phase."""
        if self._index is None:
            return
        replica = self._replica
        payload = replica.payload_arr.get(slot)
        if slot in self._prepared_slots:
            self._index.remove_prepared(payload)
            self._prepared_slots.discard(slot)
        decision = replica.dec_arr.get(slot)
        if decision is Decision.COMMIT:
            if slot not in self._committed_slots and payload is not None:
                self._index.add_committed(payload)
                self._committed_slots.add(slot)
        elif slot in self._committed_slots:
            # A previously-committed slot changed its decision.  Correct
            # protocols never do this; the broken ablation variant can, so
            # fall back to a rebuild rather than mis-certify.
            self.invalidate()
