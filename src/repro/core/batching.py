"""Protocol-level request batching.

The paper's certification protocols exchange one ``PREPARE`` / ``ACCEPT`` /
``DECISION`` message per transaction per destination, so under heavy
multi-client load throughput is bounded by message count rather than by
certification work.  The batching layer amortises that fan-out: a
coordinator accumulates the messages it would send to each destination and
flushes them as a single batch message, which the receiver processes in one
pass (shard leaders certify whole batches against their conflict indexes
and answer with one aggregated vote vector).

Batch *composition* must be deterministic: batches are keyed by destination
in a plain dict (insertion order — i.e. the order the protocol produced the
messages — never hash order) and a full flush walks destinations sorted, so
the same seeded schedule always produces byte-identical batches regardless
of the interpreter's hash seed.

Three flush triggers, combined by :class:`BatchPolicy`:

* **size cap** — a destination's batch flushes as soon as it holds
  ``size`` messages;
* **time cap** (``linger``, with ``adaptive=False``) — a batch flushes
  ``linger`` virtual-time units after its first message was queued, trading
  bounded extra latency for larger batches (the knob WAN deployments sweep);
* **adaptive flush-on-idle** (``adaptive=True``, the default) — a batch
  flushes at the end of the current virtual instant, once every delivery
  already queued for it has drained (see
  :meth:`~repro.runtime.events.Scheduler.call_at_instant_end`).  Messages
  produced at the same instant coalesce; batching adds *zero* virtual
  latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.events import FlushTimer


@dataclass(frozen=True)
class BatchPolicy:
    """When the batching layer flushes an accumulating batch.

    ``size`` is the per-destination batch cap; a size below 2 disables
    batching entirely (the per-transaction message flow of the paper).
    With ``adaptive=True`` batches flush at the end of the virtual instant
    that opened them; with ``adaptive=False`` they wait ``linger`` time
    units (which must then be positive — a size cap alone could leave a
    partial batch stuck forever).
    """

    size: int = 0
    linger: float = 0.0
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("batch size must be >= 0")
        if self.linger < 0:
            raise ValueError("batch linger must be >= 0")
        if self.adaptive and self.linger:
            raise ValueError(
                "adaptive batching flushes at the end of the current instant; "
                "set adaptive=False to use a linger time cap"
            )
        if self.enabled and not self.adaptive and self.linger <= 0:
            raise ValueError(
                "non-adaptive batching requires a positive linger: a size cap "
                "alone cannot flush a partial batch"
            )

    @property
    def enabled(self) -> bool:
        return self.size >= 2

    def describe(self) -> str:
        """A compact label for sweep tables and result dicts."""
        if not self.enabled:
            return "off"
        if self.adaptive:
            return f"size={self.size},adaptive"
        return f"size={self.size},linger={self.linger:g}"


class MessageBatcher:
    """Accumulates per-destination messages for one process and flushes them
    under a :class:`BatchPolicy`.

    ``wrap(items)`` turns a tuple of accumulated messages into the batch
    message actually sent; ``send(dst, message)`` defaults to the process's
    network send but is pluggable (the RDMA variant writes batches with
    one-sided RDMA, the 2PC baseline mints replicated-state-machine
    commands at flush time).  ``on_flush(dst, items)`` runs just before the
    send — coordinators use it to timestamp per-transaction queueing delay.

    Single-message batches are still wrapped: receivers only ever see the
    batch message type on a batched deployment, which keeps the handler
    matrix small and the batch-size distribution honest.
    """

    def __init__(
        self,
        process: Any,
        policy: BatchPolicy,
        wrap: Callable[[Tuple[Any, ...]], Any],
        send: Optional[Callable[[str, Any], None]] = None,
        on_flush: Optional[Callable[[str, Tuple[Any, ...]], None]] = None,
    ) -> None:
        self.process = process
        self.policy = policy
        self.wrap = wrap
        self._send = send if send is not None else process.send
        self.on_flush = on_flush
        self._pending: Dict[str, List[Any]] = {}
        self._timers: Dict[str, FlushTimer] = {}
        # Instrumentation: batches flushed, messages they carried, and the
        # batch-size distribution (size -> count).
        self.batches_sent = 0
        self.messages_batched = 0
        self.size_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add(self, dst: str, message: Any) -> None:
        """Queue ``message`` for ``dst``; flushes by policy."""
        queue = self._pending.get(dst)
        if queue is None:
            queue = self._pending[dst] = []
        queue.append(message)
        if len(queue) >= self.policy.size:
            self.flush(dst)
            return
        timer = self._timers.get(dst)
        if timer is None:
            timer = self._timers[dst] = FlushTimer(self.process.scheduler)
        # Idempotent while pending: the deadline of the batch's first
        # message sticks (linger), or the end of the opening instant
        # (adaptive).
        timer.arm(
            0.0 if self.policy.adaptive else self.policy.linger, self.flush, dst
        )

    def add_all(self, dsts: Any, message: Any) -> None:
        for dst in dsts:
            self.add(dst, message)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush(self, dst: Optional[str] = None) -> None:
        """Flush one destination's batch, or (``dst=None``) every pending
        batch in sorted destination order."""
        if dst is None:
            for each in sorted(self._pending):
                self.flush(each)
            return
        items = self._pending.pop(dst, None)
        timer = self._timers.get(dst)
        if timer is not None:
            timer.cancel()
        if not items:
            return
        batch = tuple(items)
        self.batches_sent += 1
        self.messages_batched += len(batch)
        self.size_counts[len(batch)] = self.size_counts.get(len(batch), 0) + 1
        if self.on_flush is not None:
            self.on_flush(dst, batch)
        self._send(dst, self.wrap(batch))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def pending_messages(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def pending_for(self, dst: str) -> int:
        return len(self._pending.get(dst, ()))
