"""Concrete certification schemes: serializability and snapshot isolation.

This module instantiates the framework of :mod:`repro.core.certification`
with the transaction domain of paper Section 2: a payload is a triple
``⟨R, W, Vc⟩`` of a versioned read set, a write set and a commit version.

* :class:`SerializabilityScheme` implements the classical backward
  optimistic-concurrency-control check of equation (2): a transaction
  commits iff none of the versions it read have been overwritten by a
  committed transaction, and its lock-style ``g_s`` aborts on read-write
  and write-read conflicts with prepared transactions.
* :class:`SnapshotIsolationScheme` implements a write-write-conflict-only
  variant, demonstrating that the protocols are parametric in the isolation
  level.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.certification import RETIRED, CertificationScheme, ConflictIndex, VoteIndex
from repro.core.types import Decision, ShardId, TxnId


ObjectId = str
Value = object

# Versions are totally ordered.  We use (counter, tie-break) pairs so that
# independent clients can mint distinct versions without coordination.
Version = Tuple[int, str]

VERSION_ZERO: Version = (0, "")


def version_after(versions: Iterable[Version], tiebreak: str) -> Version:
    """Mint a version strictly greater than every version in ``versions``."""
    highest = max(versions, default=VERSION_ZERO)
    return (highest[0] + 1, tiebreak)


@dataclass(frozen=True)
class TransactionPayload:
    """The result of a transaction's optimistic execution: ``⟨R, W, Vc⟩``.

    * ``read_set`` — objects with the versions that were read (one version
      per object);
    * ``write_set`` — objects with the values to be installed on commit;
    * ``commit_version`` — the version assigned to the writes, strictly
      greater than every version read.

    The paper requires every written object to have been read and the commit
    version to dominate all read versions; ``validate`` enforces both.
    """

    read_set: FrozenSet[Tuple[ObjectId, Version]] = frozenset()
    write_set: FrozenSet[Tuple[ObjectId, Value]] = frozenset()
    commit_version: Version = VERSION_ZERO

    @staticmethod
    def make(
        reads: Iterable[Tuple[ObjectId, Version]] = (),
        writes: Iterable[Tuple[ObjectId, Value]] = (),
        commit_version: Optional[Version] = None,
        tiebreak: str = "",
    ) -> "TransactionPayload":
        reads = frozenset(reads)
        writes = frozenset(writes)
        if commit_version is None:
            commit_version = version_after((v for _, v in reads), tiebreak)
        payload = TransactionPayload(
            read_set=reads, write_set=writes, commit_version=commit_version
        )
        payload.validate()
        return payload

    def validate(self) -> None:
        """Enforce the well-formedness conditions of Section 2."""
        read_objects = {obj for obj, _ in self.read_set}
        per_object_versions: Dict[ObjectId, Set[Version]] = {}
        for obj, version in self.read_set:
            per_object_versions.setdefault(obj, set()).add(version)
        for obj, versions in per_object_versions.items():
            if len(versions) > 1:
                raise ValueError(f"object {obj!r} read at more than one version")
        written_objects = [obj for obj, _ in self.write_set]
        if len(set(written_objects)) != len(written_objects):
            raise ValueError("write set contains an object more than once")
        for obj in written_objects:
            if obj not in read_objects:
                raise ValueError(f"written object {obj!r} was not read")
        if self.read_set:
            for _, version in self.read_set:
                if not self.commit_version > version:
                    raise ValueError(
                        "commit version must be greater than every version read"
                    )

    # Cached: payloads are immutable and these sets sit on every
    # certification hot path (cached_property writes the instance __dict__
    # directly, which a frozen dataclass permits).
    @cached_property
    def read_objects(self) -> Set[ObjectId]:
        return {obj for obj, _ in self.read_set}

    @cached_property
    def written_objects(self) -> Set[ObjectId]:
        return {obj for obj, _ in self.write_set}

    def is_empty(self) -> bool:
        """True for the empty payload ``ε`` (no reads, no writes)."""
        return not self.read_set and not self.write_set

    def read_version(self, obj: ObjectId) -> Optional[Version]:
        for read_obj, version in self.read_set:
            if read_obj == obj:
                return version
        return None


EMPTY_PAYLOAD = TransactionPayload()


@dataclass(frozen=True)
class SnapshotRead:
    """The certify-time placeholder payload of a snapshot (lease-guarded)
    read-only transaction.

    A snapshot read bypasses certification, so at invocation time the client
    knows only *which* objects it is asking about — the versions it will
    observe are determined by the serving replica.  The history records this
    marker at certify time (pinning the transaction's real-time birth to its
    invocation, exactly as for certified transactions) and attaches the
    versioned read-only :class:`TransactionPayload` to the decide event once
    the reply arrives (see ``History.record_decide``); the checkers prefer
    the decide-time payload when one is present.
    """

    objects: Tuple[ObjectId, ...] = ()


class ShardingFunction:
    """Maps objects to the shard that manages them (``Objs``)."""

    def shard_of(self, obj: ObjectId) -> ShardId:
        raise NotImplementedError

    def key_for_shard(self, shard: ShardId, hint: str = "key", attempts: int = 10_000) -> ObjectId:
        """Find a key this function maps to ``shard`` (probing ``hint-N``).

        Shared by the test helpers, the benchmark harness and the scenario
        runner for building shard-targeted payloads.
        """
        for i in range(attempts):
            candidate = f"{hint}-{i}"
            if self.shard_of(candidate) == shard:
                return candidate
        raise ValueError(f"no key found for shard {shard!r} after {attempts} attempts")


class KeyHashSharding(ShardingFunction):
    """Deterministic hash partitioning of objects across a fixed shard list."""

    def __init__(self, shards: Sequence[ShardId]) -> None:
        if not shards:
            raise ValueError("at least one shard is required")
        self._shards = tuple(shards)
        # shard_of is a pure function of the key and sits on every hot path
        # (payload projection, vote filtering, coordinator routing), so the
        # digest is computed once per distinct key.
        self._memo: Dict[ObjectId, ShardId] = {}

    @property
    def shards(self) -> Tuple[ShardId, ...]:
        return self._shards

    def shard_of(self, obj: ObjectId) -> ShardId:
        shard = self._memo.get(obj)
        if shard is None:
            # Stable across runs and processes (unlike the built-in ``hash``
            # on strings, which is salted per interpreter).
            digest = 0
            for char in obj:
                digest = (digest * 131 + ord(char)) % (2**31)
            shard = self._memo[obj] = self._shards[digest % len(self._shards)]
        return shard


class ExplicitSharding(ShardingFunction):
    """Sharding by explicit object -> shard mapping, with an optional default."""

    def __init__(self, mapping: Dict[ObjectId, ShardId], default: Optional[ShardId] = None):
        self.mapping = dict(mapping)
        self.default = default
        self._shards = tuple(dict.fromkeys(list(mapping.values()) + ([default] if default else [])))

    @property
    def shards(self) -> Tuple[ShardId, ...]:
        return self._shards

    def shard_of(self, obj: ObjectId) -> ShardId:
        if obj in self.mapping:
            return self.mapping[obj]
        if self.default is not None:
            return self.default
        raise KeyError(f"object {obj!r} is not mapped to a shard")


class _ReadWriteScheme(CertificationScheme[TransactionPayload]):
    """Shared plumbing for schemes over ``⟨R, W, Vc⟩`` payloads."""

    def __init__(self, sharding: ShardingFunction) -> None:
        self.sharding = sharding

    def shards(self) -> Sequence[ShardId]:
        return self.sharding.shards  # type: ignore[attr-defined]

    def shards_of(self, payload: TransactionPayload) -> Set[ShardId]:
        objects = payload.read_objects | payload.written_objects
        return {self.sharding.shard_of(obj) for obj in objects}

    def project(self, payload: TransactionPayload, shard: ShardId) -> TransactionPayload:
        reads = frozenset(
            (obj, version)
            for obj, version in payload.read_set
            if self.sharding.shard_of(obj) == shard
        )
        writes = frozenset(
            (obj, value)
            for obj, value in payload.write_set
            if self.sharding.shard_of(obj) == shard
        )
        if len(reads) == len(payload.read_set) and len(writes) == len(payload.write_set):
            # Fully shard-local payload: l|s = l.  Returning the original
            # object (not an equal copy) lets downstream consumers share its
            # cached object-set views.
            return payload
        return TransactionPayload(
            read_set=reads, write_set=writes, commit_version=payload.commit_version
        )

    def empty_payload(self) -> TransactionPayload:
        return EMPTY_PAYLOAD

    def is_empty(self, payload: TransactionPayload) -> bool:
        return payload.is_empty()


class _ReadWriteVoteIndex(VoteIndex[TransactionPayload]):
    """Per-object conflict state shared by both concrete schemes.

    * ``committed_version[obj]`` — the highest commit version installed on
      ``obj`` by a committed transaction ("exists a committed writer with
      version > v" collapses to one max-version comparison);
    * ``prepared_readers`` / ``prepared_writers`` — reference counts of
      prepared-to-commit transactions reading / writing each object.

    Payloads arriving at a shard leader are already projected to the shard,
    but ``vote`` still filters the candidate's objects through the sharding
    function, mirroring the scan-based ``f_s`` / ``g_s`` exactly.
    """

    def __init__(self, sharding: ShardingFunction, shard: ShardId) -> None:
        self.sharding = sharding
        self.shard = shard
        self.committed_version: Dict[ObjectId, Version] = {}
        self.prepared_readers: Dict[ObjectId, int] = {}
        self.prepared_writers: Dict[ObjectId, int] = {}

    def add_committed(self, payload: TransactionPayload) -> None:
        version = payload.commit_version
        for obj, _ in payload.write_set:
            current = self.committed_version.get(obj)
            if current is None or version > current:
                self.committed_version[obj] = version

    def add_prepared(self, payload: TransactionPayload) -> None:
        for obj, _ in payload.read_set:
            self.prepared_readers[obj] = self.prepared_readers.get(obj, 0) + 1
        for obj, _ in payload.write_set:
            self.prepared_writers[obj] = self.prepared_writers.get(obj, 0) + 1

    def remove_prepared(self, payload: TransactionPayload) -> None:
        for obj, _ in payload.read_set:
            remaining = self.prepared_readers[obj] - 1
            if remaining:
                self.prepared_readers[obj] = remaining
            else:
                del self.prepared_readers[obj]
        for obj, _ in payload.write_set:
            remaining = self.prepared_writers[obj] - 1
            if remaining:
                self.prepared_writers[obj] = remaining
            else:
                del self.prepared_writers[obj]


class _SerializabilityVoteIndex(_ReadWriteVoteIndex):
    def vote(self, payload: TransactionPayload) -> Decision:
        shard_of = self.sharding.shard_of
        # f_s: no committed transaction overwrote a version we read;
        # g_s (read side): no prepared transaction writes an object we read.
        for obj, version in payload.read_set:
            if shard_of(obj) != self.shard:
                continue
            committed = self.committed_version.get(obj)
            if committed is not None and committed > version:
                return Decision.ABORT
            if obj in self.prepared_writers:
                return Decision.ABORT
        # g_s (write side): no prepared transaction read an object we write.
        for obj, _ in payload.write_set:
            if shard_of(obj) != self.shard:
                continue
            if obj in self.prepared_readers:
                return Decision.ABORT
        return Decision.COMMIT


class _SnapshotIsolationVoteIndex(_ReadWriteVoteIndex):
    def vote(self, payload: TransactionPayload) -> Decision:
        shard_of = self.sharding.shard_of
        # Write-write conflicts only: f_s compares the version read for each
        # written object against committed writers, g_s checks prepared writers.
        for obj, _ in payload.write_set:
            if shard_of(obj) != self.shard:
                continue
            if obj in self.prepared_writers:
                return Decision.ABORT
            version = payload.read_version(obj)
            if version is None:
                continue
            committed = self.committed_version.get(obj)
            if committed is not None and committed > version:
                return Decision.ABORT
        return Decision.COMMIT


class _VersionedTxnLists:
    """Per-object sorted ``(version, txn)`` entries with range queries.

    The conflict-index building block: ``below(obj, v)`` / ``above(obj, v)``
    answer "which registered transactions touched ``obj`` at a version
    strictly below/above ``v``" in O(log n + answer) via bisection.
    Entries are kept sorted on version only (insertion order breaks version
    ties), so queries are strict on the version component.

    ``add`` bisects and then ``list.insert``s: O(n) worst case per entry
    when a version lands mid-list (a committed transaction may legally carry
    a read version older than already-indexed ones), but versions mostly
    arrive increasing, so inserts are append-like in practice and the
    memmove constant is tiny compared to a pointer-based ordered map.
    """

    def __init__(self) -> None:
        self._versions: Dict[ObjectId, List[Version]] = {}
        self._txns: Dict[ObjectId, List[TxnId]] = {}

    def add(self, obj: ObjectId, version: Version, txn: TxnId) -> None:
        versions = self._versions.setdefault(obj, [])
        txns = self._txns.setdefault(obj, [])
        at = bisect_right(versions, version)
        versions.insert(at, version)
        txns.insert(at, txn)

    def below(self, obj: ObjectId, version: Version) -> List[TxnId]:
        versions = self._versions.get(obj)
        if not versions:
            return []
        return self._txns[obj][: bisect_left(versions, version)]

    def above(self, obj: ObjectId, version: Version) -> List[TxnId]:
        versions = self._versions.get(obj)
        if not versions:
            return []
        return self._txns[obj][bisect_right(versions, version) :]

    def remove(self, obj: ObjectId, version: Version, txn: TxnId) -> None:
        """Drop one ``(version, txn)`` entry (bisect to the version run, then
        scan it for the transaction; runs are short in practice)."""
        versions = self._versions.get(obj)
        if not versions:
            return
        txns = self._txns[obj]
        for at in range(bisect_left(versions, version), bisect_right(versions, version)):
            if txns[at] == txn:
                del versions[at]
                del txns[at]
                break
        if not versions:
            del self._versions[obj]
            del self._txns[obj]


class _SerializabilityConflictIndex(ConflictIndex[TransactionPayload]):
    """Conflict edges for the serializability ``f`` of equation (2).

    ``f({l_a}, l_b) = abort`` iff ``a`` wrote an object ``b`` read, at a
    commit version above ``b``'s read version.  Indexing committed writers
    by commit version and readers by read version turns the all-pairs sweep
    into per-object version-range lookups.
    """

    def __init__(self) -> None:
        self._writers = _VersionedTxnLists()  # commit version of each write
        self._readers = _VersionedTxnLists()  # version at which each read saw the object
        # Highest retired write version per object: enough to *flag* a new
        # payload that read below a garbage-collected write (a conflict with
        # retired history) without keeping the writer's identity around.
        self._retired_writes: Dict[ObjectId, Version] = {}

    def register(self, txn, payload):
        successors: List[TxnId] = []
        predecessors: List[TxnId] = []
        for obj, version in payload.read_set:
            horizon = self._retired_writes.get(obj)
            if horizon is not None and horizon > version:
                successors.append(RETIRED)
            successors.extend(self._writers.above(obj, version))
        for obj, _ in payload.write_set:
            predecessors.extend(self._readers.below(obj, payload.commit_version))
        for obj, version in payload.read_set:
            self._readers.add(obj, version, txn)
        for obj, _ in payload.write_set:
            self._writers.add(obj, payload.commit_version, txn)
        return successors, predecessors

    def retire(self, txn, payload):
        if payload is None:
            # Without the payload the entries cannot be removed; make the
            # caller track the retired id instead of leaving stale entries
            # that could be reported for a transaction no longer in the DAG.
            return False
        for obj, version in payload.read_set:
            self._readers.remove(obj, version, txn)
        for obj, _ in payload.write_set:
            self._writers.remove(obj, payload.commit_version, txn)
            horizon = self._retired_writes.get(obj)
            if horizon is None or payload.commit_version > horizon:
                self._retired_writes[obj] = payload.commit_version
        return True


class _SnapshotIsolationConflictIndex(ConflictIndex[TransactionPayload]):
    """Conflict edges for the write-write-only snapshot-isolation ``f``.

    Only written objects matter: ``f({l_a}, l_b) = abort`` iff both write
    ``obj`` and ``a``'s commit version is above the version ``b`` read for
    ``obj``.  Writers that did not read the object they write never abort.
    """

    def __init__(self) -> None:
        self._writers = _VersionedTxnLists()  # commit version of each write
        self._writer_reads = _VersionedTxnLists()  # read version of each written object
        self._retired_writes: Dict[ObjectId, Version] = {}

    def register(self, txn, payload):
        successors: List[TxnId] = []
        predecessors: List[TxnId] = []
        for obj, _ in payload.write_set:
            version = payload.read_version(obj)
            if version is not None:
                horizon = self._retired_writes.get(obj)
                if horizon is not None and horizon > version:
                    successors.append(RETIRED)
                successors.extend(self._writers.above(obj, version))
            predecessors.extend(self._writer_reads.below(obj, payload.commit_version))
        for obj, _ in payload.write_set:
            self._writers.add(obj, payload.commit_version, txn)
            version = payload.read_version(obj)
            if version is not None:
                self._writer_reads.add(obj, version, txn)
        return successors, predecessors

    def retire(self, txn, payload):
        if payload is None:
            return False
        for obj, _ in payload.write_set:
            self._writers.remove(obj, payload.commit_version, txn)
            version = payload.read_version(obj)
            if version is not None:
                self._writer_reads.remove(obj, version, txn)
            horizon = self._retired_writes.get(obj)
            if horizon is None or payload.commit_version > horizon:
                self._retired_writes[obj] = payload.commit_version
        return True


class SerializabilityScheme(_ReadWriteScheme):
    """The serializability certification functions of Section 2.

    * ``f(L, l) = commit`` iff no version read by ``l`` has been overwritten
      by a transaction in ``L`` (equation (2));
    * ``f_s`` is the same check restricted to the objects of shard ``s``;
    * ``g_s`` aborts ``l`` if it read an object written by a prepared
      transaction, or writes an object read by a prepared transaction
      (lock-acquisition semantics).
    """

    def make_vote_index(self, shard: ShardId) -> _SerializabilityVoteIndex:
        return _SerializabilityVoteIndex(self.sharding, shard)

    def make_conflict_index(self) -> _SerializabilityConflictIndex:
        return _SerializabilityConflictIndex()

    def global_certify(
        self, committed: Iterable[TransactionPayload], payload: TransactionPayload
    ) -> Decision:
        committed = list(committed)
        for obj, version in payload.read_set:
            for other in committed:
                if obj in other.written_objects and other.commit_version > version:
                    return Decision.ABORT
        return Decision.COMMIT

    def shard_certify_committed(
        self,
        shard: ShardId,
        committed: Iterable[TransactionPayload],
        payload: TransactionPayload,
    ) -> Decision:
        committed = list(committed)
        for obj, version in payload.read_set:
            if self.sharding.shard_of(obj) != shard:
                continue
            for other in committed:
                if obj in other.written_objects and other.commit_version > version:
                    return Decision.ABORT
        return Decision.COMMIT

    def shard_certify_prepared(
        self,
        shard: ShardId,
        prepared: Iterable[TransactionPayload],
        payload: TransactionPayload,
    ) -> Decision:
        prepared = list(prepared)
        for obj in payload.read_objects:
            if self.sharding.shard_of(obj) != shard:
                continue
            for other in prepared:
                if obj in other.written_objects:
                    return Decision.ABORT
        for obj in payload.written_objects:
            if self.sharding.shard_of(obj) != shard:
                continue
            for other in prepared:
                if obj in other.read_objects:
                    return Decision.ABORT
        return Decision.COMMIT


class SnapshotIsolationScheme(_ReadWriteScheme):
    """A write-write-conflict-only scheme (snapshot-isolation style).

    Demonstrates that the protocols are parametric in the isolation level:
    ``f`` aborts only when a *written* object has been overwritten since it
    was read (first-committer-wins), and ``g_s`` aborts only on write-write
    conflicts with prepared transactions.
    """

    def make_vote_index(self, shard: ShardId) -> _SnapshotIsolationVoteIndex:
        return _SnapshotIsolationVoteIndex(self.sharding, shard)

    def make_conflict_index(self) -> _SnapshotIsolationConflictIndex:
        return _SnapshotIsolationConflictIndex()

    def global_certify(
        self, committed: Iterable[TransactionPayload], payload: TransactionPayload
    ) -> Decision:
        committed = list(committed)
        for obj in payload.written_objects:
            version = payload.read_version(obj)
            if version is None:
                continue
            for other in committed:
                if obj in other.written_objects and other.commit_version > version:
                    return Decision.ABORT
        return Decision.COMMIT

    def shard_certify_committed(
        self,
        shard: ShardId,
        committed: Iterable[TransactionPayload],
        payload: TransactionPayload,
    ) -> Decision:
        committed = list(committed)
        for obj in payload.written_objects:
            if self.sharding.shard_of(obj) != shard:
                continue
            version = payload.read_version(obj)
            if version is None:
                continue
            for other in committed:
                if obj in other.written_objects and other.commit_version > version:
                    return Decision.ABORT
        return Decision.COMMIT

    def shard_certify_prepared(
        self,
        shard: ShardId,
        prepared: Iterable[TransactionPayload],
        payload: TransactionPayload,
    ) -> Decision:
        prepared = list(prepared)
        for obj in payload.written_objects:
            if self.sharding.shard_of(obj) != shard:
                continue
            for other in prepared:
                if obj in other.written_objects:
                    return Decision.ABORT
        return Decision.COMMIT
