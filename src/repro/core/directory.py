"""Static transaction metadata: the ``client(t)`` and ``shards(t)`` functions.

The paper's system model assumes two static functions known to every
process: ``client : T -> P`` giving the client that issued a transaction and
``shards : T -> 2^S`` giving the shards that must certify it.  In a running
system these are derivable from the transaction identifier (e.g. encoded in
it); we model them as a :class:`TransactionDirectory` shared *by reference*
between all processes of a cluster.  The directory is append-only and
written exactly once per transaction, by its issuing client, before the
transaction enters the protocol — so sharing it does not constitute a
communication channel between processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.core.types import ProcessId, ShardId, TxnId


@dataclass(frozen=True)
class TxnInfo:
    """Static per-transaction metadata."""

    txn: TxnId
    client: ProcessId
    shards: FrozenSet[ShardId]


class TransactionDirectory:
    """Append-only registry implementing ``client(t)`` and ``shards(t)``."""

    def __init__(self) -> None:
        self._info: Dict[TxnId, TxnInfo] = {}

    def register(self, txn: TxnId, client: ProcessId, shards) -> TxnInfo:
        """Record the static metadata for ``txn``.

        Re-registration with identical metadata is idempotent; conflicting
        re-registration raises, because the functions are meant to be static.
        """
        info = TxnInfo(txn=txn, client=client, shards=frozenset(shards))
        existing = self._info.get(txn)
        if existing is not None:
            if existing != info:
                raise ValueError(f"conflicting registration for transaction {txn!r}")
            return existing
        self._info[txn] = info
        return info

    def known(self, txn: TxnId) -> bool:
        return txn in self._info

    def client_of(self, txn: TxnId) -> ProcessId:
        """``client(t)``."""
        return self._info[txn].client

    def shards_of(self, txn: TxnId) -> FrozenSet[ShardId]:
        """``shards(t)``."""
        return self._info[txn].shards

    def get(self, txn: TxnId) -> Optional[TxnInfo]:
        return self._info.get(txn)

    def __len__(self) -> int:
        return len(self._info)
