"""Certification-function framework (paper Section 2).

A TCS is parametric in a *certification function* ``f : 2^L x L -> D`` that
encodes the concurrency-control policy of the desired isolation level.  In a
sharded system the protocol never evaluates ``f`` directly; each shard uses
two *shard-local* functions:

* ``f_s(L, l)`` — certify ``l`` against the shard-relevant payloads of
  previously *committed* transactions;
* ``g_s(L, l)`` — certify ``l`` against transactions *prepared to commit*
  (typically a stricter, lock-style check).

:class:`CertificationScheme` bundles ``f``, ``f_s``, ``g_s``, payload
projection ``l|s``, the empty payload ``ε`` and the ``shards(t)`` function.
It also provides property checkers for the paper's side conditions:
distributivity (1), matching (3) and the relations (4)-(5) between ``f_s``
and ``g_s``.  Those checkers are exercised by the hypothesis test-suite.
"""

from __future__ import annotations

import itertools
from typing import Generic, Iterable, Sequence, Set, TypeVar

from repro.core.types import Decision, ShardId, TxnId


PayloadT = TypeVar("PayloadT")


class VoteIndex(Generic[PayloadT]):
    """Incremental equivalent of :meth:`CertificationScheme.vote`.

    A shard leader certifies every new transaction against (a) the payloads
    of transactions *committed* in its certification order and (b) the
    payloads of transactions *prepared to commit*.  Recomputing those sets
    per ``PREPARE`` is O(slots); an index maintains per-object conflict
    state so each membership change and each vote is proportional to the
    payload size only.

    Implementations must be exactly equivalent to
    ``scheme.vote(shard, committed, prepared, payload)`` evaluated over the
    same sets — the simulation's determinism (and the Figure 3 invariants)
    depend on it.
    """

    def add_committed(self, payload: PayloadT) -> None:
        raise NotImplementedError

    def add_prepared(self, payload: PayloadT) -> None:
        raise NotImplementedError

    def remove_prepared(self, payload: PayloadT) -> None:
        raise NotImplementedError

    def vote(self, payload: PayloadT) -> Decision:
        raise NotImplementedError


class _RetiredConflict:
    """Sentinel returned by conflict indexes in place of a transaction that
    has been retired (garbage-collected): the conflict is real, but the
    partner's identity is no longer stored."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<retired>"


RETIRED = _RetiredConflict()


class ConflictIndex(Generic[PayloadT]):
    """Incremental pairwise-conflict queries for the online TCS checker.

    The spec checker's linearization graph needs, for every transaction
    entering the committed projection, the conflict edges between its payload
    and every payload already in the projection: ``f({l_a}, l) = abort``
    means the new transaction must *precede* ``a``, and ``f({l}, l_b) =
    abort`` means ``b`` must precede the new transaction.  Computing those
    sets by scanning all prior payloads is the O(txns^2) sweep that forced
    large scenarios to opt out of validation; an index maintains per-object
    conflict state so each registration costs time proportional to the
    payload size plus the number of edges actually reported.

    Implementations must be exactly equivalent to evaluating
    ``scheme.global_certify([l'], l)`` pairwise over the registered payloads.
    """

    def register(self, txn: TxnId, payload: PayloadT) -> "tuple[list, list]":
        """Add ``(txn, payload)``; return ``(successors, predecessors)``.

        ``successors`` are registered transactions the new one must precede
        (their payload aborts the new one); ``predecessors`` must precede the
        new one (its payload aborts theirs).

        After :meth:`retire` calls, either list may contain the
        :data:`RETIRED` sentinel instead of a transaction id: the new
        payload conflicts with a retired transaction whose identity the
        index no longer stores (the checker maps a RETIRED *successor* to an
        immediate real-time violation; a RETIRED predecessor is consistent
        by construction and ignored).
        """
        raise NotImplementedError

    def retire(self, txn: TxnId, payload: PayloadT) -> bool:
        """Forget ``txn``'s per-object entries, keeping only a compact
        per-object horizon sufficient to still *flag* (not identify) future
        conflicts against retired history via :data:`RETIRED`.

        The caller supplies the payload it registered (so indexes need not
        duplicate payload storage for runs that never retire).  Returns True
        when the index dropped the transaction (memory freed, future
        conflicts flagged with the sentinel); False when the index cannot
        retire entries — the caller must then track retired transaction ids
        itself.
        """
        return False


class PairwiseConflictIndex(ConflictIndex[PayloadT]):
    """Fallback :class:`ConflictIndex` for schemes without an incremental one.

    Scans every registered payload per registration (O(n) per transaction,
    matching the batch checker's total O(n^2) edge construction) so that any
    :class:`CertificationScheme` works with the online checker unchanged.

    Supports :meth:`retire`: retired entries are dropped (identity and all),
    keeping only their distinct payloads as an anonymous retired set.  Only
    the *successor* direction is checked against it — "the new payload must
    precede retired history", which the checker turns into an immediate
    violation via :data:`RETIRED` — because a retired *predecessor* is
    consistent by construction and the checker ignores it.  Without scheme
    knowledge the retired payloads cannot be compacted into per-object
    horizons, so memory is bounded by the number of distinct retired
    payloads (deduplicated when hashable) rather than O(1) per object; the
    live scan, however, shrinks to the unretired entries.
    """

    def __init__(self, scheme: "CertificationScheme[PayloadT]") -> None:
        self.scheme = scheme
        self._entries: list = []
        self._retired_payloads: list = []
        self._retired_seen: set = set()

    def register(self, txn, payload):
        successors = [
            other
            for other, existing in self._entries
            if self.scheme.global_certify([existing], payload) is Decision.ABORT
        ]
        predecessors = [
            other
            for other, existing in self._entries
            if self.scheme.global_certify([payload], existing) is Decision.ABORT
        ]
        for existing in self._retired_payloads:
            if self.scheme.global_certify([existing], payload) is Decision.ABORT:
                # One flag suffices: any conflict ordering the new payload
                # before retired history is already a violation.
                successors.append(RETIRED)
                break
        self._entries.append((txn, payload))
        return successors, predecessors

    def retire(self, txn, payload):
        for at, (other, existing) in enumerate(self._entries):
            if other == txn:
                retired = existing if payload is None else payload
                del self._entries[at]
                try:
                    fresh = retired not in self._retired_seen
                    if fresh:
                        self._retired_seen.add(retired)
                except TypeError:  # unhashable payload type: keep every copy
                    fresh = True
                if fresh:
                    self._retired_payloads.append(retired)
                return True
        return False

    @property
    def live_entries(self) -> int:
        return len(self._entries)

    @property
    def retired_payload_count(self) -> int:
        return len(self._retired_payloads)


class CertificationScheme(Generic[PayloadT]):
    """Abstract interface for an isolation level's certification functions.

    Implementations must be *pure*: results may only depend on the
    arguments, so that distributivity and matching can be checked
    mechanically.
    """

    # ------------------------------------------------------------------
    # required interface
    # ------------------------------------------------------------------
    def shards(self) -> Sequence[ShardId]:
        """All shard identifiers in the system."""
        raise NotImplementedError

    def shards_of(self, payload: PayloadT) -> Set[ShardId]:
        """``shards(t)``: the shards that must certify this payload."""
        raise NotImplementedError

    def project(self, payload: PayloadT, shard: ShardId) -> PayloadT:
        """``l | s``: the part of the payload relevant to shard ``s``."""
        raise NotImplementedError

    def empty_payload(self) -> PayloadT:
        """The distinguished empty payload ``ε`` (always certifies commit)."""
        raise NotImplementedError

    def is_empty(self, payload: PayloadT) -> bool:
        """True if the payload equals ``ε``."""
        raise NotImplementedError

    def global_certify(self, committed: Iterable[PayloadT], payload: PayloadT) -> Decision:
        """The global certification function ``f(L, l)``."""
        raise NotImplementedError

    def shard_certify_committed(
        self, shard: ShardId, committed: Iterable[PayloadT], payload: PayloadT
    ) -> Decision:
        """The shard-local function ``f_s(L, l)`` (conflicts with committed txns)."""
        raise NotImplementedError

    def shard_certify_prepared(
        self, shard: ShardId, prepared: Iterable[PayloadT], payload: PayloadT
    ) -> Decision:
        """The shard-local function ``g_s(L, l)`` (conflicts with prepared txns)."""
        raise NotImplementedError

    def make_vote_index(self, shard: ShardId) -> "VoteIndex | None":
        """An incremental :class:`VoteIndex` for this scheme, or None.

        Returning None makes shard leaders fall back to recomputing the
        vote from a full scan of their certification order on every
        ``PREPARE`` (O(slots) per transaction); schemes that can maintain
        per-object conflict state incrementally should return an index so
        voting costs O(|payload|) instead.
        """
        return None

    def make_conflict_index(self) -> "ConflictIndex | None":
        """An incremental :class:`ConflictIndex` for this scheme, or None.

        Used by the online spec checker to discover linearization-graph
        conflict edges without the all-pairs ``global_certify`` sweep.
        Returning None makes the checker fall back to
        :class:`PairwiseConflictIndex` (O(n) per committed transaction).
        """
        return None

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def vote(
        self,
        shard: ShardId,
        committed: Iterable[PayloadT],
        prepared: Iterable[PayloadT],
        payload: PayloadT,
    ) -> Decision:
        """The vote computed by a shard leader (Figure 1, line 12):
        ``f_s(L1, l) ⊓ g_s(L2, l)``."""
        return self.shard_certify_committed(shard, committed, payload).meet(
            self.shard_certify_prepared(shard, prepared, payload)
        )

    def project_all(self, payloads: Iterable[PayloadT], shard: ShardId) -> list[PayloadT]:
        """``L | s`` lifted to sets of payloads."""
        return [self.project(payload, shard) for payload in payloads]

    # ------------------------------------------------------------------
    # specification side-condition checkers (used by property tests)
    # ------------------------------------------------------------------
    def check_distributive_global(
        self, payload_sets: Sequence[Sequence[PayloadT]], payload: PayloadT
    ) -> bool:
        """Check requirement (1): ``f(L1 ∪ L2, l) = f(L1, l) ⊓ f(L2, l)``."""
        for left, right in itertools.combinations(range(len(payload_sets)), 2):
            l1, l2 = list(payload_sets[left]), list(payload_sets[right])
            combined = self.global_certify(l1 + l2, payload)
            split = self.global_certify(l1, payload).meet(self.global_certify(l2, payload))
            if combined is not split:
                return False
        return True

    def check_distributive_shard(
        self,
        shard: ShardId,
        payload_sets: Sequence[Sequence[PayloadT]],
        payload: PayloadT,
    ) -> bool:
        """Check distributivity of ``f_s`` and ``g_s`` on the given sets."""
        for left, right in itertools.combinations(range(len(payload_sets)), 2):
            l1, l2 = list(payload_sets[left]), list(payload_sets[right])
            for fn in (self.shard_certify_committed, self.shard_certify_prepared):
                combined = fn(shard, l1 + l2, payload)
                split = fn(shard, l1, payload).meet(fn(shard, l2, payload))
                if combined is not split:
                    return False
        return True

    def check_matching(self, committed: Sequence[PayloadT], payload: PayloadT) -> bool:
        """Check requirement (3): the global decision equals the meet of the
        shard-local ``f_s`` decisions over projected payloads."""
        global_decision = self.global_certify(committed, payload)
        local_decision = Decision.meet_all(
            self.shard_certify_committed(
                shard,
                self.project_all(committed, shard),
                self.project(payload, shard),
            )
            for shard in self.shards()
        )
        return global_decision is local_decision

    def check_prepared_stronger(
        self, shard: ShardId, prepared: Sequence[PayloadT], payload: PayloadT
    ) -> bool:
        """Check requirement (4): ``g_s(L, l) = commit ⟹ f_s(L, l) = commit``."""
        if self.shard_certify_prepared(shard, prepared, payload) is Decision.COMMIT:
            return self.shard_certify_committed(shard, prepared, payload) is Decision.COMMIT
        return True

    def check_prepared_commutes(
        self, shard: ShardId, pending: PayloadT, payload: PayloadT
    ) -> bool:
        """Check requirement (5): if ``l'`` may commit after pending ``l``,
        then ``l`` may commit after committed ``l'``."""
        if self.shard_certify_prepared(shard, [pending], payload) is Decision.COMMIT:
            return self.shard_certify_committed(shard, [payload], pending) is Decision.COMMIT
        return True

    def check_empty_payload_commits(self, shard: ShardId, committed: Sequence[PayloadT]) -> bool:
        """``∀s, L. f_s(L, ε) = commit``."""
        return (
            self.shard_certify_committed(shard, committed, self.empty_payload())
            is Decision.COMMIT
        )
