"""Lease-guarded snapshot reads: the certification-bypassing read path.

At read-heavy ratios, pushing every read-only transaction through the full
certification pipeline (coordinator round trip, per-shard votes, replicated
decision) is the dominant cost.  This module implements the classic MVCC
fast path on top of the TCS:

* every shard leader maintains an **applied store** — a
  :class:`~repro.store.kv.VersionedKVStore` into which the writes of
  decided-commit slots are installed — plus a **closed-timestamp
  watermark** (the highest commit version applied) and a reference count of
  **pending writers** (prepared-but-undecided slots that voted commit and
  write an object);
* a single-shard read-only transaction is served directly from the leader's
  applied store — no coordinator, no certification — **iff** the leader
  holds a valid read lease and none of the requested objects has a pending
  writer.  Otherwise the leader refuses and the client falls back to the
  certified path;
* read leases are granted by the configuration service (the membership
  oracle) to the shard's current leader for a bounded duration and renewed
  event-driven — there are no replica-side timers, so the simulation's
  determinism and idle-detection contracts are untouched.

**Why the pending-writer check is sufficient** (the freshness argument):
a transaction decided *anywhere* in the system had its PREPARE arrive at
every involved shard leader strictly earlier in virtual time — the
coordinator cannot decide without that leader's vote.  So when a read
arrives at the leader, every conflicting write that is already decided
(and therefore potentially client-visible) is either still pending here
(the read is refused) or already applied (the read observes it).  A served
read consequently never misses a write that really-precedes it, which is
exactly what strict serializability demands of the fast path.

The ``broken-snapshot`` mode deliberately violates the rule — it serves
reads past lease expiry and ignores pending writers, mirroring the paper's
Figure 4a-style broken-protocol ablations — so the online checker can
demonstrate that the lease/pending discipline is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.serializability import ObjectId, Version, VERSION_ZERO
from repro.core.types import Decision, Phase
from repro.store.kv import VersionedKVStore, VersionedValue


READ_MODES = ("certified", "snapshot", "broken-snapshot")

# Virtual-time lease length (in network delays) generous enough that a
# steady-state run never loses its lease; scenario specs override it (the
# stale-lease ablation uses a short one and blocks renewal).
DEFAULT_LEASE = 500.0


@dataclass(frozen=True)
class ReadPolicy:
    """How a cluster treats read-only transactions.

    * ``certified`` — every read goes through certification (the default;
      the read machinery stays completely inert, preserving byte-identical
      histories with pre-read-path builds);
    * ``snapshot`` — single-shard read-only transactions route to the shard
      leader's applied store under a read lease, falling back to the
      certified path on refusal;
    * ``broken-snapshot`` — the deliberately unsafe ablation: leaders serve
      reads without checking lease validity or pending writers.
    """

    mode: str = "certified"
    lease: float = DEFAULT_LEASE

    def validate(self) -> None:
        if self.mode not in READ_MODES:
            raise ValueError(f"unknown read mode {self.mode!r}; expected one of {READ_MODES}")
        if self.lease <= 0:
            raise ValueError("lease duration must be positive")

    @property
    def enabled(self) -> bool:
        return self.mode != "certified"

    @property
    def broken(self) -> bool:
        return self.mode == "broken-snapshot"

    def describe(self) -> str:
        if not self.enabled:
            return "off"
        return f"{self.mode}(lease={self.lease:g})"


class ReplicaReadEngine:
    """Per-replica snapshot-read state: applied store, pending writers,
    closed-timestamp watermark and the read lease.

    Installed on every shard replica when the cluster's read policy is
    enabled.  The engine registers itself as a decision listener, so both
    protocol variants feed it through their single decision choke point
    (``on_slot_decision`` / ``_apply_decision``); the prepare-side hooks are
    called explicitly from the certification handlers.
    """

    def __init__(self, replica, policy: ReadPolicy) -> None:
        self.replica = replica
        self.policy = policy
        self.store = VersionedKVStore()
        self._seeds: Dict[ObjectId, object] = {}
        # Prepared-but-undecided commit-voted writers, per object, plus the
        # payload each counted slot contributed (needed to decrement).
        self.pending_writers: Dict[ObjectId, int] = {}
        self._counted: Dict[int, object] = {}
        self._applied: set = set()
        # Closed-timestamp watermark: the highest commit version installed
        # into the applied store (VERSION_ZERO until the first commit).
        self.watermark: Version = VERSION_ZERO
        # Read lease (absolute virtual-time expiry, granted by the config
        # service); -inf until the first grant arrives.
        self.lease_expires = float("-inf")
        self.lease_pending = False
        # The epoch this engine serves under.  The replica updates it at
        # every configuration install; a grant echoing a different epoch is
        # refused (the deposed-leader fence).
        self.epoch = 0
        # Metrics.
        self.reads_served = 0
        self.reads_refused_lease = 0
        self.reads_refused_pending = 0
        self.stale_serves = 0  # broken mode: serves a valid engine would refuse
        self.stale_grants = 0  # grants refused by the epoch fence
        replica.decision_listeners.append(self._on_slot_decided)

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def seed(self, initial: Dict[ObjectId, object]) -> None:
        """Install the same initial values the client-side store starts
        from, so served values match certified reads byte for byte."""
        for obj, value in initial.items():
            if obj not in self._seeds:
                self._seeds[obj] = value
                self.store.seed(obj, value)

    # ------------------------------------------------------------------
    # certification hooks
    # ------------------------------------------------------------------
    def note_prepared(self, slot: int) -> None:
        """A slot entered the PREPARED phase: count its writes as pending if
        it voted commit (an abort-voted slot can never decide commit)."""
        if slot in self._counted or slot in self._applied:
            return
        if self.replica.vote_arr.get(slot) is not Decision.COMMIT:
            return
        payload = self.replica.payload_arr.get(slot)
        written = getattr(payload, "written_objects", None)
        if not written:
            return
        self._counted[slot] = payload
        for obj in written:
            self.pending_writers[obj] = self.pending_writers.get(obj, 0) + 1

    def _on_slot_decided(self, slot: int, txn, decision: Decision) -> None:
        payload = self._counted.pop(slot, None)
        if payload is not None:
            for obj in payload.written_objects:
                remaining = self.pending_writers[obj] - 1
                if remaining:
                    self.pending_writers[obj] = remaining
                else:
                    del self.pending_writers[obj]
        if decision is Decision.COMMIT and slot not in self._applied:
            applied = payload if payload is not None else self.replica.payload_arr.get(slot)
            written = getattr(applied, "written_objects", None)
            if written:
                self.store.install_payload(applied)
                if applied.commit_version > self.watermark:
                    self.watermark = applied.commit_version
            self._applied.add(slot)

    def rebuild(self) -> None:
        """Recompute applied store and pending counts from the replica's slot
        arrays (after a NEW_STATE transfer replaced them wholesale)."""
        self.store = VersionedKVStore()
        self.pending_writers = {}
        self._counted = {}
        self._applied = set()
        self.watermark = VERSION_ZERO
        for obj, value in self._seeds.items():
            self.store.seed(obj, value)
        replica = self.replica
        for slot in sorted(replica.dec_arr):
            if replica.dec_arr[slot] is not Decision.COMMIT:
                self._applied.add(slot)
                continue
            payload = replica.payload_arr.get(slot)
            written = getattr(payload, "written_objects", None)
            if written:
                self.store.install_payload(payload)
                if payload.commit_version > self.watermark:
                    self.watermark = payload.commit_version
            self._applied.add(slot)
        for slot, phase in replica.phase_arr.items():
            if phase is Phase.PREPARED and slot not in self._applied:
                self.note_prepared(slot)

    # ------------------------------------------------------------------
    # lease
    # ------------------------------------------------------------------
    def lease_valid(self, now: float) -> bool:
        return now < self.lease_expires

    def lease_wants_renewal(self, now: float) -> bool:
        """Renew once less than half the lease duration remains."""
        return (
            not self.lease_pending
            and self.lease_expires - now < self.policy.lease / 2.0
        )

    def note_epoch(self, epoch: int) -> None:
        """The replica installed a configuration: fence the lease epoch."""
        self.epoch = epoch

    def note_lease(self, expires_at: float, granted: bool, epoch: int = 0) -> None:
        """Record the configuration service's answer to a lease request.

        ``epoch`` is the grant's echoed request epoch; a grant that no
        longer matches the engine's current epoch is refused — an in-flight
        grant arriving after the holder was deposed must not re-arm the
        lease (the deposed-leader fence).
        """
        self.lease_pending = False
        if epoch != self.epoch:
            self.stale_grants += 1
            return
        if granted and expires_at > self.lease_expires:
            self.lease_expires = expires_at

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(
        self, objects: Tuple[ObjectId, ...], now: float
    ) -> Tuple[str, Optional[List[Tuple[ObjectId, object, Version]]]]:
        """Attempt to serve a snapshot read.

        Returns ``("ok", reads)`` with one ``(object, value, version)``
        triple per requested object, or ``(reason, None)`` — reason
        ``"lease"`` or ``"pending"`` — when the fast path must refuse and
        the client should fall back to certification.  Broken mode records
        how many serves a correct engine would have refused.
        """
        refusal = None
        if not self.lease_valid(now):
            refusal = "lease"
        else:
            for obj in objects:
                if self.pending_writers.get(obj):
                    refusal = "pending"
                    break
        if refusal is not None and not self.policy.broken:
            if refusal == "lease":
                self.reads_refused_lease += 1
            else:
                self.reads_refused_pending += 1
            return refusal, None
        if refusal is not None:
            self.stale_serves += 1
        reads: List[Tuple[ObjectId, object, Version]] = []
        for obj in objects:
            versioned: VersionedValue = self.store.read(obj)
            reads.append((obj, versioned.value, versioned.version))
        self.reads_served += 1
        return "ok", reads
