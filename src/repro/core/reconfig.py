"""Per-shard reconfiguration (Figure 1, lines 33-69) and membership policy.

When a failure is suspected inside a shard, any process can reconfigure it:

1. read the last configuration from the configuration service and *probe*
   its members, asking them to join a higher epoch (which makes them stop
   processing transactions, Invariant 3);
2. traverse epochs downwards past configurations that never became
   operational, until an *initialized* process is found — it becomes the new
   leader and is guaranteed to know every transaction accepted at the shard
   (Invariant 2);
3. compute the new membership (probe responders plus fresh spare
   processes), publish it with a compare-and-swap on the configuration
   service, and tell the new leader, which transfers its state to the new
   followers with ``NEW_STATE``.

The logic lives in :class:`ReconfigMixin`, mixed into
:class:`repro.core.replica.ShardReplica`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.messages import (
    ConfigChange,
    CsCompareAndSwap,
    CsGet,
    CsGetLast,
    CsReply,
    CsViewChange,
    NewConfig,
    NewState,
    Probe,
    ProbeAck,
)
from repro.core.types import Configuration, Phase, ProcessId, ShardId, Status


class SparePool:
    """Pool of fresh, not-yet-initialized replica processes.

    ``compute_membership`` may add fresh processes to a new configuration to
    restore the desired fault-tolerance level after replacing crashed ones.
    The pool is shared by reference between the reconfigurers of a cluster;
    it models the operator-provided supply of standby machines.
    """

    def __init__(self, pids: Sequence[ProcessId] = ()) -> None:
        self._available: List[ProcessId] = list(pids)
        self.taken: List[ProcessId] = []

    def add(self, pid: ProcessId) -> None:
        self._available.append(pid)

    def take(self, count: int) -> List[ProcessId]:
        taken = self._available[:count]
        self._available = self._available[count:]
        self.taken.extend(taken)
        return taken

    @property
    def available(self) -> Tuple[ProcessId, ...]:
        return tuple(self._available)

    def __len__(self) -> int:
        return len(self._available)


class MembershipPolicy:
    """Strategy for ``compute_membership`` (line 48).

    The paper only requires that the new membership contains the new leader
    and otherwise consists of probe responders or fresh processes.  The
    default policy keeps the responders (minus processes the reconfigurer
    believes crashed) and tops up to ``target_size`` from the spare pool.
    """

    def __init__(self, target_size: Optional[int] = None) -> None:
        self.target_size = target_size

    def compute(
        self,
        shard: ShardId,
        new_leader: ProcessId,
        responders: Set[ProcessId],
        suspected: Set[ProcessId],
        spares: SparePool,
        previous_size: int,
    ) -> Tuple[ProcessId, ...]:
        target = self.target_size or previous_size
        members: List[ProcessId] = [new_leader]
        for pid in sorted(responders):
            if pid != new_leader and pid not in suspected and len(members) < target:
                members.append(pid)
        if len(members) < target:
            members.extend(spares.take(target - len(members)))
        return tuple(members)


@dataclass
class _ProbeRound:
    """State of the probing loop of one reconfiguration attempt."""

    shard: ShardId
    recon_epoch: int
    probed_epoch: int = 0
    probed_members: Tuple[ProcessId, ...] = ()
    responders: Set[ProcessId] = field(default_factory=set)
    false_ack_from_current_round: bool = False


class ReconfigMixin:
    """Reconfiguration-side handlers; mixed into ``ShardReplica``."""

    def _init_reconfig(self) -> None:
        self.probing = False
        self._probe_round: Optional[_ProbeRound] = None
        self.suspected: Set[ProcessId] = set()
        self._cs_request_id = 0
        self._cs_callbacks: Dict[int, Callable[[CsReply], None]] = {}
        self.reconfigurations_initiated = 0
        self.reconfigurations_introduced = 0
        self.unsolicited_reconfigurations = 0

    # ------------------------------------------------------------------
    # configuration-service RPC plumbing
    # ------------------------------------------------------------------
    def _cs_call(self, build_message, callback: Callable[[CsReply], None]) -> None:
        self._cs_request_id += 1
        request_id = self._cs_request_id
        self._cs_callbacks[request_id] = callback
        self.send(self.config_service, build_message(request_id))

    def on_cs_reply(self, msg: CsReply, sender: str) -> None:
        callback = self._cs_callbacks.pop(msg.request_id, None)
        if callback is not None:
            callback(msg)

    # ------------------------------------------------------------------
    # reconfigure(s): lines 33-39
    # ------------------------------------------------------------------
    def suspect(self, pid: ProcessId) -> None:
        """Record a failure suspicion (used by compute_membership)."""
        self.suspected.add(pid)

    def reconfigure(self, shard: Optional[ShardId] = None) -> bool:
        """Initiate a reconfiguration of ``shard`` (default: own shard)."""
        shard = shard or self.shard
        if self.probing:
            return False
        self.probing = True
        self.reconfigurations_initiated += 1

        def on_last(reply: CsReply) -> None:
            if not reply.ok or reply.config is None:
                self.probing = False
                return
            round_ = _ProbeRound(
                shard=shard,
                recon_epoch=reply.config.epoch + 1,
                probed_epoch=reply.config.epoch,
                probed_members=reply.config.members,
            )
            self._probe_round = round_
            self.send_all(round_.probed_members, Probe(epoch=round_.recon_epoch))

        self._cs_call(lambda rid: CsGetLast(shard=shard, request_id=rid), on_last)
        return True

    def on_cs_view_change(self, msg: CsViewChange, sender: str) -> None:
        """The configuration service confirmed failure suspicions and asks
        this process to drive the view change (unsolicited failover).

        Runs through the ordinary probe/CAS path above, so it races safely
        with timeout-driven ``reconfigure`` calls: the ``probing`` guard
        deduplicates concurrent attempts on this process, and the service's
        compare-and-swap lets exactly one attempt per epoch win.
        """
        if msg.epoch < self.epoch.get(msg.shard, 0):
            return  # stale: a newer configuration is already installed
        for pid in msg.suspects:
            self.suspect(pid)
        if self.reconfigure(msg.shard):
            self.unsolicited_reconfigurations += 1

    # ------------------------------------------------------------------
    # PROBE / PROBE_ACK: lines 40-55
    # ------------------------------------------------------------------
    def on_probe(self, msg: Probe, sender: str) -> None:
        if msg.epoch < self.new_epoch:
            return
        self.status = Status.RECONFIGURING
        self.new_epoch = msg.epoch
        self.send(sender, ProbeAck(initialized=self.initialized, epoch=msg.epoch, shard=self.shard))

    def on_probe_ack(self, msg: ProbeAck, sender: str) -> None:
        round_ = self._probe_round
        if (
            not self.probing
            or round_ is None
            or msg.epoch != round_.recon_epoch
            or msg.shard != round_.shard
        ):
            return
        round_.responders.add(sender)
        if msg.initialized:
            self._finish_probing(round_, new_leader=sender)
        else:
            self._step_down_probing(round_, sender)

    def _finish_probing(self, round_: _ProbeRound, new_leader: ProcessId) -> None:
        """Line 45: an initialized process was found; install the new config."""
        self.probing = False
        members = self.membership_policy.compute(
            shard=round_.shard,
            new_leader=new_leader,
            responders=round_.responders,
            suspected=self.suspected,
            spares=self.spares,
            previous_size=len(round_.probed_members),
        )
        config = Configuration(epoch=round_.recon_epoch, members=members, leader=new_leader)

        def on_cas(reply: CsReply) -> None:
            if reply.ok:
                self.reconfigurations_introduced += 1
                self.send(new_leader, NewConfig(epoch=round_.recon_epoch, members=members))

        self._cs_call(
            lambda rid: CsCompareAndSwap(
                shard=round_.shard,
                expected_epoch=round_.recon_epoch - 1,
                config=config,
                request_id=rid,
            ),
            on_cas,
        )

    def _step_down_probing(self, round_: _ProbeRound, sender: ProcessId) -> None:
        """Lines 51-55: the probed epoch never became operational; probe the
        preceding one."""
        if sender not in round_.probed_members:
            return
        if round_.false_ack_from_current_round:
            return
        round_.false_ack_from_current_round = True
        previous_epoch = round_.probed_epoch - 1
        if previous_epoch < 1:
            # Nothing below the initial configuration: reconfiguration is stuck
            # (all shard data lost), matching the paper's liveness caveat.
            self.probing = False
            return

        def on_get(reply: CsReply) -> None:
            if not reply.ok or reply.config is None or not self.probing:
                return
            round_.probed_epoch = previous_epoch
            round_.probed_members = reply.config.members
            round_.false_ack_from_current_round = False
            self.send_all(round_.probed_members, Probe(epoch=round_.recon_epoch))

        self._cs_call(
            lambda rid: CsGet(shard=round_.shard, epoch=previous_epoch, request_id=rid),
            on_get,
        )

    # ------------------------------------------------------------------
    # NEW_CONFIG / NEW_STATE / CONFIG_CHANGE: lines 56-69
    # ------------------------------------------------------------------
    def on_new_config(self, msg: NewConfig, sender: str) -> None:
        if msg.epoch != self.new_epoch:
            # A newer probe has superseded this configuration; refusing to
            # lead it preserves Invariant 3.
            return
        self.status = Status.LEADER
        self.epoch[self.shard] = msg.epoch
        self.members[self.shard] = tuple(msg.members)
        self.leader[self.shard] = self.pid
        # Slots may have been filled by ACCEPTs while we were a follower;
        # rebuild the vote index before voting in the new epoch.
        self._votes.invalidate()
        self.next = max((k for k, ph in self.phase_arr.items() if ph is not Phase.START), default=0)
        state = NewState(
            epoch=msg.epoch,
            members=tuple(msg.members),
            txn=dict(self.txn_arr),
            payload=dict(self.payload_arr),
            vote=dict(self.vote_arr),
            dec=dict(self.dec_arr),
            phase=dict(self.phase_arr),
        )
        for member in msg.members:
            if member != self.pid:
                self.send(member, state)
        self._on_configuration_installed()
        self._unstash()

    def on_new_state(self, msg: NewState, sender: str) -> None:
        if msg.epoch < self.new_epoch:
            return
        self.initialized = True
        self.status = Status.FOLLOWER
        self.new_epoch = msg.epoch
        self.epoch[self.shard] = msg.epoch
        self.members[self.shard] = tuple(msg.members)
        self.leader[self.shard] = sender
        self.txn_arr = dict(msg.txn)
        self.payload_arr = dict(msg.payload)
        self.vote_arr = dict(msg.vote)
        self.dec_arr = dict(msg.dec)
        self.phase_arr = dict(msg.phase)
        self.slot_of = {txn: slot for slot, txn in self.txn_arr.items()}
        self._votes.invalidate()
        self.next = max(
            (k for k, ph in self.phase_arr.items() if ph is not Phase.START), default=0
        )
        self._on_configuration_installed()
        self._unstash()

    def on_config_change(self, msg: ConfigChange, sender: str) -> None:
        if msg.shard == self.shard:
            return
        if self.epoch.get(msg.shard, 0) >= msg.epoch:
            return
        self.epoch[msg.shard] = msg.epoch
        self.members[msg.shard] = tuple(msg.members)
        self.leader[msg.shard] = msg.leader
        self._unstash()

    def _on_configuration_installed(self) -> None:
        """Hook for subclasses (the RDMA variant re-opens connections here)."""
