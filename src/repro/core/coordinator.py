"""Transaction-coordinator duties of a replica (Figure 1, lines 1-3, 18-29, 70-73).

Any replica process can act as the coordinator of a transaction: it sends
``PREPARE`` to the leaders of the relevant shards, relays each leader's vote
to the shard's followers in ``ACCEPT`` messages, collects ``ACCEPT_ACK``
confirmation from every follower, computes the final decision with ``⊓`` and
distributes it.  A replica that is left holding a prepared transaction whose
coordinator seems to have failed can take over with ``retry`` (line 70).

The logic lives in :class:`CoordinatorMixin`, mixed into
:class:`repro.core.replica.ShardReplica`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.core.batching import BatchPolicy, MessageBatcher
from repro.core.messages import (
    Accept,
    AcceptAck,
    AcceptAckBatch,
    AcceptBatch,
    CertifyBatch,
    CertifyRequest,
    CertifyRequestBatch,
    DecisionBatch,
    Prepare,
    PrepareAck,
    SlotDecision,
    TxnDecision,
    TxnDecisionBatch,
    VoteBatch,
)
from repro.core.types import BOTTOM, Decision, Phase, ShardId, TxnId


@dataclass
class CoordinatorEntry:
    """Book-keeping for one transaction this process coordinates."""

    txn: TxnId
    payload: Any
    shards: frozenset
    started_at: float
    votes: Dict[ShardId, Decision] = field(default_factory=dict)
    slots: Dict[ShardId, int] = field(default_factory=dict)
    vote_epochs: Dict[ShardId, int] = field(default_factory=dict)
    # follower acks received, keyed by (shard, epoch)
    acks: Dict[tuple, Set[str]] = field(default_factory=dict)
    decided: bool = False
    decision: Optional[Decision] = None
    decided_at: Optional[float] = None
    # When the last of this transaction's PREPAREs left the coordinator.
    # Equals started_at on the unbatched path; under batching the gap
    # started_at -> dispatched_at is the per-transaction queueing delay
    # (reported as the queue_wait phase of the latency breakdown).
    dispatched_at: Optional[float] = None


def deduplicate_certify_request(replica, msg: CertifyRequest, sender: str) -> bool:
    """Shared duplicate-``CERTIFY`` handling for every coordinator-capable
    replica (message-passing and RDMA variants alike).

    Client sessions re-submit on timeout, so a request may be a duplicate:
    a decided transaction is re-answered from the decision cache (the
    coordinator entry, or the replica's own certification order) rather
    than re-certified — duplicates must never produce a second, possibly
    different, decision.  Returns True when the request was answered here;
    False when the caller should (re-)certify — an in-flight duplicate is
    counted but re-driven, which is idempotent at the leaders (they
    re-answer the stored vote for a known transaction).
    """
    entry = replica._coordinated.get(msg.txn)
    if entry is not None and entry.decided:
        replica.duplicate_certify_requests += 1
        replica.send(sender, TxnDecision(txn=msg.txn, decision=entry.decision))
        return True
    slot = replica.slot_of.get(msg.txn)
    if entry is None and slot is not None and slot in replica.dec_arr:
        # Not coordinated here, but this replica's shard has already
        # persisted the decision: answer from the local decision cache.
        replica.duplicate_certify_requests += 1
        replica.send(sender, TxnDecision(txn=msg.txn, decision=replica.dec_arr[slot]))
        return True
    if entry is not None:
        replica.duplicate_certify_requests += 1
    return False


class CoordinatorMixin:
    """Coordinator-side message handlers; mixed into ``ShardReplica``."""

    def _init_coordinator(self) -> None:
        self._coordinated: Dict[TxnId, CoordinatorEntry] = {}
        # Duplicate CERTIFY requests deduplicated (client-session retries).
        self.duplicate_certify_requests = 0
        # Vote pipelining (the protocol's normal mode): PREPARE certification
        # of the next transaction overlaps ACCEPT persistence of the ones
        # still in flight.  pipeline_commits=False is the stop-and-wait
        # measurement baseline: PREPAREs for a new transaction are held until
        # every previously dispatched one is fully persisted and decided.
        # It models a failure-free run (held dispatches are only re-driven
        # by decisions, not by fault recovery).
        self.pipeline_commits = getattr(self, "pipeline_commits", True)
        self._unpersisted: Set[TxnId] = set()
        self._held_certifies: list = []
        self._held_txns: Set[TxnId] = set()
        # Protocol-level batching (repro.core.batching): with an enabled
        # policy the PREPARE fan-out, the ACCEPT relay and the DECISION
        # broadcast each accumulate into per-destination batches.
        policy: BatchPolicy = getattr(self, "batch_policy", None) or BatchPolicy()
        self._batching = policy.enabled
        self.batchers: list = []
        if self._batching:
            self._prepare_batcher = MessageBatcher(
                self,
                policy,
                wrap=lambda items: CertifyBatch(prepares=items),
                on_flush=self._note_prepares_flushed,
            )
            self._accept_batcher = MessageBatcher(
                self, policy, wrap=lambda items: AcceptBatch(accepts=items)
            )
            self._decision_batcher = MessageBatcher(
                self, policy, wrap=lambda items: DecisionBatch(decisions=items)
            )
            self._reply_batcher = MessageBatcher(
                self, policy, wrap=lambda items: TxnDecisionBatch(decisions=items)
            )
            self.batchers = [
                self._prepare_batcher,
                self._accept_batcher,
                self._decision_batcher,
                self._reply_batcher,
            ]

    def _note_prepares_flushed(self, dst: str, prepares: tuple) -> None:
        """Stamp queueing delay: a transaction counts as dispatched once the
        last of its per-shard PREPAREs has left the coordinator."""
        for prepare in prepares:
            entry = self._coordinated.get(prepare.txn)
            if entry is not None:
                entry.dispatched_at = self.now

    # ------------------------------------------------------------------
    # public API (Figure 1, lines 1-3 and 70-73)
    # ------------------------------------------------------------------
    def certify(self, txn: TxnId, payload: Any) -> CoordinatorEntry:
        """``certify(t, l)``: act as coordinator for transaction ``txn``."""
        shards = self.directory.shards_of(txn)
        entry = self._coordinated.get(txn)
        if entry is None:
            entry = CoordinatorEntry(
                txn=txn, payload=payload, shards=frozenset(shards), started_at=self.now
            )
            self._coordinated[txn] = entry
        if (
            not self.pipeline_commits
            and self._unpersisted
            and txn not in self._unpersisted
            and txn not in self._held_txns
        ):
            # Stop-and-wait: another transaction's ACCEPT persistence is in
            # flight, so hold this one's PREPAREs until it decides.
            self._held_txns.add(txn)
            self._held_certifies.append((txn, payload))
            return entry
        self._dispatch_prepares(entry, payload)
        return entry

    def _dispatch_prepares(self, entry: CoordinatorEntry, payload: Any) -> None:
        """Fan PREPAREs out to the involved shard leaders."""
        txn = entry.txn
        shards = entry.shards
        if not self.pipeline_commits and shards:
            self._unpersisted.add(txn)
        # Sorted: `shards` is a set, and the fan-out order must not depend
        # on the process's hash seed (random latency models draw one delay
        # per send, so iteration order shapes the schedule; under batching
        # it also fixes batch composition).
        for shard in sorted(shards):
            projected = (
                BOTTOM if payload is BOTTOM else self.scheme.project(payload, shard)
            )
            prepare = Prepare(txn=txn, payload=projected)
            if self._batching:
                self._prepare_batcher.add(self.leader[shard], prepare)
            else:
                entry.dispatched_at = self.now
                self.send(self.leader[shard], prepare)
        if not shards:
            # A transaction touching no shard (empty payload) commits
            # trivially: the meet over an empty set of votes is commit.
            self._maybe_decide(entry)

    def _drain_held_certifies(self) -> None:
        """Dispatch held transactions once the pipeline gate is clear."""
        while self._held_certifies and not self._unpersisted:
            txn, payload = self._held_certifies.pop(0)
            self._held_txns.discard(txn)
            entry = self._coordinated.get(txn)
            if entry is None or entry.decided:
                continue
            self._dispatch_prepares(entry, payload)

    def retry(self, slot: int) -> Optional[CoordinatorEntry]:
        """``retry(k)``: become a new coordinator for a prepared transaction
        whose original coordinator is suspected to have failed (line 70)."""
        if self.phase_arr.get(slot) is not Phase.PREPARED:
            return None
        txn = self.txn_arr[slot]
        return self.certify(txn, BOTTOM)

    def coordinated(self, txn: TxnId) -> Optional[CoordinatorEntry]:
        return self._coordinated.get(txn)

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def on_certify_request(self, msg: CertifyRequest, sender: str) -> None:
        """A client picked this replica as the transaction's coordinator;
        duplicates are answered by :func:`deduplicate_certify_request`."""
        if deduplicate_certify_request(self, msg, sender):
            return
        self.certify(msg.txn, msg.payload)

    def on_certify_request_batch(self, msg: CertifyRequestBatch, sender: str) -> None:
        """A client's batched submissions: each element goes through the
        full per-request path (dedup included — a retried transaction
        arriving inside a batch is re-answered from the decision cache),
        and the per-shard PREPARE batches accumulate across the elements."""
        for request in msg.requests:
            self.on_certify_request(request, sender)

    def on_prepare_ack(self, msg: PrepareAck, sender: str) -> None:
        """Relay the leader's vote to the shard's followers (lines 18-20)."""
        entry = self._coordinated.get(msg.txn)
        if entry is None:
            return
        if self.epoch.get(msg.shard) != msg.epoch:
            # Precondition epoch[s] = e (line 19).  A newer epoch may simply
            # not have reached us yet; stash and retry once it does.
            if msg.epoch > self.epoch.get(msg.shard, 0):
                self._stash_message(msg, sender)
            return
        entry.votes[msg.shard] = msg.vote
        entry.slots[msg.shard] = msg.slot
        entry.vote_epochs[msg.shard] = msg.epoch
        followers = [p for p in self.members[msg.shard] if p != self.leader[msg.shard]]
        accept = Accept(
            epoch=msg.epoch,
            slot=msg.slot,
            txn=msg.txn,
            payload=msg.payload,
            vote=msg.vote,
        )
        if self._batching:
            self._accept_batcher.add_all(followers, accept)
        else:
            self.send_all(followers, accept)
        # A shard with no followers (f = 0) is fully persisted by the
        # leader's own vote, so the decision check must run here too.
        self._maybe_decide(entry)

    def on_vote_batch(self, msg: VoteBatch, sender: str) -> None:
        """A leader's aggregated vote vector: each element is a complete
        ``PREPARE_ACK``, processed in batch order.  The resulting ACCEPT
        relays re-batch per follower (adaptive policies coalesce them
        within the instant)."""
        for ack in msg.acks:
            self.on_prepare_ack(ack, sender)

    def on_accept_ack_batch(self, msg: AcceptAckBatch, sender: str) -> None:
        for ack in msg.acks:
            self.on_accept_ack(ack, sender)

    def on_accept_ack(self, msg: AcceptAck, sender: str) -> None:
        """Count follower confirmations; decide once every shard is persisted
        (lines 26-29)."""
        entry = self._coordinated.get(msg.txn)
        if entry is None:
            return
        entry.acks.setdefault((msg.shard, msg.epoch), set()).add(sender)
        entry.votes.setdefault(msg.shard, msg.vote)
        entry.slots.setdefault(msg.shard, msg.slot)
        entry.vote_epochs.setdefault(msg.shard, msg.epoch)
        self._maybe_decide(entry)

    # ------------------------------------------------------------------
    # decision
    # ------------------------------------------------------------------
    def _shard_persisted(self, entry: CoordinatorEntry, shard: ShardId) -> bool:
        """True when every follower of ``shard`` (in the coordinator's current
        view of its configuration) has acknowledged the ACCEPT for this txn."""
        epoch = self.epoch.get(shard)
        if epoch is None:
            return False
        if entry.vote_epochs.get(shard) != epoch or shard not in entry.votes:
            return False
        followers = {p for p in self.members[shard] if p != self.leader[shard]}
        acked = entry.acks.get((shard, epoch), set())
        return followers <= acked

    def _maybe_decide(self, entry: CoordinatorEntry) -> None:
        if entry.decided:
            return
        if not all(self._shard_persisted(entry, shard) for shard in entry.shards):
            return
        decision = Decision.meet_all(entry.votes[s] for s in entry.shards)
        entry.decided = True
        entry.decision = decision
        entry.decided_at = self.now
        # Report to the client (line 27) ...
        if self.directory.known(entry.txn):
            client = self.directory.client_of(entry.txn)
            reply = TxnDecision(txn=entry.txn, decision=decision)
            if self._batching:
                self._reply_batcher.add(client, reply)
            else:
                self.send(client, reply)
        # ... and persist the decision at every relevant shard (lines 28-29).
        # Sorted for hash-seed-independent send order (see `certify`).
        for shard in sorted(entry.shards):
            message = SlotDecision(
                epoch=self.epoch[shard], slot=entry.slots[shard], decision=decision
            )
            if self._batching:
                self._decision_batcher.add_all(self.members[shard], message)
            else:
                self.send_all(self.members[shard], message)
        if not self.pipeline_commits:
            self._unpersisted.discard(entry.txn)
            self._drain_held_certifies()
