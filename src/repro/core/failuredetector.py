"""Heartbeat-based failure detection driving unsolicited view changes.

The paper assumes an external membership oracle that notices failures and
drives reconfiguration; until now the reproduction approximated it with
client-side retry timeouts (a failover burns a full retry window, and a
slow-but-alive leader is invisible).  This module supplies the oracle:

* every live replica sends a ``HEARTBEAT`` to its co-members once per
  ``interval`` (driven by one cluster-level :class:`HeartbeatPump` tick);
* each replica runs a per-observer :class:`FailureDetector` that scores
  the silence of every watched peer — either as whole missed heartbeat
  windows (``mode="bounded"``) or as a phi-accrual-style suspicion score
  (``mode="phi"``: elapsed silence over the smoothed inter-arrival mean);
* a peer whose score crosses the threshold is *suspected*; the observer
  reports the suspicion to the configuration service, which aggregates
  reports per (shard, epoch, suspect) and — once ``confirmations``
  distinct observers agree — asks a surviving member to propose a view
  change through the ordinary CAS path (``CS_VIEW_CHANGE``);
* a heartbeat arriving from a suspected peer refutes the suspicion
  (``false_suspicions``), which is what the flapping scenarios measure.

Determinism: heartbeat deliveries are ordinary network messages, and the
pump tick is a *weak* scheduler event (:meth:`Scheduler.schedule_weak`), so
a recurring heartbeat timer cannot keep run-to-quiescence alive — the
engine stops once only weak events remain, and the stop decision depends
only on the pending-strong count, which the grouped (parallel-shards)
engine replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set

from repro.core.types import ProcessId


DETECTOR_MODES = (
    "bounded",  # suspect after `threshold` whole heartbeat windows of silence
    "phi",  # suspect when silence / smoothed inter-arrival mean >= phi_threshold
)

#: Weight of the newest inter-arrival gap in the phi-mode smoothed mean.
_PHI_SMOOTHING = 0.2


@dataclass(frozen=True)
class DetectorPolicy:
    """Failure-detector knobs (declarative; shared by all three stacks).

    ``interval = 0`` (the default) disables the detector entirely — no
    heartbeats, no pump, no detector state — preserving the paper's
    oracle-free, timeout-driven failover.
    """

    mode: str = "bounded"
    interval: float = 0.0  # heartbeat period in message delays; 0 = off
    threshold: int = 3  # bounded: missed windows before suspicion
    phi_threshold: float = 4.0  # phi: suspicion score cutoff
    confirmations: int = 1  # distinct observers required for a view change

    def validate(self) -> None:
        if self.mode not in DETECTOR_MODES:
            raise ValueError(
                f"unknown detector mode {self.mode!r}; expected one of {DETECTOR_MODES}"
            )
        if self.interval < 0:
            raise ValueError("heartbeat interval must be >= 0 (0 = detector off)")
        if self.threshold < 1:
            raise ValueError("suspicion threshold must be >= 1 missed window")
        if self.phi_threshold <= 0:
            raise ValueError("phi threshold must be positive")
        if self.confirmations < 1:
            raise ValueError("confirmations must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def describe(self) -> str:
        if not self.enabled:
            return "off"
        if self.mode == "phi":
            score = f"phi_threshold={self.phi_threshold:g}"
        else:
            score = f"threshold={self.threshold}"
        return (
            f"{self.mode}(interval={self.interval:g},{score},"
            f"confirmations={self.confirmations})"
        )


class FailureDetector:
    """One observer's view of its peers' liveness.

    The detector holds no timers of its own: :meth:`record` is called on
    every heartbeat arrival and :meth:`tick` once per pump interval, and
    suspicion derives purely from timestamps — ``misses = silence /
    interval`` — so there is no per-tick counter state to desynchronise.
    """

    def __init__(self, policy: DetectorPolicy, owner: ProcessId) -> None:
        self.policy = policy
        self.owner = owner
        self._last_arrival: Dict[ProcessId, float] = {}
        self._mean_gap: Dict[ProcessId, float] = {}
        self._suspected: Set[ProcessId] = set()
        self.suspicions = 0
        self.false_suspicions = 0

    def watch(self, peers: Iterable[ProcessId], now: float) -> None:
        """Reset the monitored set (bootstrap or configuration change).

        Retained peers keep their arrival history; new peers start with the
        benefit of the doubt (an implied arrival at ``now``), so a freshly
        installed configuration cannot instantly suspect a member that has
        simply not had a chance to heartbeat yet.
        """
        kept = [p for p in peers if p != self.owner]
        self._last_arrival = {p: self._last_arrival.get(p, now) for p in kept}
        self._mean_gap = {
            p: self._mean_gap.get(p, self.policy.interval) for p in kept
        }
        self._suspected &= set(kept)

    def record(self, peer: ProcessId, now: float) -> None:
        """A heartbeat from ``peer`` arrived; refutes any live suspicion."""
        last = self._last_arrival.get(peer)
        if last is None:
            return  # not a watched peer (stale sender after a view change)
        gap = now - last
        self._last_arrival[peer] = now
        self._mean_gap[peer] = (
            (1.0 - _PHI_SMOOTHING) * self._mean_gap[peer] + _PHI_SMOOTHING * gap
        )
        if peer in self._suspected:
            self._suspected.discard(peer)
            self.false_suspicions += 1

    def score(self, peer: ProcessId, now: float) -> float:
        """The suspicion score of ``peer``: missed windows (bounded) or the
        phi-style silence / mean-inter-arrival ratio."""
        silence = now - self._last_arrival[peer]
        if self.policy.mode == "phi":
            return silence / max(self._mean_gap[peer], 1e-9)
        return silence / self.policy.interval

    def tick(self, now: float) -> List[ProcessId]:
        """Evaluate every watched peer; returns the *newly* suspected ones
        (in sorted order, for deterministic report emission)."""
        cutoff = (
            self.policy.phi_threshold
            if self.policy.mode == "phi"
            else float(self.policy.threshold)
        )
        fresh: List[ProcessId] = []
        for peer in sorted(self._last_arrival):
            if peer in self._suspected:
                continue
            if self.score(peer, now) >= cutoff:
                self._suspected.add(peer)
                self.suspicions += 1
                fresh.append(peer)
        return fresh

    @property
    def suspected(self) -> frozenset:
        return frozenset(self._suspected)


class HeartbeatPump:
    """One cluster-level recurring tick driving heartbeats and detectors.

    A single weak self-re-arming timer (rather than one per replica) keeps
    the event count low and the per-tick replica order fixed (dict
    insertion order — the build order, identical in every engine).  Each
    tick asks every live replica to emit its heartbeats and then to
    evaluate its detector; emission and evaluation happen at the same
    virtual instant, but the heartbeats sent this tick only *arrive* a
    network delay later, so ordering within the tick is immaterial.

    The pump is armed exactly once, from driver context at cluster build
    time (a consistent creation point in both engines), and re-arms itself
    from inside the tick thereafter — never from driver context mid-run,
    where the grouped engine's clock may sit ahead of the serial one.
    """

    def __init__(self, scheduler, replicas: Callable[[], Iterable], policy: DetectorPolicy) -> None:
        self.scheduler = scheduler
        self.replicas = replicas
        self.policy = policy
        self.started = False
        self.ticks = 0

    def start(self) -> None:
        if self.started or not self.policy.enabled:
            return
        self.started = True
        self.scheduler.schedule_weak(self.policy.interval, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        for replica in self.replicas():
            if replica.crashed:
                continue
            replica.emit_heartbeats()
            replica.tick_detector()
        self.scheduler.schedule_weak(self.policy.interval, self._tick)
