"""Protocol messages for the message-passing protocol (Figure 1).

Every ``when received X(...)`` clause of the pseudocode corresponds to a
frozen dataclass here and an ``on_*`` handler on
:class:`repro.core.replica.ShardReplica`.  Field names follow the paper's
notation (``e`` = epoch, ``k`` = certification-order position, ``t`` =
transaction, ``l`` = payload, ``d`` = vote/decision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.types import Configuration, Decision, Phase, ProcessId, ShardId, TxnId


# ----------------------------------------------------------------------
# client <-> coordinator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertifyRequest:
    """Client request: ``certify(t, l)`` submitted to a replica that will act
    as the transaction's coordinator (Figure 1, line 1).

    ``request_id`` is the client session's attempt number for this
    transaction (1 for the first submission, 2+ for timeout-driven
    re-submissions).  The transaction id alone is the deduplication key —
    a coordinator that already knows the transaction re-answers from its
    decision cache instead of re-certifying, regardless of the attempt —
    so handlers do not need the attempt number for correctness; it is
    carried for tracing, the way production RPC layers tag retries.
    """

    txn: TxnId
    payload: Any
    request_id: int = 1


@dataclass(frozen=True)
class TxnDecision:
    """``DECISION(t, d)`` sent to the client of a transaction (line 27)."""

    txn: TxnId
    decision: Decision


# ----------------------------------------------------------------------
# snapshot-read fast path (client <-> shard leader, no coordinator)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadRequest:
    """A client's lease-guarded snapshot read of one shard's objects.

    Bypasses certification entirely: the shard leader answers from its
    applied store when its read lease is valid and no requested object has
    a prepared-but-undecided writer; otherwise it refuses and the client
    falls back to the certified path.
    """

    txn: TxnId
    objects: Tuple[str, ...]
    request_id: int = 1


@dataclass(frozen=True)
class ReadReply:
    """The leader's answer to a :class:`ReadRequest`.

    ``reads`` carries ``(object, value, version)`` triples when ``ok``;
    ``reason`` explains a refusal (``"lease"``, ``"pending"`` or
    ``"not-leader"``).
    """

    txn: TxnId
    ok: bool
    reads: Tuple[Tuple[str, Any, Tuple[int, str]], ...] = ()
    reason: str = ""


# ----------------------------------------------------------------------
# read leases (shard leader <-> configuration service)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CsLeaseRequest:
    """A shard leader asking the configuration service for a read lease of
    ``duration`` (virtual time); granted only to the current leader.

    ``epoch`` is the epoch the requester believes is current: the service
    grants only when it matches the epoch of the latest configuration, so
    a deposed (or not-yet-caught-up) leader is refused instead of armed
    with a lease it must not hold.
    """

    shard: ShardId
    duration: float
    request_id: int
    epoch: int = 0


@dataclass(frozen=True)
class CsLeaseGrant:
    """The configuration service's answer: the lease is valid until the
    absolute virtual time ``expires_at`` when ``ok``.

    ``epoch`` echoes the request: the recipient refuses grants whose epoch
    no longer matches its own, so an in-flight grant crossing a view
    change cannot let a stale leader serve snapshot reads.
    """

    shard: ShardId
    ok: bool
    expires_at: float
    request_id: int
    epoch: int = 0


# ----------------------------------------------------------------------
# failure detection (replicas <-> configuration service)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon between co-members of a shard."""

    shard: ShardId
    epoch: int


@dataclass(frozen=True)
class SuspicionReport:
    """An observer tells the configuration service it suspects ``suspect``
    (a co-member of ``shard`` at ``epoch``) of having failed."""

    shard: ShardId
    epoch: int
    suspect: ProcessId


@dataclass(frozen=True)
class CsViewChange:
    """The configuration service asks a surviving member to reconfigure
    ``shard`` past the confirmed-suspected ``suspects`` of ``epoch``."""

    shard: ShardId
    epoch: int
    suspects: Tuple[ProcessId, ...] = ()


# ----------------------------------------------------------------------
# certification (failure-free path)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Prepare:
    """``PREPARE(t, l)`` from a coordinator to a shard leader (line 3).

    ``payload`` is the shard projection ``l | s`` or ``BOTTOM`` when a
    recovering coordinator does not know the payload (line 73).
    """

    txn: TxnId
    payload: Any


@dataclass(frozen=True)
class PrepareAck:
    """``PREPARE_ACK(e, s, k, t, l, d)`` from a leader to the coordinator
    (lines 7 and 17)."""

    epoch: int
    shard: ShardId
    slot: int
    txn: TxnId
    payload: Any
    vote: Decision


@dataclass(frozen=True)
class Accept:
    """``ACCEPT(e, k, t, l, d)`` from the coordinator to the followers of a
    shard (line 20)."""

    epoch: int
    slot: int
    txn: TxnId
    payload: Any
    vote: Decision


@dataclass(frozen=True)
class AcceptAck:
    """``ACCEPT_ACK(s, e, k, t, d)`` from a follower back to the coordinator
    (line 25)."""

    shard: ShardId
    epoch: int
    slot: int
    txn: TxnId
    vote: Decision


@dataclass(frozen=True)
class SlotDecision:
    """``DECISION(e, k, d)`` from the coordinator to the members of a shard
    (line 29)."""

    epoch: int
    slot: int
    decision: Decision


# ----------------------------------------------------------------------
# certification (batched path)
#
# The batching layer (repro.core.batching) coalesces the per-transaction
# fan-out into per-destination batch messages.  Every element is a complete
# message of the unbatched protocol — batches carry no state of their own,
# so a receiver processes a batch exactly as it would the sequence of its
# elements (modulo one aggregated reply instead of many).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertifyRequestBatch:
    """A client's batched ``certify`` submissions to one coordinator."""

    requests: Tuple[CertifyRequest, ...]


@dataclass(frozen=True)
class TxnDecisionBatch:
    """A coordinator's batched ``DECISION`` replies to one client."""

    decisions: Tuple[TxnDecision, ...]


@dataclass(frozen=True)
class CertifyBatch:
    """A coordinator's batched ``PREPARE`` fan-out to one shard leader."""

    prepares: Tuple["Prepare", ...]


@dataclass(frozen=True)
class VoteBatch:
    """A leader's aggregated vote vector answering one :class:`CertifyBatch`
    (one ``PREPARE_ACK`` per transaction, in batch order)."""

    acks: Tuple[PrepareAck, ...]


@dataclass(frozen=True)
class AcceptBatch:
    """A coordinator's batched ``ACCEPT`` relay to one follower."""

    accepts: Tuple[Accept, ...]


@dataclass(frozen=True)
class AcceptAckBatch:
    """A follower's aggregated confirmation of one :class:`AcceptBatch`."""

    acks: Tuple[AcceptAck, ...]


@dataclass(frozen=True)
class DecisionBatch:
    """A coordinator's batched ``DECISION`` broadcast to one shard member."""

    decisions: Tuple[SlotDecision, ...]


# ----------------------------------------------------------------------
# reconfiguration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Probe:
    """``PROBE(e)`` asking a member of an old configuration to join epoch
    ``e`` (line 39)."""

    epoch: int


@dataclass(frozen=True)
class ProbeAck:
    """``PROBE_ACK(initialized, e, s)`` (line 44)."""

    initialized: bool
    epoch: int
    shard: ShardId


@dataclass(frozen=True)
class NewConfig:
    """``NEW_CONFIG(e, M)`` notifying the new leader of a shard (line 50)."""

    epoch: int
    members: Tuple[str, ...]


@dataclass(frozen=True)
class NewState:
    """``NEW_STATE(e, M, txn, payload, vote, dec, phase)``: the new leader's
    full state transferred to its followers (line 60)."""

    epoch: int
    members: Tuple[str, ...]
    txn: Dict[int, TxnId]
    payload: Dict[int, Any]
    vote: Dict[int, Decision]
    dec: Dict[int, Decision]
    phase: Dict[int, Phase]


@dataclass(frozen=True)
class ConfigChange:
    """``CONFIG_CHANGE(s, e, M, pl)`` pushed by the configuration service to
    the members of shards other than ``s`` (line 67)."""

    shard: ShardId
    epoch: int
    members: Tuple[str, ...]
    leader: str


# ----------------------------------------------------------------------
# configuration service RPC framing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CsGetLast:
    """``get_last(s)``: fetch the last stored configuration of shard ``s``."""

    shard: ShardId
    request_id: int


@dataclass(frozen=True)
class CsGet:
    """``get(s, e)``: fetch the configuration of shard ``s`` at epoch ``e``."""

    shard: ShardId
    epoch: int
    request_id: int


@dataclass(frozen=True)
class CsCompareAndSwap:
    """``compare_and_swap(s, e, ⟨e', M, pl⟩)``: store a new configuration if
    the last stored epoch of ``s`` is still ``e``."""

    shard: ShardId
    expected_epoch: int
    config: Configuration
    request_id: int


@dataclass(frozen=True)
class CsReply:
    """Response to any configuration-service request."""

    request_id: int
    ok: bool
    config: Optional[Configuration] = None
