"""Fundamental protocol types.

These mirror the vocabulary of the paper: transaction identifiers ``t ∈ T``,
decisions ``d ∈ D = {abort, commit}`` with the meet operator ``⊓``,
per-transaction phases (``start``/``prepared``/``decided``), process
statuses (``leader``/``follower``/``reconfiguring``) and shard
configurations ``⟨e, M, pl⟩``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


TxnId = str
ShardId = str
ProcessId = str


class _Bottom:
    """The undefined payload value ``⊥`` used by coordinator recovery.

    A new coordinator that does not know a transaction's payload retries it
    by sending ``PREPARE(t, ⊥)`` (Figure 1, line 73); a leader that has not
    certified the transaction then prepares it as aborted with the empty
    payload ``ε``.
    """

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


class Decision(enum.Enum):
    """Certification decision; forms a meet semi-lattice under ``⊓``."""

    COMMIT = "commit"
    ABORT = "abort"

    def meet(self, other: "Decision") -> "Decision":
        """The ``⊓`` operator: commit ⊓ commit = commit, anything ⊓ abort = abort."""
        if self is Decision.COMMIT and other is Decision.COMMIT:
            return Decision.COMMIT
        return Decision.ABORT

    def __and__(self, other: "Decision") -> "Decision":
        return self.meet(other)

    @staticmethod
    def meet_all(decisions) -> "Decision":
        """Fold ``⊓`` over an iterable of decisions (commit for empty input)."""
        result = Decision.COMMIT
        for decision in decisions:
            result = result.meet(decision)
        return result

    def leq(self, other: "Decision") -> bool:
        """The ``⊑`` order of the TCS-LL specification: abort ⊑ commit."""
        return self is other or (self is Decision.ABORT and other is Decision.COMMIT)


class Phase(enum.Enum):
    """Per-slot transaction status at a replica (Figure 1)."""

    START = "start"
    PREPARED = "prepared"
    DECIDED = "decided"


class Status(enum.Enum):
    """Role of a process within its shard."""

    LEADER = "leader"
    FOLLOWER = "follower"
    RECONFIGURING = "reconfiguring"


@dataclass(frozen=True)
class Configuration:
    """A shard configuration ``⟨e, M, pl⟩``: epoch, members and leader."""

    epoch: int
    members: Tuple[ProcessId, ...]
    leader: ProcessId

    def __post_init__(self) -> None:
        if self.leader not in self.members:
            raise ValueError(
                f"leader {self.leader!r} must be one of the members {self.members!r}"
            )
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in configuration: {self.members!r}")

    @property
    def followers(self) -> Tuple[ProcessId, ...]:
        return tuple(p for p in self.members if p != self.leader)


@dataclass(frozen=True)
class GlobalConfiguration:
    """A system-wide configuration used by the RDMA protocol (Section 5).

    The RDMA protocol reconfigures the whole system at once, so the
    configuration service stores a single sequence of configurations, each
    fixing the membership and leader of *every* shard.
    """

    epoch: int
    members: Dict[ShardId, Tuple[ProcessId, ...]]
    leaders: Dict[ShardId, ProcessId]

    def __post_init__(self) -> None:
        for shard, leader in self.leaders.items():
            if leader not in self.members.get(shard, ()):
                raise ValueError(
                    f"leader {leader!r} of shard {shard!r} is not among its members"
                )

    def all_processes(self) -> Tuple[ProcessId, ...]:
        seen = []
        for members in self.members.values():
            for pid in members:
                if pid not in seen:
                    seen.append(pid)
        return tuple(seen)

    def shard_of(self, pid: ProcessId) -> Optional[ShardId]:
        for shard, members in self.members.items():
            if pid in members:
                return shard
        return None

    def followers(self, shard: ShardId) -> Tuple[ProcessId, ...]:
        leader = self.leaders[shard]
        return tuple(p for p in self.members[shard] if p != leader)
