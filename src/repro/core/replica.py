"""Shard replica process: the complete Figure 1 protocol.

A :class:`ShardReplica` is a process ``pi`` belonging to a shard ``s0``.  It
plays three roles, each implemented by a dedicated module and mixed in here:

* *certification participant* (this module): leader-side ``PREPARE``
  handling and vote computation, follower-side ``ACCEPT`` handling, and
  ``DECISION`` persistence — Figure 1 lines 4-17, 21-25 and 30-32;
* *transaction coordinator* (:mod:`repro.core.coordinator`) — lines 1-3,
  18-20, 26-29 and 70-73;
* *reconfiguration participant and initiator* (:mod:`repro.core.reconfig`)
  — lines 33-69.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.batching import BatchPolicy
from repro.core.certification import CertificationScheme
from repro.core.coordinator import CoordinatorMixin
from repro.core.directory import TransactionDirectory
from repro.core.failuredetector import DetectorPolicy, FailureDetector
from repro.core.messages import (
    Accept,
    AcceptAck,
    AcceptAckBatch,
    AcceptBatch,
    CertifyBatch,
    CsLeaseGrant,
    CsLeaseRequest,
    DecisionBatch,
    Heartbeat,
    Prepare,
    PrepareAck,
    ReadReply,
    ReadRequest,
    SlotDecision,
    SuspicionReport,
    VoteBatch,
)
from repro.core.reads import ReadPolicy, ReplicaReadEngine
from repro.core.reconfig import MembershipPolicy, ReconfigMixin, SparePool
from repro.core.votecache import LeaderVoteCache
from repro.core.types import (
    BOTTOM,
    Configuration,
    Decision,
    Phase,
    ProcessId,
    ShardId,
    Status,
    TxnId,
)
from repro.runtime.process import Process


class ShardReplica(CoordinatorMixin, ReconfigMixin, Process):
    """A replica process of one shard, implementing the Figure 1 protocol."""

    def __init__(
        self,
        pid: ProcessId,
        shard: ShardId,
        scheme: CertificationScheme,
        directory: TransactionDirectory,
        config_service: ProcessId,
        spares: Optional[SparePool] = None,
        membership_policy: Optional[MembershipPolicy] = None,
        batch: Optional[BatchPolicy] = None,
        read: Optional[ReadPolicy] = None,
        detector: Optional[DetectorPolicy] = None,
    ) -> None:
        super().__init__(pid)
        self.shard = shard
        self.scheme = scheme
        self.directory = directory
        self.config_service = config_service
        self.spares = spares if spares is not None else SparePool()
        self.membership_policy = membership_policy or MembershipPolicy()
        self.batch_policy = batch or BatchPolicy()
        self.read_policy = read or ReadPolicy()
        self.detector_policy = detector or DetectorPolicy()
        # Heartbeat failure detection (inert unless the policy enables it):
        # this replica's view of its co-members' liveness.
        self.detector: Optional[FailureDetector] = (
            FailureDetector(self.detector_policy, pid)
            if self.detector_policy.enabled
            else None
        )

        # Configuration knowledge (Figure 1 preliminaries): epoch, members and
        # leader of every shard; the entry for our own shard is the
        # configuration we currently participate in.
        self.epoch: Dict[ShardId, int] = {}
        self.members: Dict[ShardId, Tuple[ProcessId, ...]] = {}
        self.leader: Dict[ShardId, ProcessId] = {}

        self.status: Status = Status.FOLLOWER
        self.new_epoch = 0
        self.initialized = False

        # The shard-local certification order and per-slot state.
        self.next = 0
        self.txn_arr: Dict[int, TxnId] = {}
        self.payload_arr: Dict[int, Any] = {}
        self.vote_arr: Dict[int, Decision] = {}
        self.dec_arr: Dict[int, Decision] = {}
        self.phase_arr: Dict[int, Phase] = {}
        self.slot_of: Dict[TxnId, int] = {}

        # Messages whose precondition mentions an epoch we have not reached
        # yet; re-dispatched whenever configuration knowledge advances.
        self._stash: List[Tuple[Any, str]] = []

        # Observers notified when a slot reaches the decided phase (used by
        # the store layer and by metrics).
        self.decision_listeners: List[Callable[[int, Optional[TxnId], Decision], None]] = []

        # Incremental conflict index for leader-side voting; replaces the
        # per-PREPARE scan of the whole certification order.
        self._votes = LeaderVoteCache(self)

        # Snapshot-read fast path (inert under the default certified-only
        # policy): applied store, pending-writer counts and read lease.
        self.read_engine: Optional[ReplicaReadEngine] = (
            ReplicaReadEngine(self, self.read_policy) if self.read_policy.enabled else None
        )
        self._lease_seq = 0

        self._init_coordinator()
        self._init_reconfig()

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def bootstrap(
        self,
        configurations: Dict[ShardId, Configuration],
        initialized: bool = True,
    ) -> None:
        """Install the initial configuration knowledge.

        Members of the initial configuration of their shard start
        ``initialized`` (the initial configuration is active by assumption);
        spare processes start uninitialized and outside any configuration.
        """
        for shard, config in configurations.items():
            self.epoch[shard] = config.epoch
            self.members[shard] = config.members
            self.leader[shard] = config.leader
        own = configurations.get(self.shard)
        if own is not None and self.pid in own.members:
            self.initialized = initialized
            self.new_epoch = own.epoch
            self.status = Status.LEADER if own.leader == self.pid else Status.FOLLOWER
            if self.read_engine is not None:
                self.read_engine.note_epoch(own.epoch)
            self._watch_co_members()
        else:
            # A fresh spare: it knows the current configurations (and can
            # therefore act as a transaction coordinator), but it is not a
            # member of any of them, holds no shard state and counts as
            # uninitialised until it receives a NEW_STATE transfer.
            self.initialized = False
            self.new_epoch = 0
            self.status = Status.FOLLOWER

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def my_epoch(self) -> int:
        return self.epoch[self.shard]

    @property
    def is_leader(self) -> bool:
        return self.status is Status.LEADER

    def certification_order(self) -> List[TxnId]:
        """The transactions in this replica's certification order (with holes
        omitted), in slot order."""
        return [self.txn_arr[k] for k in sorted(self.txn_arr)]

    def slot_state(self, slot: int) -> Dict[str, Any]:
        return {
            "txn": self.txn_arr.get(slot),
            "payload": self.payload_arr.get(slot),
            "vote": self.vote_arr.get(slot),
            "dec": self.dec_arr.get(slot),
            "phase": self.phase_arr.get(slot, Phase.START),
        }

    # ------------------------------------------------------------------
    # stashing of early messages
    # ------------------------------------------------------------------
    def _stash_message(self, message: Any, sender: str) -> None:
        self._stash.append((message, sender))

    def _unstash(self) -> None:
        if not self._stash:
            return
        stashed, self._stash = self._stash, []
        for message, sender in stashed:
            self.handle(message, sender)

    # ------------------------------------------------------------------
    # leader: PREPARE (lines 4-17)
    # ------------------------------------------------------------------
    def _certify_prepare(self, msg: Prepare) -> PrepareAck:
        """Place one PREPARE in the certification order (or find it there)
        and return the vote; shared by the single and batched paths."""
        existing_slot = self.slot_of.get(msg.txn)
        if existing_slot is not None:
            # The transaction is already in the certification order (line 6):
            # resend the stored vote to the (possibly new) coordinator.
            return PrepareAck(
                epoch=self.my_epoch,
                shard=self.shard,
                slot=existing_slot,
                txn=msg.txn,
                payload=self.payload_arr[existing_slot],
                vote=self.vote_arr[existing_slot],
            )
        self.next += 1
        slot = self.next
        self.txn_arr[slot] = msg.txn
        self.phase_arr[slot] = Phase.PREPARED
        self.slot_of[msg.txn] = slot
        if msg.payload is not BOTTOM:
            self.vote_arr[slot] = self._votes.vote(slot, msg.payload)
            self.payload_arr[slot] = msg.payload
            self._votes.note_prepared(slot)
            if self.read_engine is not None:
                self.read_engine.note_prepared(slot)
        else:
            # Coordinator recovery with an unknown payload (lines 14-16).
            self.vote_arr[slot] = Decision.ABORT
            self.payload_arr[slot] = self.scheme.empty_payload()
        return PrepareAck(
            epoch=self.my_epoch,
            shard=self.shard,
            slot=slot,
            txn=msg.txn,
            payload=self.payload_arr[slot],
            vote=self.vote_arr[slot],
        )

    def on_prepare(self, msg: Prepare, sender: str) -> None:
        if self.status is not Status.LEADER:
            return
        self.send(sender, self._certify_prepare(msg))

    def on_certify_batch(self, msg: CertifyBatch, sender: str) -> None:
        """Certify a whole batch in one pass over the conflict indexes and
        answer with one aggregated vote vector.  Intra-batch conflict
        ordering follows batch order: each transaction enters the
        certification order before the next one is voted on, so later batch
        members are certified against earlier ones exactly as if the
        PREPAREs had arrived back to back."""
        if self.status is not Status.LEADER:
            return
        acks = tuple(self._certify_prepare(prepare) for prepare in msg.prepares)
        self.send(sender, VoteBatch(acks=acks))

    # ------------------------------------------------------------------
    # follower: ACCEPT (lines 21-25)
    # ------------------------------------------------------------------
    def _apply_accept(self, msg: Accept, sender: str) -> Optional[AcceptAck]:
        """Persist one ACCEPT; returns the ack to send, or None when the
        message was stashed for a future epoch or rejected."""
        if msg.epoch > self.my_epoch:
            self._stash_message(msg, sender)
            return None
        if self.status is not Status.FOLLOWER or self.my_epoch != msg.epoch:
            return None
        if self.phase_arr.get(msg.slot, Phase.START) is Phase.START:
            self.txn_arr[msg.slot] = msg.txn
            self.payload_arr[msg.slot] = msg.payload
            self.vote_arr[msg.slot] = msg.vote
            self.phase_arr[msg.slot] = Phase.PREPARED
            self.slot_of[msg.txn] = msg.slot
            self._votes.invalidate()
            if self.read_engine is not None:
                self.read_engine.note_prepared(msg.slot)
        return AcceptAck(
            shard=self.shard,
            epoch=msg.epoch,
            slot=msg.slot,
            txn=msg.txn,
            vote=msg.vote,
        )

    def on_accept(self, msg: Accept, sender: str) -> None:
        ack = self._apply_accept(msg, sender)
        if ack is not None:
            self.send(sender, ack)

    def on_accept_batch(self, msg: AcceptBatch, sender: str) -> None:
        """Persist a batch of ACCEPTs and confirm them with one aggregated
        ack (stashed/rejected elements are simply absent from the reply —
        the unstash path re-answers them individually later)."""
        acks = []
        for accept in msg.accepts:
            ack = self._apply_accept(accept, sender)
            if ack is not None:
                acks.append(ack)
        if acks:
            self.send(sender, AcceptAckBatch(acks=tuple(acks)))

    # ------------------------------------------------------------------
    # everyone: DECISION (lines 30-32)
    # ------------------------------------------------------------------
    def on_slot_decision(self, msg: SlotDecision, sender: str) -> None:
        if self.status is Status.RECONFIGURING or self.my_epoch < msg.epoch:
            self._stash_message(msg, sender)
            return
        self.dec_arr[msg.slot] = msg.decision
        self.phase_arr[msg.slot] = Phase.DECIDED
        self._votes.note_decided(msg.slot)
        txn = self.txn_arr.get(msg.slot)
        for listener in self.decision_listeners:
            listener(msg.slot, txn, msg.decision)

    def on_decision_batch(self, msg: DecisionBatch, sender: str) -> None:
        for decision in msg.decisions:
            self.on_slot_decision(decision, sender)

    # ------------------------------------------------------------------
    # heartbeat failure detection (repro.core.failuredetector)
    # ------------------------------------------------------------------
    def _watch_co_members(self) -> None:
        """(Re)set the detector's monitored set to our current co-members."""
        if self.detector is None:
            return
        peers = (
            self.members.get(self.shard, ())
            if self.pid in self.members.get(self.shard, ())
            else ()
        )
        now = self.now if self.network is not None else 0.0
        self.detector.watch(peers, now)

    def emit_heartbeats(self) -> None:
        """Send one heartbeat to every co-member (called each pump tick)."""
        if self.detector is None or not self.initialized:
            return
        peers = [p for p in self.members.get(self.shard, ()) if p != self.pid]
        if peers:
            self.send_all(peers, Heartbeat(shard=self.shard, epoch=self.my_epoch), weak=True)

    def tick_detector(self) -> None:
        """Score every watched peer; report fresh suspicions to the
        configuration service (which aggregates and proposes view changes)."""
        if self.detector is None or not self.initialized:
            return
        for suspect in self.detector.tick(self.now):
            self.send(
                self.config_service,
                SuspicionReport(shard=self.shard, epoch=self.my_epoch, suspect=suspect),
            )

    def on_heartbeat(self, msg: Heartbeat, sender: str) -> None:
        if self.detector is not None:
            self.detector.record(sender, self.now)

    # ------------------------------------------------------------------
    # snapshot-read fast path (certification-bypassing; repro.core.reads)
    # ------------------------------------------------------------------
    def request_read_lease(self) -> None:
        """Ask the configuration service for (or to renew) this leader's
        read lease.  Event-driven only — no timers — so an idle cluster lets
        its lease lapse and re-acquires it on the next read."""
        if self.read_engine is None or self.read_engine.lease_pending:
            return
        self.read_engine.lease_pending = True
        self._lease_seq += 1
        self.send(
            self.config_service,
            CsLeaseRequest(
                shard=self.shard,
                duration=self.read_policy.lease,
                request_id=self._lease_seq,
                epoch=self.my_epoch,
            ),
        )

    def on_cs_lease_grant(self, msg: CsLeaseGrant, sender: str) -> None:
        if self.read_engine is not None:
            self.read_engine.note_lease(msg.expires_at, msg.ok, msg.epoch)

    def on_read_request(self, msg: ReadRequest, sender: str) -> None:
        if self.read_engine is None or self.status is not Status.LEADER:
            self.send(sender, ReadReply(txn=msg.txn, ok=False, reason="not-leader"))
            return
        status, reads = self.read_engine.serve(msg.objects, self.now)
        if status == "ok":
            self.send(sender, ReadReply(txn=msg.txn, ok=True, reads=tuple(reads)))
        else:
            self.send(sender, ReadReply(txn=msg.txn, ok=False, reason=status))
        if self.read_engine.lease_wants_renewal(self.now):
            self.request_read_lease()

    def _on_configuration_installed(self) -> None:
        """A NEW_STATE transfer replaced the slot arrays wholesale: rebuild
        the applied store and pending-writer counts from them.  The new
        leader still has no lease (leases are granted per process), so reads
        refuse until the next grant — and the lease epoch advances, so an
        in-flight grant from the previous epoch is refused on arrival."""
        super()._on_configuration_installed()
        if self.read_engine is not None:
            self.read_engine.note_epoch(self.my_epoch)
            self.read_engine.rebuild()
        self._watch_co_members()
