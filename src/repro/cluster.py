"""Cluster harness: one-call construction of a complete simulated system.

``Cluster`` wires together every piece of the reproduction — scheduler,
network, configuration service, shard replicas (message-passing, RDMA, or
the deliberately broken RDMA ablation variant), spare replicas for
reconfiguration, and clients — and exposes a small driver API used by the
examples, the tests and the benchmark harness:

* :meth:`Cluster.submit` / :meth:`Cluster.run` / :meth:`Cluster.certify` —
  drive transactions through the TCS;
* :meth:`Cluster.crash`, :meth:`Cluster.crash_leader`,
  :meth:`Cluster.crash_follower`, :meth:`Cluster.reconfigure` — fault
  injection and recovery;
* :meth:`Cluster.check` — validate the recorded history against the TCS
  specification and the replica states against the Figure 3 invariants.

The vanilla 2PC-over-Paxos baseline offers the same driver API through
:class:`repro.baselines.cluster.BaselineCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import (
    BatchStats,
    RetryStats,
    collect_batch_stats,
    collect_phase_samples,
    collect_retry_stats,
)
from repro.client import Client, ClientSession, CoordinatorRouter, RetryPolicy
from repro.configservice.service import ConfigurationService, GlobalConfigurationService
from repro.core.batching import BatchPolicy
from repro.core.certification import CertificationScheme
from repro.core.directory import TransactionDirectory
from repro.core.failuredetector import DetectorPolicy, HeartbeatPump
from repro.core.reads import ReadPolicy
from repro.core.reconfig import MembershipPolicy, SparePool
from repro.core.replica import ShardReplica
from repro.core.serializability import (
    KeyHashSharding,
    SerializabilityScheme,
    SnapshotIsolationScheme,
    TransactionPayload,
)
from repro.core.types import Configuration, Decision, GlobalConfiguration, ShardId, TxnId
from repro.rdma.broken import BrokenRdmaShardReplica
from repro.rdma.replica import RdmaShardReplica
from repro.runtime.events import Scheduler
from repro.runtime.network import LatencyModel, LinkSpec, Network, UnitLatency
from repro.runtime.parallel import GroupedScheduler, partition_contiguous
from repro.spec.checker import CheckResult, TCSChecker
from repro.spec.history import History
from repro.spec.invariants import InvariantViolation, check_invariants


PROTOCOL_MESSAGE_PASSING = "message-passing"
PROTOCOL_RDMA = "rdma"
PROTOCOL_BROKEN_RDMA = "broken-rdma"

_ISOLATION_SCHEMES = {
    "serializability": SerializabilityScheme,
    "snapshot-isolation": SnapshotIsolationScheme,
}


@dataclass(frozen=True)
class ProtocolSpec:
    """How to assemble one protocol variant of the certification service.

    New variants register themselves with :func:`register_protocol` instead
    of growing branches inside ``Cluster.__init__``:

    * ``replica_cls`` — the shard-replica process class;
    * ``config_service_cls`` — the configuration-service process class;
    * ``global_config`` — True when the variant keeps a single system-wide
      configuration and epoch (the RDMA protocol of Section 5) rather than
      one configuration per shard;
    * ``post_build`` — optional hook ``post_build(cluster)`` run after all
      processes exist (the broken ablation uses it to leave RDMA access
      open between every pair of processes, which is exactly its bug).
    """

    name: str
    replica_cls: type
    config_service_cls: type
    global_config: bool = False
    post_build: Optional[Callable[["Cluster"], None]] = None
    description: str = ""


_PROTOCOL_REGISTRY: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a protocol variant to the registry used by :class:`Cluster`."""
    if spec.name in _PROTOCOL_REGISTRY:
        raise ValueError(f"protocol {spec.name!r} is already registered")
    _PROTOCOL_REGISTRY[spec.name] = spec
    return spec


def protocol_names() -> Tuple[str, ...]:
    return tuple(_PROTOCOL_REGISTRY)


def protocol_spec(name: str) -> ProtocolSpec:
    try:
        return _PROTOCOL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {protocol_names()}"
        ) from None


def _open_rdma_everywhere(cluster: "Cluster") -> None:
    # The broken RDMA ablation keeps RDMA access open between every pair
    # of processes forever (that omission is exactly what makes it unsafe).
    all_pids = list(cluster.replicas)
    for replica in cluster.replicas.values():
        replica.open_to_all(all_pids)


register_protocol(
    ProtocolSpec(
        name=PROTOCOL_MESSAGE_PASSING,
        replica_cls=ShardReplica,
        config_service_cls=ConfigurationService,
        description="Figure 1: asynchronous message passing, per-shard reconfiguration",
    )
)
register_protocol(
    ProtocolSpec(
        name=PROTOCOL_RDMA,
        replica_cls=RdmaShardReplica,
        config_service_cls=GlobalConfigurationService,
        global_config=True,
        description="Figures 7-8: RDMA data path, global reconfiguration",
    )
)
register_protocol(
    ProtocolSpec(
        name=PROTOCOL_BROKEN_RDMA,
        replica_cls=BrokenRdmaShardReplica,
        config_service_cls=ConfigurationService,
        post_build=_open_rdma_everywhere,
        description="Figure 4a ablation: RDMA data path + per-shard reconfiguration (unsafe)",
    )
)


class Cluster:
    """A complete simulated deployment of one of the paper's protocols."""

    def __init__(
        self,
        num_shards: int = 2,
        replicas_per_shard: int = 2,
        num_clients: int = 1,
        protocol: str = PROTOCOL_MESSAGE_PASSING,
        isolation: str = "serializability",
        scheme: Optional[CertificationScheme] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        spares_per_shard: int = 2,
        membership_policy: Optional[MembershipPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        batch: Optional[BatchPolicy] = None,
        groups: int = 0,
        read: Optional[ReadPolicy] = None,
        detector: Optional[DetectorPolicy] = None,
        link: Optional[LinkSpec] = None,
        pipeline: bool = True,
        sticky: bool = False,
    ) -> None:
        spec = protocol_spec(protocol)
        if num_shards < 1 or replicas_per_shard < 1 or num_clients < 1:
            raise ValueError("num_shards, replicas_per_shard and num_clients must be >= 1")
        self.protocol = spec.name
        self.protocol_spec = spec
        self.num_shards = num_shards
        self.replicas_per_shard = replicas_per_shard
        self.shards: List[ShardId] = [f"shard-{i}" for i in range(num_shards)]

        if scheme is None:
            if isolation not in _ISOLATION_SCHEMES:
                raise ValueError(f"unknown isolation level {isolation!r}")
            scheme = _ISOLATION_SCHEMES[isolation](KeyHashSharding(self.shards))
        self.scheme = scheme

        # groups > 0 selects the conservative parallel-DES engine: shards
        # partition into that many weakly-coupled groups, each with its own
        # event heap, advanced window-by-window behind lookahead barriers
        # (see repro.runtime.parallel).  Results are byte-identical to the
        # serial engine for deterministic latency models.
        self.exec_groups = groups
        self.scheduler = GroupedScheduler(groups) if groups else Scheduler()
        self.network = Network(
            self.scheduler, latency=latency or UnitLatency(), seed=seed, link=link
        )
        self.directory = TransactionDirectory()
        self.history = History()
        self.membership_policy = membership_policy or MembershipPolicy(
            target_size=replicas_per_shard
        )
        # Commit-path knobs (see repro.scenarios.spec.NetworkSpec): vote
        # pipelining is the protocol's normal mode; pipeline=False is the
        # stop-and-wait measurement baseline.  sticky pins each involved-
        # shard set to one coordinator to deepen its batches.
        self.pipeline = pipeline
        self.sticky = sticky
        self._sticky_pins: Dict[Tuple[ShardId, ...], str] = {}

        self.replicas: Dict[str, Any] = {}
        self.replicas_by_shard: Dict[ShardId, List[Any]] = {s: [] for s in self.shards}
        self.spare_pools: Dict[ShardId, SparePool] = {}
        self.clients: List[Client] = []
        self.retry = retry or RetryPolicy()
        self.batch = batch or BatchPolicy()
        self.read = read or ReadPolicy()
        self.read.validate()
        self.detector = detector or DetectorPolicy()
        self.detector.validate()

        self._build_config_service()
        self._build_replicas(spares_per_shard)
        self._build_clients(num_clients)
        self._build_sessions()
        self._round_robin = 0
        # Coordinator-candidate lists per involved-shard set, invalidated
        # by the configuration service's version counter (submission is the
        # driver's hottest path; rebuilding the list per transaction costs
        # more than the whole routing decision).
        self._candidate_cache: Dict[Tuple[ShardId, ...], List[str]] = {}
        self._candidate_cache_version = -1
        if spec.post_build is not None:
            spec.post_build(self)
        if groups:
            self.scheduler.install(self.network, self._group_partition())
        if self.read.enabled:
            # Bootstrap the shard leaders' read leases (after the parallel
            # engine is installed, so the grant round-trip is partitioned
            # like every other message).
            self.request_read_leases()
        # Heartbeat pump: one cluster-level weak recurring tick, armed
        # exactly once here — a consistent creation point in both engines —
        # and self-re-armed only from inside the tick thereafter.
        self.pump = HeartbeatPump(
            self.scheduler, lambda: self.replicas.values(), self.detector
        )
        self.pump.start()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _group_partition(self) -> Dict[str, int]:
        """Process-to-group assignment for the parallel-DES engine.

        Shards split into contiguous blocks (intra-shard traffic is the
        dense part of the communication graph and stays intra-group);
        replicas and spares follow their shard.  Clients and the
        configuration service all live in group 0: clients are the only
        history writers, so keeping them in one group preserves the serial
        append order of the history, and the configuration service talks to
        every shard anyway.
        """
        shard_group = partition_contiguous(self.shards, self.exec_groups)
        group_of: Dict[str, int] = {self.config_service.pid: 0}
        for pid, replica in self.replicas.items():
            group_of[pid] = shard_group[replica.shard]
        for client in self.clients:
            group_of[client.pid] = 0
        return group_of

    def _build_config_service(self) -> None:
        self.config_service = self.protocol_spec.config_service_cls("config-service")
        self.config_service.detector_confirmations = self.detector.confirmations
        self.network.register(self.config_service)

    def _build_replicas(self, spares_per_shard: int) -> None:
        replica_cls = self.protocol_spec.replica_cls
        members_by_shard: Dict[ShardId, Tuple[str, ...]] = {}
        for shard in self.shards:
            members_by_shard[shard] = tuple(
                f"{shard}/r{i}" for i in range(self.replicas_per_shard)
            )
        initial_configs = {
            shard: Configuration(epoch=1, members=members, leader=members[0])
            for shard, members in members_by_shard.items()
        }
        global_config = GlobalConfiguration(
            epoch=1,
            members={s: c.members for s, c in initial_configs.items()},
            leaders={s: c.leader for s, c in initial_configs.items()},
        )

        # Install initial configurations in the configuration service.
        if self.protocol_spec.global_config:
            self.config_service.install_initial(global_config)
        else:
            for shard, config in initial_configs.items():
                self.config_service.install_initial(shard, config)

        # Create replicas and spares.
        for shard in self.shards:
            pool = SparePool()
            self.spare_pools[shard] = pool
            pids = list(members_by_shard[shard]) + [
                f"{shard}/spare{i}" for i in range(spares_per_shard)
            ]
            for pid in pids:
                replica = replica_cls(
                    pid=pid,
                    shard=shard,
                    scheme=self.scheme,
                    directory=self.directory,
                    config_service=self.config_service.pid,
                    spares=pool,
                    membership_policy=self.membership_policy,
                    batch=self.batch,
                    read=self.read,
                    detector=self.detector,
                )
                replica.pipeline_commits = self.pipeline
                self.network.register(replica)
                self.replicas[pid] = replica
                self.replicas_by_shard[shard].append(replica)
                if pid not in members_by_shard[shard]:
                    pool.add(pid)

        # Bootstrap configuration knowledge.
        for replica in self.replicas.values():
            if self.protocol_spec.global_config:
                replica.spare_pools = self.spare_pools
                replica.bootstrap(global_config)
            else:
                replica.bootstrap(initial_configs)

        self.initial_configs = initial_configs
        self.initial_global_config = global_config

    def _build_clients(self, num_clients: int) -> None:
        for i in range(num_clients):
            client = Client(
                pid=f"client-{i}",
                scheme=self.scheme,
                directory=self.directory,
                history=self.history,
                config_service=self.config_service.pid,
                batch=self.batch,
            )
            self.network.register(client)
            self.clients.append(client)

    def _build_sessions(self) -> None:
        """One :class:`ClientSession` per client, sharing a router seeded
        from the bootstrap configurations.  With retry enabled the clients
        also subscribe to ``CONFIG_CHANGE`` pushes, so the router tracks
        reconfigurations the way a real TCS client library would."""
        self.router = CoordinatorRouter(
            self.shards,
            members={s: c.members for s, c in self.initial_configs.items()},
            leaders={s: c.leader for s, c in self.initial_configs.items()},
            epochs={s: c.epoch for s, c in self.initial_configs.items()},
            sticky=self.sticky,
        )
        self.sessions: List[ClientSession] = [
            ClientSession(client, self.router, self.scheme, self.retry)
            for client in self.clients
        ]
        for client in self.clients:
            client.global_config_service = self.protocol_spec.global_config
        if self.retry.enabled:
            # One subscription feeds the shared router; subscribing every
            # client would deliver each CONFIG_CHANGE num_clients times for
            # the same note_config_change.
            self.config_service.subscribe(self.clients[0].pid)

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------
    def replica(self, pid: str):
        return self.replicas[pid]

    def live_replicas(self, shard: ShardId) -> List[Any]:
        return [r for r in self.replicas_by_shard[shard] if not r.crashed]

    def current_configuration(self, shard: ShardId):
        if self.protocol_spec.global_config:
            config = self.config_service.last_configuration()
            return Configuration(
                epoch=config.epoch,
                members=config.members[shard],
                leader=config.leaders[shard],
            )
        return self.config_service.last_configuration(shard)

    def leader_of(self, shard: ShardId) -> str:
        return self.current_configuration(shard).leader

    def followers_of(self, shard: ShardId) -> Tuple[str, ...]:
        return self.current_configuration(shard).followers

    def members_of(self, shard: ShardId) -> Tuple[str, ...]:
        return self.current_configuration(shard).members

    # ------------------------------------------------------------------
    # transaction driving
    # ------------------------------------------------------------------
    def _pick_coordinator(self, payload: Any) -> str:
        """Pick a replica to coordinate the transaction.

        Mirrors Figure 2, where the coordinator is a replica of a shard not
        involved in the transaction: we prefer members of uninvolved shards
        (this also keeps the latency accounting identical to the paper's
        5-delay analysis) and fall back to members of the involved shards
        when every shard participates.
        """
        involved = tuple(sorted(self.scheme.shards_of(payload))) or (self.shards[0],)
        if self._candidate_cache_version != self.config_service.version:
            self._candidate_cache.clear()
            self._candidate_cache_version = self.config_service.version
        candidates = self._candidate_cache.get(involved)
        if candidates is None:
            uninvolved = [s for s in self.shards if s not in involved]
            candidates = []
            for shard in uninvolved or involved:
                candidates.extend(self.members_of(shard))
            self._candidate_cache[involved] = candidates
        live = [pid for pid in candidates if not self.replicas[pid].crashed]
        candidates = live or candidates
        if self.sticky:
            # Sticky affinity: every transaction over the same involved-shard
            # set returns to one coordinator, so its batchers fill deeper
            # instead of each coordinator flushing near-empty batches.
            pinned = self._sticky_pins.get(involved)
            if pinned is not None and pinned in candidates:
                return pinned
            self._round_robin += 1
            pinned = candidates[self._round_robin % len(candidates)]
            self._sticky_pins[involved] = pinned
            return pinned
        self._round_robin += 1
        return candidates[self._round_robin % len(candidates)]

    def submit(
        self,
        payload: Any,
        client_index: int = 0,
        coordinator: Optional[str] = None,
        txn: Optional[TxnId] = None,
    ) -> TxnId:
        """Submit a transaction for certification; returns its identifier.

        Read-only transactions eligible for the snapshot-read fast path go
        through :meth:`submit_read` instead.

        With a retry policy, submissions route through the client's session:
        the session picks the coordinator from the client-side router (no
        omniscient liveness peeking) and arms the timeout-driven
        re-submission machinery.  Without one, the legacy direct path picks
        a live coordinator and fires-and-forgets.
        """
        if self.retry.enabled:
            return self.sessions[client_index].submit(
                payload, coordinator=coordinator, txn=txn
            )
        client = self.clients[client_index]
        coordinator = coordinator or self._pick_coordinator(payload)
        return client.submit(payload, coordinator=coordinator, txn=txn)

    # ------------------------------------------------------------------
    # snapshot-read fast path
    # ------------------------------------------------------------------
    def request_read_leases(self) -> None:
        """Have every shard leader request (or renew) its read lease."""
        if not self.read.enabled:
            return
        for shard in self.shards:
            leader = self.replicas.get(self.leader_of(shard))
            if leader is not None and not leader.crashed:
                leader.request_read_lease()

    def seed_read_stores(self, initial: Dict[str, Any]) -> None:
        """Seed every replica's applied store with the initial object values
        (each replica keeps only its own shard's objects); no-op when the
        read policy is disabled."""
        if not self.read.enabled:
            return
        sharding = self.scheme.sharding
        for replica in self.replicas.values():
            engine = getattr(replica, "read_engine", None)
            if engine is None:
                continue
            engine.seed(
                {
                    obj: value
                    for obj, value in initial.items()
                    if sharding.shard_of(obj) == replica.shard
                }
            )

    def submit_read(
        self,
        objects: Sequence[str],
        fallback_payload: TransactionPayload,
        client_index: int = 0,
    ) -> TxnId:
        """Submit a single-shard read-only transaction on the snapshot-read
        fast path (leader-local, no coordinator, no certification).

        ``fallback_payload`` is the read-only payload — the objects at the
        client's current committed versions — certified through the normal
        path if the leader refuses.  Multi-shard reads and disabled read
        policies must use :meth:`submit` instead (the store layer's
        ``submit_read_async`` makes that call).
        """
        if not self.read.enabled:
            raise RuntimeError("submit_read requires an enabled read policy")
        sharding = self.scheme.sharding
        shards = {sharding.shard_of(obj) for obj in objects}
        if len(shards) != 1:
            raise ValueError(f"snapshot reads are single-shard (got {sorted(shards)})")
        (shard,) = shards
        client = self.clients[client_index]
        return client.submit_read(
            objects=objects,
            shard=shard,
            leader=self.leader_of(shard),
            fallback_payload=fallback_payload,
            pick_fallback_coordinator=lambda: self._pick_coordinator(fallback_payload),
        )

    def read_stats(self) -> Dict[str, Any]:
        """Aggregate fast-path counters over clients and replica engines."""
        stats: Dict[str, Any] = {
            "reads_served": 0,
            "read_fallbacks": 0,
            "fallback_reasons": {},
            "refused_lease": 0,
            "refused_pending": 0,
            "stale_serves": 0,
        }
        for client in self.clients:
            stats["reads_served"] += client.reads_served
            stats["read_fallbacks"] += client.read_fallbacks
            for reason, count in client.read_fallback_reasons.items():
                stats["fallback_reasons"][reason] = (
                    stats["fallback_reasons"].get(reason, 0) + count
                )
        for replica in self.replicas.values():
            engine = getattr(replica, "read_engine", None)
            if engine is None:
                continue
            stats["refused_lease"] += engine.reads_refused_lease
            stats["refused_pending"] += engine.reads_refused_pending
            stats["stale_serves"] += engine.stale_serves
        return stats

    def detector_stats(self) -> Dict[str, Any]:
        """Aggregate failure-detector counters over replicas, sessions and
        the configuration service (all zero when the detector is off)."""
        stats: Dict[str, Any] = {
            "heartbeat_ticks": self.pump.ticks,
            "suspicions": 0,
            "false_suspicions": 0,
            "suspicion_reports": getattr(self.config_service, "suspicion_reports", 0),
            "view_changes": getattr(self.config_service, "view_changes", 0),
            "unsolicited_reconfigurations": 0,
            "pushed_failovers": 0,
        }
        for replica in self.replicas.values():
            detector = getattr(replica, "detector", None)
            if detector is not None:
                stats["suspicions"] += detector.suspicions
                stats["false_suspicions"] += detector.false_suspicions
            stats["unsolicited_reconfigurations"] += getattr(
                replica, "unsolicited_reconfigurations", 0
            )
        for session in self.sessions:
            stats["pushed_failovers"] += session.pushed_failovers
        return stats

    def run(self, max_time: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation until idle (or until the given budget)."""
        return self.scheduler.run(max_time=max_time, max_events=max_events)

    def run_until_decided(
        self, txns: Optional[Sequence[TxnId]] = None, max_events: int = 1_000_000
    ) -> bool:
        """Run until every given (default: every submitted) transaction is decided.

        Decision *watchers* subscribe to the history's completion callbacks,
        so each fired event costs an O(1) counter check instead of a full
        history rescan.
        """
        with self.history.watch(txns) as watcher:
            if watcher.done:
                return True
            return self.scheduler.run_until(watcher.is_done, max_events=max_events)

    def certify(
        self,
        payload: Any,
        client_index: int = 0,
        coordinator: Optional[str] = None,
    ) -> Decision:
        """Submit a transaction and run the simulation until it is decided."""
        txn = self.submit(payload, client_index=client_index, coordinator=coordinator)
        if not self.run_until_decided([txn]):
            raise RuntimeError(f"transaction {txn} was not decided")
        return self.history.decision_of(txn)

    def certify_many(self, payloads: Sequence[Any], client_index: int = 0) -> Dict[TxnId, Decision]:
        txns = [self.submit(p, client_index=client_index) for p in payloads]
        self.run_until_decided(txns)
        return {t: self.history.decision_of(t) for t in txns}

    def decision_of(self, txn: TxnId) -> Optional[Decision]:
        return self.history.decision_of(txn)

    # ------------------------------------------------------------------
    # fault injection and reconfiguration
    # ------------------------------------------------------------------
    def crash(self, pid: str) -> None:
        self.network.crash(pid)

    def crash_leader(self, shard: ShardId) -> str:
        pid = self.leader_of(shard)
        self.crash(pid)
        return pid

    def crash_follower(self, shard: ShardId) -> str:
        followers = [p for p in self.followers_of(shard) if not self.replicas[p].crashed]
        if not followers:
            raise RuntimeError(f"shard {shard} has no live follower to crash")
        self.crash(followers[0])
        return followers[0]

    def reconfigure(
        self,
        shard: Optional[ShardId] = None,
        initiator: Optional[str] = None,
        run: bool = True,
        suspects: Sequence[str] = (),
    ) -> bool:
        """Trigger a reconfiguration (per-shard, or global for the RDMA protocol)."""
        shard = shard or self.shards[0]
        initiator_pid = initiator or self._pick_reconfigurer(shard)
        replica = self.replicas[initiator_pid]
        for suspect in suspects:
            replica.suspect(suspect)
        if self.protocol_spec.global_config:
            started = replica.reconfigure()
        else:
            started = replica.reconfigure(shard)
        if run:
            self.run()
        return started

    def _pick_reconfigurer(self, shard: ShardId) -> str:
        for replica in self.replicas_by_shard[shard]:
            if not replica.crashed and replica.pid in self.members_of(shard):
                return replica.pid
        for replica in self.replicas_by_shard[shard]:
            if not replica.crashed:
                return replica.pid
        raise RuntimeError(f"no live process available to reconfigure shard {shard}")

    # ------------------------------------------------------------------
    # validation and metrics
    # ------------------------------------------------------------------
    def member_replicas_by_shard(self) -> Dict[ShardId, List[Any]]:
        """Replicas that are members of their shard's current configuration."""
        result: Dict[ShardId, List[Any]] = {}
        for shard in self.shards:
            members = set(self.members_of(shard))
            result[shard] = [r for r in self.replicas_by_shard[shard] if r.pid in members]
        return result

    def check(self, include_invariants: bool = True) -> Tuple[CheckResult, List[InvariantViolation]]:
        """Check the recorded history and (optionally) the replica invariants."""
        checker = TCSChecker(self.scheme)
        result = checker.check(self.history)
        violations: List[InvariantViolation] = []
        if include_invariants:
            violations = check_invariants(self.member_replicas_by_shard(), self.history)
        return result, violations

    def client_latencies(self) -> List[float]:
        values: List[float] = []
        for client in self.clients:
            for txn in client.outcomes:
                latency = client.latency_of(txn)
                if latency is not None:
                    values.append(latency)
        return values

    def coordinator_entries(self) -> Dict[TxnId, Any]:
        entries: Dict[TxnId, Any] = {}
        for replica in self.replicas.values():
            for txn, entry in getattr(replica, "_coordinated", {}).items():
                if entry.decided and txn not in entries:
                    entries[txn] = entry
        return entries

    def protocol_latencies(self) -> List[float]:
        """Latency from the coordinator starting ``certify`` to the client
        receiving the decision (the paper's 5-message-delay path)."""
        values = []
        entries = self.coordinator_entries()
        for client in self.clients:
            for txn, decide_time in client.decide_times.items():
                entry = entries.get(txn)
                if entry is not None:
                    values.append(decide_time - entry.started_at)
        return values

    def phase_samples(self) -> Dict[str, List[float]]:
        """Per-phase latency samples along the commit path.

        For every transaction whose decision reached its client, splits the
        client-observed latency into submit -> certify start (request
        delivery), certify -> decide (the coordinator's certification
        critical path) and decide -> client (decision delivery).  Keys match
        :data:`repro.analysis.metrics.PHASES`.
        """
        return collect_phase_samples(self.clients, self.coordinator_entries())

    def colocated_latencies(self) -> List[float]:
        """Latency from the coordinator starting ``certify`` to it computing
        the decision (the co-located-client 4-message-delay path)."""
        return [
            entry.decided_at - entry.started_at
            for entry in self.coordinator_entries().values()
            if entry.decided_at is not None
        ]

    def abort_rate(self) -> float:
        decided = self.history.decided()
        if not decided:
            return 0.0
        aborts = sum(1 for d in decided.values() if d is Decision.ABORT)
        return aborts / len(decided)

    def retry_stats(self) -> RetryStats:
        """Aggregate session retry/failover/orphan counters plus the
        duplicate requests deduplicated by the replicas."""
        return collect_retry_stats(self.sessions, self.replicas.values())

    def batch_stats(self) -> BatchStats:
        """Aggregate batch counts and the batch-size distribution over every
        batching process — replicas and clients alike (empty when batching
        is disabled)."""
        return collect_batch_stats(list(self.replicas.values()) + self.clients)

    @property
    def message_stats(self):
        return self.network.stats
