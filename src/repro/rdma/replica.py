"""The RDMA-based shard replica (Figures 7 and 8).

Differences from the message-passing protocol of Figure 1:

* ``ACCEPT`` and ``DECISION`` are persisted at shard members with one-sided
  RDMA writes; the coordinator acts on NIC-level acknowledgements
  (``ack-rdma``) rather than on explicit ``ACCEPT_ACK`` messages, and the
  receivers cannot reject the writes (there is no epoch precondition on the
  follower side);
* processes keep a single system-wide ``epoch`` instead of one per shard;
* reconfiguration is *global*: the reconfigurer probes every shard, each
  probed process closes its RDMA connections, the new configuration is
  disseminated to all members (``CONFIG_PREPARE`` / ``CONFIG_PREPARE_ACK``)
  before the new leaders are activated, new leaders ``flush`` their RDMA
  buffers before sending ``NEW_STATE``, and connections are re-established
  with ``CONNECT`` / ``CONNECT_ACK``.

One deliberate, documented deviation from the pseudocode: on line 153 the
paper has a follower send ``CONNECT`` only to the processes of *other*
shards (the leader's ``CONNECT`` covers leader-follower pairs).  Because in
our setting any replica may coordinate transactions of its own shard — and
therefore needs RDMA access to its co-followers — followers here connect to
every member of the configuration.  The ``pj ∉ connections`` guard of
line 155 makes the extra connection requests harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.batching import BatchPolicy, MessageBatcher
from repro.core.certification import CertificationScheme
from repro.core.directory import TransactionDirectory
from repro.core.messages import (
    CertifyBatch,
    CertifyRequest,
    CertifyRequestBatch,
    CsCompareAndSwap,
    CsGet,
    CsGetLast,
    CsLeaseGrant,
    CsLeaseRequest,
    CsReply,
    CsViewChange,
    Heartbeat,
    Prepare,
    PrepareAck,
    Probe,
    ProbeAck,
    ReadReply,
    ReadRequest,
    SuspicionReport,
    TxnDecision,
    TxnDecisionBatch,
    VoteBatch,
)
from repro.core.coordinator import deduplicate_certify_request
from repro.core.failuredetector import DetectorPolicy, FailureDetector
from repro.core.reads import ReadPolicy, ReplicaReadEngine
from repro.core.reconfig import MembershipPolicy, SparePool
from repro.core.votecache import LeaderVoteCache
from repro.core.types import (
    BOTTOM,
    Decision,
    GlobalConfiguration,
    Phase,
    ProcessId,
    ShardId,
    Status,
    TxnId,
)
from repro.rdma.messages import (
    Accept,
    AcceptBatch,
    ConfigPrepare,
    ConfigPrepareAck,
    Connect,
    ConnectAck,
    DecisionBatch,
    NewConfig,
    NewState,
    SlotDecision,
)
from repro.runtime.process import Process
from repro.runtime.rdma import RdmaManager


GLOBAL_SHARD = "*"


@dataclass
class RdmaCoordinatorEntry:
    """Coordinator book-keeping for one transaction (RDMA variant)."""

    txn: TxnId
    payload: Any
    shards: frozenset
    started_at: float
    votes: Dict[ShardId, Decision] = field(default_factory=dict)
    slots: Dict[ShardId, int] = field(default_factory=dict)
    vote_epochs: Dict[ShardId, int] = field(default_factory=dict)
    rdma_acks: Dict[ShardId, Set[ProcessId]] = field(default_factory=dict)
    decided: bool = False
    decision: Optional[Decision] = None
    decided_at: Optional[float] = None
    # Set when the batching layer flushed the transaction's last PREPARE
    # (equals started_at unbatched); see CoordinatorEntry.dispatched_at.
    dispatched_at: Optional[float] = None


class RecStatus:
    """Values of the ``rec_status`` variable (Figure 8)."""

    READY = "ready"
    PROBING = "probing"
    INSTALLING = "installing"


class RdmaShardReplica(Process):
    """A replica of one shard running the RDMA-based protocol."""

    def __init__(
        self,
        pid: ProcessId,
        shard: ShardId,
        scheme: CertificationScheme,
        directory: TransactionDirectory,
        config_service: ProcessId,
        spares: Optional[SparePool] = None,
        membership_policy: Optional[MembershipPolicy] = None,
        batch: Optional[BatchPolicy] = None,
        read: Optional[ReadPolicy] = None,
        detector: Optional[DetectorPolicy] = None,
    ) -> None:
        super().__init__(pid)
        self.shard = shard
        self.batch_policy = batch or BatchPolicy()
        self.read_policy = read or ReadPolicy()
        self.detector_policy = detector or DetectorPolicy()
        self.detector: Optional[FailureDetector] = (
            FailureDetector(self.detector_policy, pid)
            if self.detector_policy.enabled
            else None
        )
        self.unsolicited_reconfigurations = 0
        self.scheme = scheme
        self.directory = directory
        self.config_service = config_service
        self.spares = spares if spares is not None else SparePool()
        # Global reconfiguration recomputes the membership of *every* shard,
        # so replacements must come from per-shard spare pools; the cluster
        # harness fills this map in.  Shards without an entry fall back to
        # the replica's own pool.
        self.spare_pools: Dict[ShardId, SparePool] = {}
        self.membership_policy = membership_policy or MembershipPolicy()
        RdmaManager.install(self)

        # Single system-wide epoch (Section 5).
        self.epoch = 0
        self.members: Dict[ShardId, Tuple[ProcessId, ...]] = {}
        self.leader: Dict[ShardId, ProcessId] = {}
        self.status: Status = Status.FOLLOWER
        self.new_epoch = 0
        self.initialized = False

        self.next = 0
        self.txn_arr: Dict[int, TxnId] = {}
        self.payload_arr: Dict[int, Any] = {}
        self.vote_arr: Dict[int, Decision] = {}
        self.dec_arr: Dict[int, Decision] = {}
        self.phase_arr: Dict[int, Phase] = {}
        self.slot_of: Dict[TxnId, int] = {}

        # Reconfiguration state (Figure 8 preliminaries).
        self.rec_status = RecStatus.READY
        self.recon_epoch = 0
        self.probed_epoch: Dict[ShardId, int] = {}
        self.probed_members: Dict[ShardId, Tuple[ProcessId, ...]] = {}
        self._probe_responders: Dict[ShardId, Set[ProcessId]] = {}
        self._probe_leaders: Dict[ShardId, ProcessId] = {}
        self._probe_stepping: Dict[ShardId, bool] = {}
        self.recon_members: Dict[ShardId, Tuple[ProcessId, ...]] = {}
        self.recon_leaders: Dict[ShardId, ProcessId] = {}
        self._config_prepare_acks: Set[ProcessId] = set()
        self.suspected: Set[ProcessId] = set()
        self.reconfigurations_initiated = 0
        self.reconfigurations_introduced = 0

        self._coordinated: Dict[TxnId, RdmaCoordinatorEntry] = {}
        self.duplicate_certify_requests = 0
        # Vote pipelining toggle (see CoordinatorMixin._init_coordinator):
        # False is the stop-and-wait measurement baseline.
        self.pipeline_commits = getattr(self, "pipeline_commits", True)
        self._unpersisted: Set[TxnId] = set()
        self._held_certifies: List[Tuple[TxnId, Any]] = []
        self._held_txns: Set[TxnId] = set()
        # Protocol-level batching: the PREPARE fan-out travels as regular
        # messages; ACCEPT and DECISION batches are persisted with a single
        # one-sided RDMA write per destination.
        self._batching = self.batch_policy.enabled
        self.batchers: List[MessageBatcher] = []
        # Shard attribution for pending ACCEPT batches, recorded at enqueue
        # time (the unbatched path binds msg.shard in its per-send ack
        # closure; resolving from self.members at flush time instead would
        # mis-attribute acks if a reconfiguration lands while a batch is
        # pending).
        self._accept_shards: Dict[ProcessId, ShardId] = {}
        if self._batching:
            self._prepare_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=lambda items: CertifyBatch(prepares=items),
                on_flush=self._note_prepares_flushed,
            )
            self._accept_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=lambda items: AcceptBatch(accepts=items),
                send=self._send_accept_batch,
            )
            self._decision_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=lambda items: DecisionBatch(decisions=items),
                send=lambda dst, message: self.rdma.send(dst, message),
            )
            self._reply_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=lambda items: TxnDecisionBatch(decisions=items),
            )
            self.batchers = [
                self._prepare_batcher,
                self._accept_batcher,
                self._decision_batcher,
                self._reply_batcher,
            ]
        self._cs_request_id = 0
        self._cs_callbacks: Dict[int, Callable[[CsReply], None]] = {}
        self.decision_listeners: List[Callable[[int, Optional[TxnId], Decision], None]] = []
        self._votes = LeaderVoteCache(self)

        # Snapshot-read fast path (inert under the default certified-only
        # policy); see repro.core.reads.
        self.read_engine: Optional[ReplicaReadEngine] = (
            ReplicaReadEngine(self, self.read_policy) if self.read_policy.enabled else None
        )
        self._lease_seq = 0

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self, config: GlobalConfiguration) -> None:
        """Install the initial global configuration."""
        self.members = {s: tuple(m) for s, m in config.members.items()}
        self.leader = dict(config.leaders)
        own_members = self.members.get(self.shard, ())
        if self.pid in own_members:
            self.epoch = config.epoch
            self.new_epoch = config.epoch
            self.initialized = True
            self.status = (
                Status.LEADER if self.leader[self.shard] == self.pid else Status.FOLLOWER
            )
            for pid in config.all_processes():
                if pid != self.pid:
                    self.rdma.open(pid)
            if self.read_engine is not None:
                self.read_engine.note_epoch(self.epoch)
        else:
            self.epoch = 0
            self.new_epoch = 0
            self.initialized = False
            self.status = Status.FOLLOWER
        self._watch_co_members()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.status is Status.LEADER

    def certification_order(self) -> List[TxnId]:
        return [self.txn_arr[k] for k in sorted(self.txn_arr)]

    def coordinated(self, txn: TxnId) -> Optional[RdmaCoordinatorEntry]:
        return self._coordinated.get(txn)

    def _all_members(self) -> List[ProcessId]:
        seen: List[ProcessId] = []
        for members in self.members.values():
            for pid in members:
                if pid not in seen:
                    seen.append(pid)
        return seen

    def _cs_call(self, build_message, callback: Callable[[CsReply], None]) -> None:
        self._cs_request_id += 1
        request_id = self._cs_request_id
        self._cs_callbacks[request_id] = callback
        self.send(self.config_service, build_message(request_id))

    def on_cs_reply(self, msg: CsReply, sender: str) -> None:
        callback = self._cs_callbacks.pop(msg.request_id, None)
        if callback is not None:
            callback(msg)

    # ------------------------------------------------------------------
    # coordinator: certify / retry (Figure 7, lines 74-76 and 167-170)
    # ------------------------------------------------------------------
    def certify(self, txn: TxnId, payload: Any) -> RdmaCoordinatorEntry:
        shards = self.directory.shards_of(txn)
        entry = self._coordinated.get(txn)
        if entry is None:
            entry = RdmaCoordinatorEntry(
                txn=txn, payload=payload, shards=frozenset(shards), started_at=self.now
            )
            self._coordinated[txn] = entry
        if (
            not self.pipeline_commits
            and self._unpersisted
            and txn not in self._unpersisted
            and txn not in self._held_txns
        ):
            # Stop-and-wait: hold PREPAREs until the in-flight transactions
            # are fully persisted (see CoordinatorMixin.certify).
            self._held_txns.add(txn)
            self._held_certifies.append((txn, payload))
            return entry
        self._dispatch_prepares(entry, payload)
        return entry

    def _dispatch_prepares(self, entry: RdmaCoordinatorEntry, payload: Any) -> None:
        txn = entry.txn
        shards = entry.shards
        if not self.pipeline_commits and shards:
            self._unpersisted.add(txn)
        # Sorted for hash-seed-independent send order (random latency
        # models draw one delay per send, so iteration order matters; under
        # batching it also fixes batch composition).
        for shard in sorted(shards):
            projected = (
                BOTTOM if payload is BOTTOM else self.scheme.project(payload, shard)
            )
            prepare = Prepare(txn=txn, payload=projected)
            if self._batching:
                self._prepare_batcher.add(self.leader[shard], prepare)
            else:
                entry.dispatched_at = self.now
                self.send(self.leader[shard], prepare)
        if not shards:
            self._maybe_decide(entry)

    def _drain_held_certifies(self) -> None:
        while self._held_certifies and not self._unpersisted:
            txn, payload = self._held_certifies.pop(0)
            self._held_txns.discard(txn)
            entry = self._coordinated.get(txn)
            if entry is None or entry.decided:
                continue
            self._dispatch_prepares(entry, payload)

    def _note_prepares_flushed(self, dst: str, prepares: tuple) -> None:
        for prepare in prepares:
            entry = self._coordinated.get(prepare.txn)
            if entry is not None:
                entry.dispatched_at = self.now

    def retry(self, slot: int) -> Optional[RdmaCoordinatorEntry]:
        if self.phase_arr.get(slot) is not Phase.PREPARED:
            return None
        return self.certify(self.txn_arr[slot], BOTTOM)

    def on_certify_request(self, msg: CertifyRequest, sender: str) -> None:
        if deduplicate_certify_request(self, msg, sender):
            return
        self.certify(msg.txn, msg.payload)

    def on_certify_request_batch(self, msg: CertifyRequestBatch, sender: str) -> None:
        for request in msg.requests:
            self.on_certify_request(request, sender)

    # ------------------------------------------------------------------
    # leader: PREPARE (lines 77-90)
    # ------------------------------------------------------------------
    def _certify_prepare(self, msg: Prepare) -> PrepareAck:
        """Place one PREPARE in the certification order (or find it there)
        and return the vote; shared by the single and batched paths."""
        existing_slot = self.slot_of.get(msg.txn)
        if existing_slot is not None:
            return PrepareAck(
                epoch=self.epoch,
                shard=self.shard,
                slot=existing_slot,
                txn=msg.txn,
                payload=self.payload_arr[existing_slot],
                vote=self.vote_arr[existing_slot],
            )
        self.next += 1
        slot = self.next
        self.txn_arr[slot] = msg.txn
        self.phase_arr[slot] = Phase.PREPARED
        self.slot_of[msg.txn] = slot
        if msg.payload is not BOTTOM:
            self.vote_arr[slot] = self._votes.vote(slot, msg.payload)
            self.payload_arr[slot] = msg.payload
            self._votes.note_prepared(slot)
            if self.read_engine is not None:
                self.read_engine.note_prepared(slot)
        else:
            self.vote_arr[slot] = Decision.ABORT
            self.payload_arr[slot] = self.scheme.empty_payload()
        return PrepareAck(
            epoch=self.epoch,
            shard=self.shard,
            slot=slot,
            txn=msg.txn,
            payload=self.payload_arr[slot],
            vote=self.vote_arr[slot],
        )

    def on_prepare(self, msg: Prepare, sender: str) -> None:
        if self.status is not Status.LEADER:
            return
        self.send(sender, self._certify_prepare(msg))

    def on_certify_batch(self, msg: CertifyBatch, sender: str) -> None:
        """Certify a whole batch in one pass and answer with one aggregated
        vote vector (intra-batch conflict ordering follows batch order; see
        the message-passing variant)."""
        if self.status is not Status.LEADER:
            return
        acks = tuple(self._certify_prepare(prepare) for prepare in msg.prepares)
        self.send(sender, VoteBatch(acks=acks))

    # ------------------------------------------------------------------
    # coordinator: persist votes with RDMA (lines 91-93, 96-100)
    # ------------------------------------------------------------------
    def on_prepare_ack(self, msg: PrepareAck, sender: str) -> None:
        if msg.epoch != self.epoch:
            # Precondition e = epoch (line 92): stale or too-new votes are
            # ignored; coordinator recovery handles the transaction later.
            return
        entry = self._coordinated.get(msg.txn)
        if entry is None:
            return
        entry.votes[msg.shard] = msg.vote
        entry.slots[msg.shard] = msg.slot
        entry.vote_epochs[msg.shard] = msg.epoch
        followers = [p for p in self.members[msg.shard] if p != self.leader[msg.shard]]
        accept = Accept(slot=msg.slot, txn=msg.txn, payload=msg.payload, vote=msg.vote)
        for follower in followers:
            if follower == self.pid:
                # A coordinator that is itself a follower of the shard writes
                # to its own memory directly (no NIC round-trip needed).
                self.on_accept(accept, self.pid)
                entry.rdma_acks.setdefault(msg.shard, set()).add(self.pid)
                continue
            if self._batching:
                self._accept_shards[follower] = msg.shard
                self._accept_batcher.add(follower, accept)
                continue
            self.rdma.send(
                follower,
                accept,
                on_ack=lambda _message, dst, shard=msg.shard, txn=msg.txn: self._on_accept_acked(
                    txn, shard, dst
                ),
            )
        self._maybe_decide(entry)

    def on_vote_batch(self, msg: VoteBatch, sender: str) -> None:
        for ack in msg.acks:
            self.on_prepare_ack(ack, sender)

    def _send_accept_batch(self, dst: ProcessId, message: AcceptBatch) -> None:
        """Persist a whole ACCEPT batch at ``dst`` with one one-sided write;
        the single NIC ack confirms every transaction it carries.  A
        follower only ever receives accepts of its own shard; the shard was
        recorded when the accepts were enqueued."""
        shard = self._accept_shards[dst]
        self.rdma.send(
            dst,
            message,
            on_ack=lambda batch, follower, shard=shard: self._on_accept_batch_acked(
                batch, shard, follower
            ),
        )

    def _on_accept_batch_acked(
        self, batch: AcceptBatch, shard: ShardId, follower: ProcessId
    ) -> None:
        for accept in batch.accepts:
            self._on_accept_acked(accept.txn, shard, follower)

    def _on_accept_acked(self, txn: TxnId, shard: ShardId, follower: ProcessId) -> None:
        """ack-rdma received for an ACCEPT written to ``follower`` (line 96)."""
        entry = self._coordinated.get(txn)
        if entry is None:
            return
        entry.rdma_acks.setdefault(shard, set()).add(follower)
        self._maybe_decide(entry)

    def _shard_persisted(self, entry: RdmaCoordinatorEntry, shard: ShardId) -> bool:
        if entry.vote_epochs.get(shard) != self.epoch or shard not in entry.votes:
            return False
        followers = {p for p in self.members[shard] if p != self.leader[shard]}
        return followers <= entry.rdma_acks.get(shard, set())

    def _maybe_decide(self, entry: RdmaCoordinatorEntry) -> None:
        if entry.decided:
            return
        if not all(self._shard_persisted(entry, shard) for shard in entry.shards):
            return
        decision = Decision.meet_all(entry.votes[s] for s in entry.shards)
        entry.decided = True
        entry.decision = decision
        entry.decided_at = self.now
        if self.directory.known(entry.txn):
            client = self.directory.client_of(entry.txn)
            reply = TxnDecision(entry.txn, decision)
            if self._batching:
                self._reply_batcher.add(client, reply)
            else:
                self.send(client, reply)
        # Sorted for hash-seed-independent send order (see `certify`).
        for shard in sorted(entry.shards):
            message = SlotDecision(slot=entry.slots[shard], decision=decision)
            for member in self.members[shard]:
                if member == self.pid:
                    # A coordinator that is itself a member persists the
                    # decision locally without a network round-trip.
                    self._apply_decision(message.slot, decision)
                elif self._batching:
                    self._decision_batcher.add(member, message)
                else:
                    self.rdma.send(member, message)
        if not self.pipeline_commits:
            self._unpersisted.discard(entry.txn)
            self._drain_held_certifies()

    # ------------------------------------------------------------------
    # members: RDMA-delivered ACCEPT and DECISION (lines 94-95, 101-102)
    # ------------------------------------------------------------------
    def on_accept(self, msg: Accept, sender: str) -> None:
        self.txn_arr[msg.slot] = msg.txn
        self.payload_arr[msg.slot] = msg.payload
        self.vote_arr[msg.slot] = msg.vote
        if self.phase_arr.get(msg.slot) is not Phase.DECIDED:
            self.phase_arr[msg.slot] = Phase.PREPARED
        self.slot_of[msg.txn] = msg.slot
        # One-sided writes land in the arrays behind the vote index's back.
        self._votes.invalidate()
        if self.read_engine is not None:
            self.read_engine.note_prepared(msg.slot)

    def on_accept_batch(self, msg: AcceptBatch, sender: str) -> None:
        """A batched one-sided ACCEPT write landed in our memory."""
        for accept in msg.accepts:
            self.on_accept(accept, sender)

    def on_slot_decision(self, msg: SlotDecision, sender: str) -> None:
        self._apply_decision(msg.slot, msg.decision)

    def on_decision_batch(self, msg: DecisionBatch, sender: str) -> None:
        for decision in msg.decisions:
            self._apply_decision(decision.slot, decision.decision)

    def _apply_decision(self, slot: int, decision: Decision) -> None:
        self.dec_arr[slot] = decision
        self.phase_arr[slot] = Phase.DECIDED
        self._votes.note_decided(slot)
        txn = self.txn_arr.get(slot)
        for listener in self.decision_listeners:
            listener(slot, txn, decision)

    # ------------------------------------------------------------------
    # failure detection (heartbeats among co-members; repro.core.failuredetector)
    # ------------------------------------------------------------------
    def _watch_co_members(self) -> None:
        if self.detector is None:
            return
        own = self.members.get(self.shard, ())
        peers = own if self.pid in own else ()
        now = self.now if self.network is not None else 0.0
        self.detector.watch(peers, now)

    def emit_heartbeats(self) -> None:
        if self.detector is None or not self.initialized:
            return
        peers = [p for p in self.members.get(self.shard, ()) if p != self.pid]
        if peers:
            self.send_all(peers, Heartbeat(shard=self.shard, epoch=self.epoch), weak=True)

    def tick_detector(self) -> None:
        if self.detector is None or not self.initialized:
            return
        for suspect in self.detector.tick(self.now):
            self.send(
                self.config_service,
                SuspicionReport(shard=self.shard, epoch=self.epoch, suspect=suspect),
            )

    def on_heartbeat(self, msg: Heartbeat, sender: str) -> None:
        if self.detector is not None:
            self.detector.record(sender, self.now)

    def on_cs_view_change(self, msg: CsViewChange, sender: str) -> None:
        """Unsolicited failover: the service confirmed suspicions and asks
        this process to drive the (global) reconfiguration.  The
        ``rec_status`` guard in :meth:`reconfigure` deduplicates races with
        timeout-driven attempts; the CAS arbitrates across processes."""
        if msg.epoch < self.epoch:
            return
        for pid in msg.suspects:
            self.suspect(pid)
        if self.reconfigure():
            self.unsolicited_reconfigurations += 1

    # ------------------------------------------------------------------
    # snapshot-read fast path (certification-bypassing; repro.core.reads)
    # ------------------------------------------------------------------
    def request_read_lease(self) -> None:
        """Ask the configuration service for (or to renew) this leader's
        read lease; see the message-passing variant."""
        if self.read_engine is None or self.read_engine.lease_pending:
            return
        self.read_engine.lease_pending = True
        self._lease_seq += 1
        self.send(
            self.config_service,
            CsLeaseRequest(
                shard=self.shard,
                duration=self.read_policy.lease,
                request_id=self._lease_seq,
                epoch=self.epoch,
            ),
        )

    def on_cs_lease_grant(self, msg: CsLeaseGrant, sender: str) -> None:
        if self.read_engine is not None:
            self.read_engine.note_lease(msg.expires_at, msg.ok, msg.epoch)

    def on_read_request(self, msg: ReadRequest, sender: str) -> None:
        if self.read_engine is None or self.status is not Status.LEADER:
            self.send(sender, ReadReply(txn=msg.txn, ok=False, reason="not-leader"))
            return
        status, reads = self.read_engine.serve(msg.objects, self.now)
        if status == "ok":
            self.send(sender, ReadReply(txn=msg.txn, ok=True, reads=tuple(reads)))
        else:
            self.send(sender, ReadReply(txn=msg.txn, ok=False, reason=status))
        if self.read_engine.lease_wants_renewal(self.now):
            self.request_read_lease()

    # ------------------------------------------------------------------
    # reconfiguration (Figure 8)
    # ------------------------------------------------------------------
    def suspect(self, pid: ProcessId) -> None:
        self.suspected.add(pid)

    def reconfigure(self) -> bool:
        """Initiate a global reconfiguration (lines 103-110)."""
        if self.rec_status is not RecStatus.READY:
            return False
        self.rec_status = RecStatus.PROBING
        self.reconfigurations_initiated += 1

        def on_last(reply: CsReply) -> None:
            if not reply.ok or reply.config is None:
                self.rec_status = RecStatus.READY
                return
            config: GlobalConfiguration = reply.config  # type: ignore[assignment]
            self.recon_epoch = config.epoch + 1
            self._probe_responders = {shard: set() for shard in config.members}
            self._probe_leaders = {}
            self._probe_stepping = {shard: False for shard in config.members}
            self.probed_epoch = {shard: config.epoch for shard in config.members}
            self.probed_members = {s: tuple(m) for s, m in config.members.items()}
            targets: List[ProcessId] = []
            for members in self.probed_members.values():
                for pid in members:
                    if pid not in targets:
                        targets.append(pid)
            self.send_all(targets, Probe(epoch=self.recon_epoch))

        self._cs_call(lambda rid: CsGetLast(shard=GLOBAL_SHARD, request_id=rid), on_last)
        return True

    def on_probe(self, msg: Probe, sender: str) -> None:
        if msg.epoch < self.new_epoch:
            return
        self.status = Status.RECONFIGURING
        self.rdma.multiclose(self.rdma.connections)
        self.new_epoch = msg.epoch
        self.send(sender, ProbeAck(initialized=self.initialized, epoch=msg.epoch, shard=self.shard))

    def on_probe_ack(self, msg: ProbeAck, sender: str) -> None:
        if self.rec_status is not RecStatus.PROBING or msg.epoch != self.recon_epoch:
            return
        shard = msg.shard
        self._probe_responders.setdefault(shard, set()).add(sender)
        if msg.initialized:
            self._probe_leaders.setdefault(shard, sender)
            if all(s in self._probe_leaders for s in self.probed_members):
                self._finish_probing()
        else:
            self._step_down_probing(shard, sender)

    def _finish_probing(self) -> None:
        """Lines 117-124: an initialized leader was found for every shard."""
        self.rec_status = RecStatus.READY
        members: Dict[ShardId, Tuple[ProcessId, ...]] = {}
        leaders: Dict[ShardId, ProcessId] = {}
        for shard, new_leader in self._probe_leaders.items():
            leaders[shard] = new_leader
            members[shard] = self.membership_policy.compute(
                shard=shard,
                new_leader=new_leader,
                responders=self._probe_responders.get(shard, set()),
                suspected=self.suspected,
                spares=self.spare_pools.get(shard, self.spares),
                previous_size=len(self.probed_members.get(shard, ())),
            )
        config = GlobalConfiguration(epoch=self.recon_epoch, members=members, leaders=leaders)

        def on_cas(reply: CsReply) -> None:
            if not reply.ok:
                return
            self.reconfigurations_introduced += 1
            self.rec_status = RecStatus.INSTALLING
            self.recon_members = members
            self.recon_leaders = leaders
            self._config_prepare_acks = set()
            targets: List[ProcessId] = []
            for shard_members in members.values():
                for pid in shard_members:
                    if pid not in targets:
                        targets.append(pid)
            self.send_all(
                targets,
                ConfigPrepare(epoch=self.recon_epoch, members=members, leaders=leaders),
            )

        self._cs_call(
            lambda rid: CsCompareAndSwap(
                shard=GLOBAL_SHARD,
                expected_epoch=self.recon_epoch - 1,
                config=config,  # type: ignore[arg-type]
                request_id=rid,
            ),
            on_cas,
        )

    def _step_down_probing(self, shard: ShardId, sender: ProcessId) -> None:
        """Lines 125-130: the probed epoch of this shard never became
        operational; probe its preceding configuration."""
        if sender not in self.probed_members.get(shard, ()):
            return
        if shard in self._probe_leaders or self._probe_stepping.get(shard):
            return
        self._probe_stepping[shard] = True
        previous_epoch = self.probed_epoch[shard] - 1
        if previous_epoch < 1:
            self.rec_status = RecStatus.READY
            return

        def on_get(reply: CsReply) -> None:
            if self.rec_status is not RecStatus.PROBING:
                return
            if not reply.ok or reply.config is None:
                return
            config: GlobalConfiguration = reply.config  # type: ignore[assignment]
            self.probed_epoch[shard] = previous_epoch
            self.probed_members[shard] = tuple(config.members.get(shard, ()))
            self._probe_stepping[shard] = False
            self.send_all(self.probed_members[shard], Probe(epoch=self.recon_epoch))

        self._cs_call(
            lambda rid: CsGet(shard=GLOBAL_SHARD, epoch=previous_epoch, request_id=rid),
            on_get,
        )

    def on_config_prepare(self, msg: ConfigPrepare, sender: str) -> None:
        if msg.epoch < self.new_epoch:
            return
        self.members = {s: tuple(m) for s, m in msg.members.items()}
        self.leader = dict(msg.leaders)
        self.new_epoch = msg.epoch
        self.send(sender, ConfigPrepareAck(epoch=msg.epoch))

    def on_config_prepare_ack(self, msg: ConfigPrepareAck, sender: str) -> None:
        if self.rec_status is not RecStatus.INSTALLING or msg.epoch != self.recon_epoch:
            return
        self._config_prepare_acks.add(sender)
        expected: Set[ProcessId] = set()
        for shard_members in self.recon_members.values():
            expected.update(shard_members)
        if expected <= self._config_prepare_acks:
            self.rec_status = RecStatus.READY
            for shard, leader in self.recon_leaders.items():
                self.send(leader, NewConfig(epoch=self.recon_epoch))

    def on_new_config(self, msg: NewConfig, sender: str) -> None:
        if msg.epoch != self.new_epoch:
            return
        # All writes already acknowledged by our NIC must be visible before
        # we snapshot our state for the followers (line 142).
        self.rdma.flush()
        self.status = Status.LEADER
        self.epoch = msg.epoch
        self._votes.invalidate()
        self.next = max(
            (k for k, ph in self.phase_arr.items() if ph is not Phase.START), default=0
        )
        if self.read_engine is not None:
            self.read_engine.note_epoch(self.epoch)
            self.read_engine.rebuild()
        self._watch_co_members()
        state = NewState(
            epoch=self.epoch,
            txn=dict(self.txn_arr),
            payload=dict(self.payload_arr),
            vote=dict(self.vote_arr),
            dec=dict(self.dec_arr),
            phase=dict(self.phase_arr),
        )
        for member in self.members.get(self.shard, ()):
            if member != self.pid:
                self.send(member, state)
        for pid in self._all_members():
            if pid != self.pid:
                self.send(pid, Connect(epoch=self.epoch))

    def on_new_state(self, msg: NewState, sender: str) -> None:
        if msg.epoch < self.new_epoch:
            return
        self.status = Status.FOLLOWER
        self.epoch = msg.epoch
        self.new_epoch = msg.epoch
        self.initialized = True
        self.txn_arr = dict(msg.txn)
        self.payload_arr = dict(msg.payload)
        self.vote_arr = dict(msg.vote)
        self.dec_arr = dict(msg.dec)
        self.phase_arr = dict(msg.phase)
        self.slot_of = {txn: slot for slot, txn in self.txn_arr.items()}
        self._votes.invalidate()
        self.next = max(
            (k for k, ph in self.phase_arr.items() if ph is not Phase.START), default=0
        )
        if self.read_engine is not None:
            self.read_engine.note_epoch(self.epoch)
            self.read_engine.rebuild()
        self._watch_co_members()
        for pid in self._all_members():
            if pid != self.pid:
                self.send(pid, Connect(epoch=self.epoch))

    def on_connect(self, msg: Connect, sender: str) -> None:
        if self.status is Status.RECONFIGURING or sender in self.rdma.connections:
            return
        self.rdma.open(sender)
        self.send(sender, ConnectAck(epoch=msg.epoch))

    def on_connect_ack(self, msg: ConnectAck, sender: str) -> None:
        if self.status is Status.RECONFIGURING or sender in self.rdma.connections:
            return
        self.rdma.open(sender)
