"""Deliberately *incorrect* RDMA variant used for the Figure 4a ablation.

Section 5 shows that naively combining the RDMA data path with the
per-shard reconfiguration of Figure 1 is unsafe: because followers cannot
reject one-sided writes, a coordinator with a stale view of a shard's
configuration can persist a commit vote at a process that has already been
promoted to leader in a newer epoch, and two contradictory decisions can be
externalised for the same transaction (Figure 4a).  The fixed protocol
(:class:`repro.rdma.replica.RdmaShardReplica`) prevents this by
reconfiguring globally and closing RDMA connections during probing.

:class:`BrokenRdmaShardReplica` reproduces the naive combination: it keeps
the per-shard reconfiguration of the message-passing protocol but persists
votes with RDMA writes that the receiver never rejects, and never closes
connections.  The safety-ablation benchmark and the corresponding tests
drive the exact schedule of Figure 4a against it and show that the TCS
checker detects the violation — and that the same schedule is harmless for
both correct protocols.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.coordinator import CoordinatorEntry
from repro.core.messages import PrepareAck
from repro.core.replica import ShardReplica
from repro.core.types import Decision, Phase, ProcessId, ShardId, Status, TxnId
from repro.rdma.messages import Accept as RdmaAccept
from repro.runtime.rdma import RdmaManager


class BrokenRdmaShardReplica(ShardReplica):
    """Figure 1 reconfiguration + RDMA vote persistence = unsafe."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        RdmaManager.install(self)
        # In the naive variant every process keeps RDMA access open to every
        # other process forever — exactly the omission that breaks safety.

    def open_to_all(self, pids) -> None:
        for pid in pids:
            if pid != self.pid:
                self.rdma.open(pid)

    # ------------------------------------------------------------------
    # coordinator: persist votes with unchecked RDMA writes
    # ------------------------------------------------------------------
    def on_prepare_ack(self, msg: PrepareAck, sender: str) -> None:
        entry = self._coordinated.get(msg.txn)
        if entry is None:
            return
        if self.epoch.get(msg.shard) != msg.epoch:
            if msg.epoch > self.epoch.get(msg.shard, 0):
                self._stash_message(msg, sender)
            return
        entry.votes[msg.shard] = msg.vote
        entry.slots[msg.shard] = msg.slot
        entry.vote_epochs[msg.shard] = msg.epoch
        followers = [p for p in self.members[msg.shard] if p != self.leader[msg.shard]]
        accept = RdmaAccept(slot=msg.slot, txn=msg.txn, payload=msg.payload, vote=msg.vote)
        for follower in followers:
            if follower == self.pid:
                self.on_accept(accept, self.pid)
                entry.acks.setdefault((msg.shard, msg.epoch), set()).add(self.pid)
                continue
            self.rdma.send(
                follower,
                accept,
                on_ack=lambda _message, dst, shard=msg.shard, txn=msg.txn, epoch=msg.epoch: (
                    self._on_rdma_accept_acked(txn, shard, epoch, dst)
                ),
            )
        self._maybe_decide(entry)

    def _on_rdma_accept_acked(
        self, txn: TxnId, shard: ShardId, epoch: int, follower: ProcessId
    ) -> None:
        entry = self._coordinated.get(txn)
        if entry is None:
            return
        entry.acks.setdefault((shard, epoch), set()).add(follower)
        self._maybe_decide(entry)

    def _shard_persisted(self, entry: CoordinatorEntry, shard: ShardId) -> bool:
        # The naive coordinator trusts its possibly-stale view of the shard's
        # configuration: it only requires NIC acks from the followers it
        # believes exist, at the epoch it believes is current.
        epoch = self.epoch.get(shard)
        if epoch is None or entry.vote_epochs.get(shard) != epoch or shard not in entry.votes:
            return False
        followers = {p for p in self.members[shard] if p != self.leader[shard]}
        return followers <= entry.acks.get((shard, epoch), set())

    # ------------------------------------------------------------------
    # members: RDMA-delivered ACCEPT cannot be rejected
    # ------------------------------------------------------------------
    def on_accept(self, msg, sender: str) -> None:  # type: ignore[override]
        if isinstance(msg, RdmaAccept):
            # No epoch or status precondition: the write already landed in
            # our memory.  This is the unsafe difference from Figure 1's
            # line 22 check.
            self.txn_arr[msg.slot] = msg.txn
            self.payload_arr[msg.slot] = msg.payload
            self.vote_arr[msg.slot] = msg.vote
            if self.phase_arr.get(msg.slot) is not Phase.DECIDED:
                self.phase_arr[msg.slot] = Phase.PREPARED
            self.slot_of[msg.txn] = msg.slot
            # The write bypassed every leader-side check; resync the index.
            self._votes.invalidate()
            return
        super().on_accept(msg, sender)
