"""RDMA-based atomic commit protocol (paper Section 5, Figures 7-8).

The protocol follows the FaRM design: the leader's vote and the final
decision are persisted at followers with one-sided RDMA writes, and the
transaction coordinator acts on NIC-level acknowledgements instead of
explicit ``ACCEPT_ACK`` messages.  The price is that reconfiguration must be
*global*: all shards change epoch together, every probed process closes its
RDMA connections, the new configuration is disseminated to the whole system
(``CONFIG_PREPARE``) before it is activated, and new leaders ``flush`` their
buffers before transferring state.

* :class:`repro.rdma.replica.RdmaShardReplica` — the correct protocol of
  Figures 7-8;
* :class:`repro.rdma.broken.BrokenRdmaShardReplica` — a deliberately naive
  variant (RDMA data path + per-shard reconfiguration, no connection
  management) used to reproduce the Figure 4a safety counter-example.
"""

from repro.rdma.replica import RdmaShardReplica
from repro.rdma.broken import BrokenRdmaShardReplica

__all__ = ["RdmaShardReplica", "BrokenRdmaShardReplica"]
