"""Messages of the RDMA-based protocol (Figures 7-8).

``PREPARE``, ``PREPARE_ACK``, ``PROBE``, ``PROBE_ACK`` and the client-facing
``DECISION`` are reused from :mod:`repro.core.messages`.  The messages below
differ from their message-passing counterparts:

* ``Accept`` and ``SlotDecision`` carry no epoch — they are written with
  one-sided RDMA and the receiver cannot check a precondition (the paper
  compensates with Invariant 13);
* reconfiguration is global: ``NewConfig``/``NewState`` carry a single
  system-wide epoch, and ``ConfigPrepare``/``ConfigPrepareAck``/``Connect``/
  ``ConnectAck`` implement the dissemination and RDMA connection
  re-establishment steps of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.core.types import Decision, Phase, ShardId, TxnId


@dataclass(frozen=True)
class Accept:
    """``ACCEPT(k, t, l, d)`` written into follower memory via RDMA (line 93)."""

    slot: int
    txn: TxnId
    payload: Any
    vote: Decision


@dataclass(frozen=True)
class SlotDecision:
    """``DECISION(k, d)`` written into member memory via RDMA (line 100)."""

    slot: int
    decision: Decision


@dataclass(frozen=True)
class AcceptBatch:
    """A batch of :class:`Accept` writes persisted with a *single* one-sided
    RDMA write (one NIC ack covers the whole batch)."""

    accepts: Tuple[Accept, ...]


@dataclass(frozen=True)
class DecisionBatch:
    """A batch of :class:`SlotDecision` writes in one one-sided RDMA write."""

    decisions: Tuple[SlotDecision, ...]


@dataclass(frozen=True)
class ConfigPrepare:
    """``CONFIG_PREPARE(e, M, leaders)`` disseminating the new global
    configuration to every member before activation (line 124)."""

    epoch: int
    members: Dict[ShardId, Tuple[str, ...]]
    leaders: Dict[ShardId, str]


@dataclass(frozen=True)
class ConfigPrepareAck:
    """``CONFIG_PREPARE_ACK(e)`` (line 136)."""

    epoch: int


@dataclass(frozen=True)
class NewConfig:
    """``NEW_CONFIG(e)`` sent to the leaders of the new configuration (line 139)."""

    epoch: int


@dataclass(frozen=True)
class NewState:
    """``NEW_STATE(e, txn, payload, vote, dec, phase)`` (line 146)."""

    epoch: int
    txn: Dict[int, TxnId]
    payload: Dict[int, Any]
    vote: Dict[int, Decision]
    dec: Dict[int, Decision]
    phase: Dict[int, Phase]


@dataclass(frozen=True)
class Connect:
    """``CONNECT(e)`` requesting an RDMA connection in the new epoch (line 147/153)."""

    epoch: int


@dataclass(frozen=True)
class ConnectAck:
    """``CONNECT_ACK(e)`` (line 158)."""

    epoch: int
