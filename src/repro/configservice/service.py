"""Reliable single-process configuration service.

Stores, per shard, the sequence of configurations ``⟨e, M, pl⟩`` and serves
the three operations of the paper:

* ``compare_and_swap(s, e, ⟨e', M, pl⟩)`` — succeeds iff the epoch of the
  last stored configuration of ``s`` is ``e`` and ``e' > e``;
* ``get_last(s)`` — the last stored configuration of ``s``;
* ``get(s, e)`` — the configuration of ``s`` at epoch ``e``.

When a compare-and-swap succeeds the service pushes ``CONFIG_CHANGE``
messages to the members of all *other* shards (Figure 1, line 67), so that
coordinators learn about new configurations.

:class:`GlobalConfigurationService` is the whole-system variant used by the
RDMA protocol (Section 5): it stores a single sequence of
:class:`GlobalConfiguration` records and its operations take no shard
argument.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import (
    ConfigChange,
    CsCompareAndSwap,
    CsGet,
    CsGetLast,
    CsLeaseGrant,
    CsLeaseRequest,
    CsReply,
    CsViewChange,
    SuspicionReport,
)
from repro.core.types import Configuration, GlobalConfiguration, ProcessId, ShardId
from repro.runtime.process import Process


class _SuspicionLedger:
    """Aggregates :class:`SuspicionReport` messages per (shard, epoch).

    Shared by both configuration-service variants.  A suspicion becomes
    *confirmed* once ``confirmations`` distinct observers reported it; the
    first confirmation of an epoch triggers exactly one view-change
    proposal (later reports against the same epoch are absorbed — the CAS
    path already serialises racing reconfigurations, this just avoids
    spamming probes).
    """

    def __init__(self) -> None:
        # (shard, epoch, suspect) -> the distinct observers that reported it
        self._votes: Dict[Tuple[ShardId, int, ProcessId], Set[ProcessId]] = {}
        # (shard, epoch) pairs a view change was already proposed for
        self._acted: Set[Tuple[ShardId, int]] = set()

    def add(self, shard: ShardId, epoch: int, suspect: ProcessId, reporter: ProcessId) -> None:
        self._votes.setdefault((shard, epoch, suspect), set()).add(reporter)

    def confirmed(self, shard: ShardId, epoch: int, confirmations: int) -> List[ProcessId]:
        """Every suspect of (shard, epoch) with enough distinct reporters."""
        return sorted(
            suspect
            for (s, e, suspect), voters in self._votes.items()
            if s == shard and e == epoch and len(voters) >= confirmations
        )

    def acted(self, shard: ShardId, epoch: int) -> bool:
        return (shard, epoch) in self._acted

    def mark_acted(self, shard: ShardId, epoch: int) -> None:
        self._acted.add((shard, epoch))


class ConfigurationService(Process):
    """The per-shard configuration service of the message-passing protocol."""

    def __init__(self, pid: str = "config-service") -> None:
        super().__init__(pid)
        self._configs: Dict[ShardId, Dict[int, Configuration]] = {}
        self._last: Dict[ShardId, int] = {}
        self.cas_attempts = 0
        self.cas_successes = 0
        # Bumped whenever any stored configuration changes; lets callers
        # (e.g. the cluster driver's coordinator routing) cache derived
        # views and invalidate them in O(1).
        self.version = 0
        # Non-member processes (client sessions) that asked to be told about
        # every new configuration, on top of the Figure 1 line 67 push to the
        # members of the other shards.
        self._subscribers: List[str] = []
        # Failure detection: how many distinct observers must report a
        # suspicion before the service proposes a view change (set by the
        # cluster from the detector policy), the report ledger, and the
        # install log — (time, shard, epoch) per stored configuration —
        # from which time-to-recovery is measured.
        self.detector_confirmations = 1
        self._suspicions = _SuspicionLedger()
        self.suspicion_reports = 0
        self.view_changes = 0
        self.install_log: List[Tuple[float, ShardId, int]] = []

    def subscribe(self, pid: str) -> None:
        """Push future ``CONFIG_CHANGE`` notifications to ``pid`` as well."""
        if pid not in self._subscribers:
            self._subscribers.append(pid)

    def _log_install(self, shard: ShardId, epoch: int) -> None:
        # install_initial runs during cluster build, before the service is
        # attached to a network; those entries are at virtual time zero.
        now = self.now if self.network is not None else 0.0
        self.install_log.append((now, shard, epoch))

    # ------------------------------------------------------------------
    # direct (bootstrap) interface
    # ------------------------------------------------------------------
    def install_initial(self, shard: ShardId, config: Configuration) -> None:
        """Install the initial configuration of a shard at bootstrap time."""
        self._configs.setdefault(shard, {})[config.epoch] = config
        self._last[shard] = config.epoch
        self.version += 1
        self._log_install(shard, config.epoch)

    def last_configuration(self, shard: ShardId) -> Optional[Configuration]:
        epoch = self._last.get(shard)
        if epoch is None:
            return None
        return self._configs[shard][epoch]

    def configuration_at(self, shard: ShardId, epoch: int) -> Optional[Configuration]:
        return self._configs.get(shard, {}).get(epoch)

    def shards(self):
        return list(self._configs.keys())

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def on_cs_get_last(self, msg: CsGetLast, sender: str) -> None:
        config = self.last_configuration(msg.shard)
        self.send(sender, CsReply(msg.request_id, ok=config is not None, config=config))

    def on_cs_get(self, msg: CsGet, sender: str) -> None:
        config = self.configuration_at(msg.shard, msg.epoch)
        self.send(sender, CsReply(msg.request_id, ok=config is not None, config=config))

    def on_cs_compare_and_swap(self, msg: CsCompareAndSwap, sender: str) -> None:
        self.cas_attempts += 1
        current = self._last.get(msg.shard)
        if current != msg.expected_epoch or msg.config.epoch <= msg.expected_epoch:
            self.send(sender, CsReply(msg.request_id, ok=False, config=None))
            return
        self.cas_successes += 1
        self._configs.setdefault(msg.shard, {})[msg.config.epoch] = msg.config
        self._last[msg.shard] = msg.config.epoch
        self.version += 1
        self._log_install(msg.shard, msg.config.epoch)
        self.send(sender, CsReply(msg.request_id, ok=True, config=msg.config))
        self._broadcast_config_change(msg.shard, msg.config)

    def on_cs_lease_request(self, msg: CsLeaseRequest, sender: str) -> None:
        """Grant a read lease on ``msg.shard`` iff the requester is the
        shard's leader in the last stored configuration *at the epoch the
        requester believes is current*.  The epoch fence refuses deposed
        leaders outright; the grant is an absolute virtual-time expiry on
        the shared simulation clock, so an already-granted lease of a
        later-deposed leader simply runs out."""
        config = self.last_configuration(msg.shard)
        ok = (
            config is not None
            and config.leader == sender
            and config.epoch == msg.epoch
        )
        expires_at = self.now + msg.duration if ok else float("-inf")
        self.send(
            sender,
            CsLeaseGrant(
                msg.shard,
                ok=ok,
                expires_at=expires_at,
                request_id=msg.request_id,
                epoch=msg.epoch,
            ),
        )

    def on_suspicion_report(self, msg: SuspicionReport, sender: str) -> None:
        """Aggregate a failure-detector suspicion; once ``suspect`` has been
        reported by ``detector_confirmations`` distinct current members, ask
        the first surviving member (configuration order) to propose a view
        change through the ordinary CAS path."""
        config = self.last_configuration(msg.shard)
        if config is None or config.epoch != msg.epoch:
            return  # stale view: the suspect's epoch is already history
        if sender not in config.members or msg.suspect not in config.members:
            return
        self.suspicion_reports += 1
        self._suspicions.add(msg.shard, msg.epoch, msg.suspect, sender)
        confirmed = self._suspicions.confirmed(
            msg.shard, msg.epoch, self.detector_confirmations
        )
        if not confirmed or self._suspicions.acted(msg.shard, msg.epoch):
            return
        survivors = [p for p in config.members if p not in confirmed]
        if not survivors:
            return  # every member suspected: nobody left to drive the change
        self._suspicions.mark_acted(msg.shard, msg.epoch)
        self.view_changes += 1
        self.send(
            survivors[0],
            CsViewChange(shard=msg.shard, epoch=msg.epoch, suspects=tuple(confirmed)),
        )

    def _broadcast_config_change(self, shard: ShardId, config: Configuration) -> None:
        """Notify members of the other shards about the new configuration."""
        change = ConfigChange(
            shard=shard,
            epoch=config.epoch,
            members=config.members,
            leader=config.leader,
        )
        for other_shard, last_epoch in self._last.items():
            if other_shard == shard:
                continue
            other_config = self._configs[other_shard][last_epoch]
            for member in other_config.members:
                self.send(member, change)
        for subscriber in self._subscribers:
            self.send(subscriber, change)


class GlobalConfigurationService(Process):
    """Whole-system configuration service used by the RDMA protocol.

    The interface mirrors :class:`ConfigurationService` but operations take
    no shard argument: the service stores a single sequence of
    :class:`GlobalConfiguration` values (Section 5: "the configuration
    service keeps a single data structure with the system's sequence of
    configurations parameterized by shard").
    """

    def __init__(self, pid: str = "global-config-service") -> None:
        super().__init__(pid)
        self._configs: Dict[int, GlobalConfiguration] = {}
        self._last: Optional[int] = None
        self.cas_attempts = 0
        self.cas_successes = 0
        # Cache-invalidation counter; see ConfigurationService.version.
        self.version = 0
        self._subscribers: List[str] = []
        # Failure detection (see ConfigurationService): confirmations
        # threshold, report ledger, and the per-shard install log.
        self.detector_confirmations = 1
        self._suspicions = _SuspicionLedger()
        self.suspicion_reports = 0
        self.view_changes = 0
        self.install_log: List[Tuple[float, ShardId, int]] = []

    def subscribe(self, pid: str) -> None:
        """Push per-shard ``CONFIG_CHANGE`` digests of every new global
        configuration to ``pid`` (client sessions; replicas learn about new
        configurations through the RDMA protocol's own dissemination)."""
        if pid not in self._subscribers:
            self._subscribers.append(pid)

    def _log_install(self, config: GlobalConfiguration) -> None:
        now = self.now if self.network is not None else 0.0
        for shard in sorted(config.members):
            self.install_log.append((now, shard, config.epoch))

    def install_initial(self, config: GlobalConfiguration) -> None:
        self._configs[config.epoch] = config
        self._last = config.epoch
        self.version += 1
        self._log_install(config)

    def last_configuration(self) -> Optional[GlobalConfiguration]:
        if self._last is None:
            return None
        return self._configs[self._last]

    def configuration_at(self, epoch: int) -> Optional[GlobalConfiguration]:
        return self._configs.get(epoch)

    # Handlers reuse the CS message types; the ``shard`` field is ignored
    # (callers pass the sentinel "*").
    def on_cs_get_last(self, msg: CsGetLast, sender: str) -> None:
        config = self.last_configuration()
        self.send(
            sender,
            CsReply(msg.request_id, ok=config is not None, config=config),  # type: ignore[arg-type]
        )

    def on_cs_get(self, msg: CsGet, sender: str) -> None:
        config = self.configuration_at(msg.epoch)
        self.send(
            sender,
            CsReply(msg.request_id, ok=config is not None, config=config),  # type: ignore[arg-type]
        )

    def on_cs_lease_request(self, msg: CsLeaseRequest, sender: str) -> None:
        """Per-shard read-lease grants against the last global configuration
        (see :meth:`ConfigurationService.on_cs_lease_request`); the epoch
        fence compares against the single system-wide epoch."""
        config = self.last_configuration()
        ok = (
            config is not None
            and config.leaders.get(msg.shard) == sender
            and config.epoch == msg.epoch
        )
        expires_at = self.now + msg.duration if ok else float("-inf")
        self.send(
            sender,
            CsLeaseGrant(
                msg.shard,
                ok=ok,
                expires_at=expires_at,
                request_id=msg.request_id,
                epoch=msg.epoch,
            ),
        )

    def on_suspicion_report(self, msg: SuspicionReport, sender: str) -> None:
        """Aggregate suspicions against the single global epoch; a confirmed
        suspicion asks a surviving member of the suspect's shard to start a
        *global* reconfiguration (the RDMA protocol has no per-shard one)."""
        config = self.last_configuration()
        if config is None or config.epoch != msg.epoch:
            return
        members = config.members.get(msg.shard, ())
        if sender not in members or msg.suspect not in members:
            return
        self.suspicion_reports += 1
        self._suspicions.add(msg.shard, msg.epoch, msg.suspect, sender)
        confirmed = self._suspicions.confirmed(
            msg.shard, msg.epoch, self.detector_confirmations
        )
        if not confirmed or self._suspicions.acted(msg.shard, msg.epoch):
            return
        survivors = [p for p in members if p not in confirmed]
        if not survivors:
            return
        self._suspicions.mark_acted(msg.shard, msg.epoch)
        self.view_changes += 1
        self.send(
            survivors[0],
            CsViewChange(shard=msg.shard, epoch=msg.epoch, suspects=tuple(confirmed)),
        )

    def on_cs_compare_and_swap(self, msg: CsCompareAndSwap, sender: str) -> None:
        self.cas_attempts += 1
        new_config: GlobalConfiguration = msg.config  # type: ignore[assignment]
        if self._last != msg.expected_epoch or new_config.epoch <= msg.expected_epoch:
            self.send(sender, CsReply(msg.request_id, ok=False, config=None))
            return
        self.cas_successes += 1
        self._configs[new_config.epoch] = new_config
        self._last = new_config.epoch
        self.version += 1
        self._log_install(new_config)
        self.send(sender, CsReply(msg.request_id, ok=True, config=new_config))  # type: ignore[arg-type]
        for shard in sorted(new_config.members):
            change = ConfigChange(
                shard=shard,
                epoch=new_config.epoch,
                members=new_config.members[shard],
                leader=new_config.leaders[shard],
            )
            for subscriber in self._subscribers:
                self.send(subscriber, change)
