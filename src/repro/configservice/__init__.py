"""External configuration service (CS).

The paper assumes a reliable external service storing the configurations of
all shards and providing ``compare_and_swap``, ``get_last`` and ``get``
operations; in practice it is realised with Paxos-style replication over
``2f + 1`` small processes (ZooKeeper-style).  We provide both:

* :class:`repro.configservice.service.ConfigurationService` — a reliable
  single-process CS (the model the paper proves against);
* :class:`repro.configservice.replicated.ReplicatedConfigurationService` —
  the same interface served by a ``2f + 1`` Multi-Paxos replicated state
  machine built on :mod:`repro.baselines.paxos`;
* :class:`repro.configservice.service.GlobalConfigurationService` — the
  whole-system variant used by the RDMA protocol (single configuration
  sequence instead of one per shard).
"""

from repro.configservice.service import (
    ConfigurationService,
    GlobalConfigurationService,
)

__all__ = ["ConfigurationService", "GlobalConfigurationService"]
