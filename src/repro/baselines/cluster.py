"""Driver harness for the 2PC-over-Paxos baseline.

Mirrors the API of :class:`repro.cluster.Cluster` (submit / run / certify /
latency and message metrics) so that the benchmark harness can sweep both
systems with the same code.  Each shard is a Multi-Paxos group of ``2f + 1``
replicas running :class:`repro.baselines.twopc.CertificationStateMachine`;
dedicated coordinator processes drive two-phase commit across the groups.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import (
    BatchStats,
    RetryStats,
    collect_batch_stats,
    collect_phase_samples,
    collect_retry_stats,
)
from repro.baselines.paxos import PaxosGroup
from repro.baselines.twopc import CertificationStateMachine, TwoPCCoordinator
from repro.client import Client, ClientSession, RetryPolicy, StaticRouter
from repro.core.batching import BatchPolicy
from repro.core.certification import CertificationScheme
from repro.core.directory import TransactionDirectory
from repro.core.failuredetector import DetectorPolicy, HeartbeatPump
from repro.core.reads import ReadPolicy
from repro.core.serializability import KeyHashSharding, SerializabilityScheme
from repro.core.types import Decision, ShardId, TxnId
from repro.runtime.events import Scheduler
from repro.runtime.network import LatencyModel, LinkSpec, Network, UnitLatency
from repro.runtime.parallel import GroupedScheduler, partition_contiguous
from repro.spec.checker import CheckResult, TCSChecker
from repro.spec.history import History
from repro.store.kv import VersionedKVStore


class BaselineCluster:
    """A simulated deployment of the vanilla 2PC-over-Paxos TCS."""

    def __init__(
        self,
        num_shards: int = 2,
        failures_tolerated: int = 1,
        num_clients: int = 1,
        num_coordinators: int = 1,
        scheme: Optional[CertificationScheme] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        batch: Optional[BatchPolicy] = None,
        groups: int = 0,
        read: Optional[ReadPolicy] = None,
        detector: Optional[DetectorPolicy] = None,
        link: Optional[LinkSpec] = None,
        pipeline: bool = True,
        sticky: bool = False,
    ) -> None:
        if num_shards < 1 or failures_tolerated < 0:
            raise ValueError("num_shards must be >= 1 and failures_tolerated >= 0")
        self.num_shards = num_shards
        self.failures_tolerated = failures_tolerated
        self.replicas_per_shard = 2 * failures_tolerated + 1
        self.shards: List[ShardId] = [f"shard-{i}" for i in range(num_shards)]
        self.scheme = scheme or SerializabilityScheme(KeyHashSharding(self.shards))

        # groups > 0 selects the conservative parallel-DES engine (see
        # repro.runtime.parallel): Paxos groups partition into that many
        # scheduler groups, coordinators and clients stay in group 0.
        self.exec_groups = groups
        self.scheduler = GroupedScheduler(groups) if groups else Scheduler()
        self.network = Network(
            self.scheduler, latency=latency or UnitLatency(), seed=seed, link=link
        )
        self.pipeline = pipeline
        self.sticky = sticky
        self._sticky_coordinator: Dict[int, str] = {}
        self.directory = TransactionDirectory()
        self.history = History()

        # The baseline has no certification-bypassing read path, but when a
        # read policy is active its state machines maintain the same applied
        # stores and closed-timestamp watermarks as the snapshot-read
        # replicas, keeping protocol comparisons apples-to-apples.
        self.read = read or ReadPolicy()
        # Passive failure detection (heartbeats + suspicion accounting only;
        # the baseline has no reconfiguration path for the detector to drive).
        self.detector = detector or DetectorPolicy()
        self.detector.validate()
        self.groups: Dict[ShardId, PaxosGroup] = {}
        for shard in self.shards:
            self.groups[shard] = PaxosGroup(
                self.network,
                name=shard,
                size=self.replicas_per_shard,
                state_machine_factory=lambda shard=shard: CertificationStateMachine(
                    shard,
                    self.scheme,
                    applied_store=VersionedKVStore() if self.read.enabled else None,
                ),
                detector=self.detector,
            )

        shard_leaders = {shard: group.leader for shard, group in self.groups.items()}
        self.batch = batch or BatchPolicy()
        self.coordinators: List[TwoPCCoordinator] = []
        for i in range(num_coordinators):
            coordinator = TwoPCCoordinator(
                pid=f"coordinator-{i}",
                scheme=self.scheme,
                directory=self.directory,
                shard_leaders=shard_leaders,
                batch=self.batch,
            )
            coordinator.pipeline_commits = self.pipeline
            self.network.register(coordinator)
            self.coordinators.append(coordinator)

        self.clients: List[Client] = []
        for i in range(num_clients):
            client = Client(
                pid=f"client-{i}",
                scheme=self.scheme,
                directory=self.directory,
                history=self.history,
                batch=self.batch,
            )
            self.network.register(client)
            self.clients.append(client)
        self._round_robin = 0

        # Client sessions (same surface as Cluster): the baseline has fixed
        # dedicated coordinators, so the router is a static round-robin;
        # retries re-submit to the next coordinator in line.
        self.retry = retry or RetryPolicy()
        self.router = StaticRouter([c.pid for c in self.coordinators], sticky=self.sticky)
        self.sessions: List[ClientSession] = [
            ClientSession(client, self.router, self.scheme, self.retry)
            for client in self.clients
        ]

        if groups:
            self.scheduler.install(self.network, self._group_partition())
        # Heartbeat pump (see Cluster.__init__): one weak recurring tick
        # armed exactly once at build, self-re-armed from inside the tick.
        self.pump = HeartbeatPump(self.scheduler, self._all_paxos_replicas, self.detector)
        self.pump.start()

    def _all_paxos_replicas(self) -> List[Any]:
        return [r for group in self.groups.values() for r in group.replicas]

    def _group_partition(self) -> Dict[str, int]:
        """Shards to contiguous groups; replicas follow their shard; the
        clients (the only history writers) and the dedicated coordinators
        share group 0, preserving the serial history append order."""
        shard_group = partition_contiguous(self.shards, self.exec_groups)
        group_of: Dict[str, int] = {}
        for shard, group in self.groups.items():
            for pid in group.pids:
                group_of[pid] = shard_group[shard]
        for coordinator in self.coordinators:
            group_of[coordinator.pid] = 0
        for client in self.clients:
            group_of[client.pid] = 0
        return group_of

    # ------------------------------------------------------------------
    # transaction driving (same surface as Cluster)
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Any,
        client_index: int = 0,
        coordinator: Optional[str] = None,
        txn: Optional[TxnId] = None,
    ) -> TxnId:
        if self.retry.enabled:
            return self.sessions[client_index].submit(
                payload, coordinator=coordinator, txn=txn
            )
        client = self.clients[client_index]
        if coordinator is None:
            if self.sticky:
                # Sticky affinity: each client keeps its coordinator so that
                # coordinator's command batches fill deeper.
                coordinator = self._sticky_coordinator.get(client_index)
                if coordinator is None:
                    self._round_robin += 1
                    coordinator = self.coordinators[
                        self._round_robin % len(self.coordinators)
                    ].pid
                    self._sticky_coordinator[client_index] = coordinator
            else:
                self._round_robin += 1
                coordinator = self.coordinators[
                    self._round_robin % len(self.coordinators)
                ].pid
        return client.submit(payload, coordinator=coordinator, txn=txn)

    def run(self, max_time: Optional[float] = None, max_events: Optional[int] = None) -> int:
        return self.scheduler.run(max_time=max_time, max_events=max_events)

    def run_until_decided(
        self, txns: Optional[Sequence[TxnId]] = None, max_events: int = 1_000_000
    ) -> bool:
        with self.history.watch(txns) as watcher:
            if watcher.done:
                return True
            return self.scheduler.run_until(watcher.is_done, max_events=max_events)

    def certify(self, payload: Any, client_index: int = 0) -> Decision:
        txn = self.submit(payload, client_index=client_index)
        if not self.run_until_decided([txn]):
            raise RuntimeError(f"transaction {txn} was not decided")
        return self.history.decision_of(txn)

    def certify_many(self, payloads: Sequence[Any], client_index: int = 0) -> Dict[TxnId, Decision]:
        txns = [self.submit(p, client_index=client_index) for p in payloads]
        self.run_until_decided(txns)
        return {t: self.history.decision_of(t) for t in txns}

    def decision_of(self, txn: TxnId) -> Optional[Decision]:
        return self.history.decision_of(txn)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def leader_of(self, shard: ShardId) -> str:
        return self.groups[shard].leader

    def seed_read_stores(self, initial: Dict[str, Any]) -> None:
        """Seed the state machines' applied stores with the initial values
        (no-op without a read policy; mirrors ``Cluster.seed_read_stores``)."""
        if not self.read.enabled:
            return
        sharding = self.scheme.sharding
        for group in self.groups.values():
            for replica in group.replicas:
                machine = replica.state_machine
                store = machine.applied_store
                if store is None:
                    continue
                for obj, value in initial.items():
                    if sharding.shard_of(obj) == machine.shard:
                        store.seed(obj, value)

    def watermark_of(self, shard: ShardId) -> Any:
        """The closed-timestamp watermark of the shard leader's state machine."""
        return self.groups[shard].leader_replica.state_machine.watermark

    def client_latencies(self) -> List[float]:
        values = []
        for client in self.clients:
            for txn in client.outcomes:
                latency = client.latency_of(txn)
                if latency is not None:
                    values.append(latency)
        return values

    def durable_decision_latencies(self) -> List[float]:
        """Latency from the coordinator starting 2PC to the decision being
        durable on every shard (the baseline's 7-message-delay path)."""
        values = []
        for coordinator in self.coordinators:
            for entry in coordinator.transactions.values():
                if entry.durable_at is not None:
                    values.append(entry.durable_at - entry.started_at)
        return values

    def vote_latencies(self) -> List[float]:
        """Latency from 2PC start to the decision being known (not yet durable)."""
        values = []
        for coordinator in self.coordinators:
            for entry in coordinator.transactions.values():
                if entry.decided_at is not None:
                    values.append(entry.decided_at - entry.started_at)
        return values

    def phase_samples(self) -> Dict[str, List[float]]:
        """Per-phase latency samples (same keys as ``Cluster.phase_samples``):
        submit -> 2PC start, 2PC start -> decision known, decision -> client."""
        entries = {
            txn: entry
            for coordinator in self.coordinators
            for txn, entry in coordinator.transactions.items()
        }
        return collect_phase_samples(self.clients, entries)

    def abort_rate(self) -> float:
        decided = self.history.decided()
        if not decided:
            return 0.0
        aborts = sum(1 for d in decided.values() if d is Decision.ABORT)
        return aborts / len(decided)

    def retry_stats(self) -> RetryStats:
        return collect_retry_stats(self.sessions, self.coordinators)

    def detector_stats(self) -> Dict[str, Any]:
        """Passive detector counters (no view changes in the baseline)."""
        stats: Dict[str, Any] = {
            "heartbeat_ticks": self.pump.ticks,
            "suspicions": 0,
            "false_suspicions": 0,
            "suspicion_reports": 0,
            "view_changes": 0,
            "unsolicited_reconfigurations": 0,
            "pushed_failovers": 0,
        }
        for replica in self._all_paxos_replicas():
            if replica.detector is not None:
                stats["suspicions"] += replica.detector.suspicions
                stats["false_suspicions"] += replica.detector.false_suspicions
        for session in self.sessions:
            stats["pushed_failovers"] += session.pushed_failovers
        return stats

    def batch_stats(self) -> BatchStats:
        return collect_batch_stats(list(self.coordinators) + self.clients)

    def check(self) -> Tuple[CheckResult, list]:
        checker = TCSChecker(self.scheme)
        return checker.check(self.history), []

    @property
    def message_stats(self):
        return self.network.stats
