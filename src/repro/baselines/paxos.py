"""Leader-based Multi-Paxos replicated state machine.

This is the replication substrate assumed by the vanilla 2PC-over-Paxos
baseline (every 2PC action is first made durable on a majority of ``2f + 1``
replicas) and by the optional Paxos-replicated configuration service.

The implementation is a classical Multi-Paxos:

* every replica is simultaneously a proposer, an acceptor and a learner;
* ballots are ``(round, pid)`` pairs, totally ordered;
* the initial leader is installed with ballot ``(1, leader)`` on every
  acceptor at bootstrap, so it can skip phase 1 (the standard stable-leader
  optimisation); a replica that wants to take over calls
  :meth:`PaxosReplica.become_leader`, which runs phase 1 for all slots and
  adopts the highest-ballot accepted values it learns about;
* commands are applied to the state machine strictly in slot order, and the
  proposing leader answers the client once the command's slot is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.failuredetector import DetectorPolicy, FailureDetector
from repro.core.messages import Heartbeat
from repro.runtime.process import Process


Ballot = Tuple[int, str]
BALLOT_ZERO: Ballot = (0, "")


class StateMachine:
    """Deterministic state machine replicated by the Paxos group."""

    def apply(self, command: Any) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class RsmCommand:
    """Client request: execute ``command`` on the replicated state machine."""

    command: Any
    request_id: int


@dataclass(frozen=True)
class RsmResponse:
    """Reply carrying the state machine's result for a client request."""

    request_id: int
    result: Any


@dataclass(frozen=True)
class Phase1a:
    ballot: Ballot


@dataclass(frozen=True)
class Phase1b:
    ballot: Ballot
    accepted: Tuple[Tuple[int, Ballot, Any], ...]


@dataclass(frozen=True)
class Phase2a:
    ballot: Ballot
    slot: int
    value: Any


@dataclass(frozen=True)
class Phase2b:
    ballot: Ballot
    slot: int


@dataclass(frozen=True)
class Chosen:
    slot: int
    value: Any


@dataclass
class _SlotValue:
    """A value proposed for a slot: the command plus reply routing."""

    command: Any
    request_id: int
    client: str


class PaxosReplica(Process):
    """One replica of a Multi-Paxos group."""

    def __init__(
        self,
        pid: str,
        group: Tuple[str, ...],
        state_machine: StateMachine,
        initial_leader: str,
        detector: Optional[DetectorPolicy] = None,
    ) -> None:
        super().__init__(pid)
        if initial_leader not in group:
            raise ValueError("initial leader must belong to the group")
        self.group = tuple(group)
        self.state_machine = state_machine
        self.leader_hint = initial_leader

        # Passive failure detection: the baseline has no reconfiguration
        # path to drive, but with an enabled policy its replicas exchange
        # the same heartbeats and accumulate the same suspicion counters as
        # the TCS replicas, keeping detector comparisons apples-to-apples.
        self.detector_policy = detector or DetectorPolicy()
        self.detector: Optional[FailureDetector] = None
        if self.detector_policy.enabled:
            self.detector = FailureDetector(self.detector_policy, pid)
            self.detector.watch(self.group, 0.0)

        # Acceptor state.
        self.promised: Ballot = (1, initial_leader)
        self.accepted: Dict[int, Tuple[Ballot, _SlotValue]] = {}

        # Proposer (leader) state.
        self.ballot: Ballot = (1, initial_leader) if pid == initial_leader else BALLOT_ZERO
        self.leading = pid == initial_leader
        self.next_slot = 0
        self._proposals: Dict[int, _SlotValue] = {}
        self._phase2_acks: Dict[int, Set[str]] = {}
        self._phase1_acks: Dict[Ballot, Dict[str, Phase1b]] = {}

        # Learner state.
        self.chosen: Dict[int, _SlotValue] = {}
        self.applied_upto = -1
        self.results: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def majority(self) -> int:
        return len(self.group) // 2 + 1

    def _broadcast(self, message: Any) -> None:
        for member in self.group:
            self.send(member, message)

    # ------------------------------------------------------------------
    # failure detection (passive: heartbeats + suspicion accounting only)
    # ------------------------------------------------------------------
    def emit_heartbeats(self) -> None:
        if self.detector is None:
            return
        peers = [p for p in self.group if p != self.pid]
        if peers:
            # The group name doubles as the shard id; the baseline has no
            # epochs, so heartbeats carry 0.
            shard = self.pid.rsplit("/", 1)[0]
            self.send_all(peers, Heartbeat(shard=shard, epoch=0), weak=True)

    def tick_detector(self) -> None:
        if self.detector is not None:
            # No configuration service to report to: suspicions only feed
            # the detector's own counters.
            self.detector.tick(self.now)

    def on_heartbeat(self, msg: Heartbeat, sender: str) -> None:
        if self.detector is not None:
            self.detector.record(sender, self.now)

    # ------------------------------------------------------------------
    # client requests
    # ------------------------------------------------------------------
    def on_rsm_command(self, msg: RsmCommand, sender: str) -> None:
        if not self.leading:
            # Forward to whoever we believe is the leader; the reply goes
            # straight back to the client because the value carries it.
            self.send(self.leader_hint, ForwardedCommand(msg, client=sender))
            return
        self._propose(_SlotValue(command=msg.command, request_id=msg.request_id, client=sender))

    def on_forwarded_command(self, msg: "ForwardedCommand", sender: str) -> None:
        if not self.leading:
            return
        self._propose(
            _SlotValue(
                command=msg.request.command,
                request_id=msg.request.request_id,
                client=msg.client,
            )
        )

    def _propose(self, value: _SlotValue) -> None:
        slot = self.next_slot
        self.next_slot += 1
        self._proposals[slot] = value
        self._phase2_acks[slot] = set()
        self._broadcast(Phase2a(ballot=self.ballot, slot=slot, value=value))

    # ------------------------------------------------------------------
    # leader change (phase 1)
    # ------------------------------------------------------------------
    def become_leader(self) -> Ballot:
        """Run phase 1 with a higher ballot to take over leadership."""
        round_ = max(self.ballot[0], self.promised[0]) + 1
        self.ballot = (round_, self.pid)
        self._phase1_acks[self.ballot] = {}
        self._broadcast(Phase1a(ballot=self.ballot))
        return self.ballot

    def on_phase1a(self, msg: Phase1a, sender: str) -> None:
        if msg.ballot < self.promised:
            return
        self.promised = msg.ballot
        self.leader_hint = msg.ballot[1]
        if self.leading and msg.ballot[1] != self.pid:
            self.leading = False
        accepted = tuple(
            (slot, ballot, value) for slot, (ballot, value) in sorted(self.accepted.items())
        )
        self.send(sender, Phase1b(ballot=msg.ballot, accepted=accepted))

    def on_phase1b(self, msg: Phase1b, sender: str) -> None:
        if msg.ballot != self.ballot:
            return
        acks = self._phase1_acks.setdefault(msg.ballot, {})
        acks[sender] = msg
        if len(acks) < self.majority or self.leading:
            return
        # Adopt the highest-ballot accepted value for every slot reported by
        # the quorum, then resume normal operation.
        self.leading = True
        self.leader_hint = self.pid
        adopted: Dict[int, Tuple[Ballot, _SlotValue]] = {}
        for reply in acks.values():
            for slot, ballot, value in reply.accepted:
                current = adopted.get(slot)
                if current is None or ballot > current[0]:
                    adopted[slot] = (ballot, value)
        for slot in sorted(adopted):
            _, value = adopted[slot]
            self._proposals[slot] = value
            self._phase2_acks[slot] = set()
            self._broadcast(Phase2a(ballot=self.ballot, slot=slot, value=value))
            self.next_slot = max(self.next_slot, slot + 1)

    # ------------------------------------------------------------------
    # phase 2 and learning
    # ------------------------------------------------------------------
    def on_phase2a(self, msg: Phase2a, sender: str) -> None:
        if msg.ballot < self.promised:
            return
        self.promised = msg.ballot
        self.leader_hint = msg.ballot[1]
        self.accepted[msg.slot] = (msg.ballot, msg.value)
        self.send(sender, Phase2b(ballot=msg.ballot, slot=msg.slot))

    def on_phase2b(self, msg: Phase2b, sender: str) -> None:
        if msg.ballot != self.ballot or msg.slot not in self._proposals:
            return
        acks = self._phase2_acks.setdefault(msg.slot, set())
        acks.add(sender)
        if len(acks) < self.majority or msg.slot in self.chosen:
            return
        value = self._proposals[msg.slot]
        self._learn(msg.slot, value)
        for member in self.group:
            if member != self.pid:
                self.send(member, Chosen(slot=msg.slot, value=value))

    def on_chosen(self, msg: Chosen, sender: str) -> None:
        self._learn(msg.slot, msg.value)

    def _learn(self, slot: int, value: _SlotValue) -> None:
        if slot in self.chosen:
            return
        self.chosen[slot] = value
        self._apply_ready()

    def _apply_ready(self) -> None:
        while self.applied_upto + 1 in self.chosen:
            slot = self.applied_upto + 1
            value = self.chosen[slot]
            result = self.state_machine.apply(value.command)
            self.results[slot] = result
            self.applied_upto = slot
            if self.leading and slot in self._proposals:
                self.send(value.client, RsmResponse(request_id=value.request_id, result=result))


@dataclass(frozen=True)
class ForwardedCommand:
    """Internal: a command forwarded from a non-leader replica to the leader."""

    request: RsmCommand
    client: str


class PaxosGroup:
    """Convenience constructor wiring a Multi-Paxos group onto a network."""

    def __init__(
        self,
        network,
        name: str,
        size: int,
        state_machine_factory: Callable[[], StateMachine],
        detector: Optional[DetectorPolicy] = None,
    ) -> None:
        if size < 1:
            raise ValueError("group size must be at least 1")
        self.name = name
        self.pids = tuple(f"{name}/p{i}" for i in range(size))
        self.leader = self.pids[0]
        self.replicas: List[PaxosReplica] = []
        for pid in self.pids:
            replica = PaxosReplica(
                pid=pid,
                group=self.pids,
                state_machine=state_machine_factory(),
                initial_leader=self.leader,
                detector=detector,
            )
            network.register(replica)
            self.replicas.append(replica)

    def replica(self, pid: str) -> PaxosReplica:
        for replica in self.replicas:
            if replica.pid == pid:
                return replica
        raise KeyError(pid)

    @property
    def leader_replica(self) -> PaxosReplica:
        return self.replica(self.leader)
