"""Vanilla baseline: two-phase commit over Paxos-replicated shards.

Each shard is a Multi-Paxos group of ``2f + 1`` replicas whose replicated
state machine performs the shard-local certification checks.  A transaction
coordinator drives classical 2PC on top:

1. send a ``prepare`` command to the Paxos leader of every relevant shard;
   the command is made durable on a majority before the shard's vote is
   returned (3 message delays per shard: Phase2a, Phase2b, vote reply);
2. combine the votes with ``⊓``;
3. send a ``decide`` command to every relevant shard and wait until it is
   durable before exposing the decision to the client.

This is the design the paper attributes to Spanner/Scatter-style systems and
improves upon: the decision takes 7 message delays to become durable at the
coordinator (versus 5/4 for the paper's protocol) and the Paxos leaders
carry the full replication fan-out for every transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.baselines.paxos import RsmCommand, RsmResponse, StateMachine
from repro.core.batching import BatchPolicy, MessageBatcher
from repro.core.certification import CertificationScheme
from repro.core.directory import TransactionDirectory
from repro.core.messages import (
    CertifyRequest,
    CertifyRequestBatch,
    TxnDecision,
    TxnDecisionBatch,
)
from repro.core.serializability import VERSION_ZERO, Version
from repro.core.types import Decision, ShardId, TxnId
from repro.runtime.process import Process
from repro.store.kv import VersionedKVStore


@dataclass(frozen=True)
class PrepareCommand:
    """State-machine command: certify a transaction at this shard."""

    txn: TxnId
    payload: Any


@dataclass(frozen=True)
class DecideCommand:
    """State-machine command: record the final decision for a transaction."""

    txn: TxnId
    decision: Decision


@dataclass(frozen=True)
class CommandBatch:
    """A batch of commands replicated as *one* Paxos value.

    Protocol-level batching for the baseline: the whole batch costs a single
    Paxos instance (one Phase2a/Phase2b round instead of one per command),
    the state machine applies the elements in order, and the response
    carries the per-command results as a tuple in the same order.
    """

    commands: Tuple[Any, ...]


class CertificationStateMachine(StateMachine):
    """Shard-local certification as a replicated state machine.

    ``prepare`` computes the vote ``f_s(committed, l) ⊓ g_s(prepared, l)``
    and records the transaction as prepared; ``decide`` moves a prepared
    transaction to the committed set (or drops it on abort).
    """

    def __init__(
        self,
        shard: ShardId,
        scheme: CertificationScheme,
        applied_store: Optional[VersionedKVStore] = None,
    ) -> None:
        self.shard = shard
        self.scheme = scheme
        self.committed_payloads: List[Any] = []
        self.prepared: Dict[TxnId, Tuple[Any, Decision]] = {}
        self.decisions: Dict[TxnId, Decision] = {}
        # Closed-timestamp watermark, kept for parity with the snapshot-read
        # replicas so protocol comparisons stay apples-to-apples; the applied
        # store is populated only when the cluster runs a read policy.
        self.applied_store = applied_store
        self.watermark: Version = VERSION_ZERO

    def apply(self, command: Any) -> Any:
        if isinstance(command, PrepareCommand):
            return self._apply_prepare(command)
        if isinstance(command, DecideCommand):
            return self._apply_decide(command)
        if isinstance(command, CommandBatch):
            # Intra-batch ordering is the batch order: each prepare is
            # certified against the transactions the earlier elements
            # prepared or decided, exactly as if the commands had been
            # replicated back to back.
            return tuple(self.apply(each) for each in command.commands)
        raise TypeError(f"unknown command {command!r}")

    def _apply_prepare(self, command: PrepareCommand) -> Decision:
        if command.txn in self.prepared:
            return self.prepared[command.txn][1]
        if command.txn in self.decisions:
            return self.decisions[command.txn]
        prepared_payloads = [
            payload
            for payload, vote in self.prepared.values()
            if vote is Decision.COMMIT
        ]
        vote = self.scheme.vote(
            self.shard, self.committed_payloads, prepared_payloads, command.payload
        )
        self.prepared[command.txn] = (command.payload, vote)
        return vote

    def _apply_decide(self, command: DecideCommand) -> Decision:
        if command.txn in self.decisions:
            return self.decisions[command.txn]
        self.decisions[command.txn] = command.decision
        entry = self.prepared.pop(command.txn, None)
        if command.decision is Decision.COMMIT and entry is not None:
            payload = entry[0]
            self.committed_payloads.append(payload)
            written = getattr(payload, "written_objects", None)
            if written:
                if self.applied_store is not None:
                    self.applied_store.install_payload(payload)
                if payload.commit_version > self.watermark:
                    self.watermark = payload.commit_version
        return command.decision


@dataclass
class _BaselineTxn:
    txn: TxnId
    payload: Any
    shards: FrozenSet[ShardId]
    started_at: float
    votes: Dict[ShardId, Decision] = field(default_factory=dict)
    decision: Optional[Decision] = None
    vote_complete_at: Optional[float] = None
    decided_at: Optional[float] = None
    durable_shards: Set[ShardId] = field(default_factory=set)
    durable_at: Optional[float] = None
    # When the last prepare command left the coordinator (equals started_at
    # unbatched); the queue_wait phase of the latency breakdown.
    dispatched_at: Optional[float] = None


class TwoPCCoordinator(Process):
    """A 2PC coordinator talking to Paxos-replicated shards."""

    def __init__(
        self,
        pid: str,
        scheme: CertificationScheme,
        directory: TransactionDirectory,
        shard_leaders: Dict[ShardId, str],
        batch: Optional[BatchPolicy] = None,
    ) -> None:
        super().__init__(pid)
        self.scheme = scheme
        self.directory = directory
        self.shard_leaders = dict(shard_leaders)
        self.transactions: Dict[TxnId, _BaselineTxn] = {}
        self._next_request = 0
        # One descriptor triple per single command, a list of them per batch.
        self._requests: Dict[int, Any] = {}
        self.duplicate_certify_requests = 0
        # Vote pipelining toggle (parity with CoordinatorMixin): False is
        # the stop-and-wait measurement baseline — prepares for a new
        # transaction are held until the in-flight one is durable everywhere.
        self.pipeline_commits = getattr(self, "pipeline_commits", True)
        self._unpersisted: Set[TxnId] = set()
        self._held_certifies: List[Tuple[TxnId, Any]] = []
        self._held_txns: Set[TxnId] = set()
        # Protocol-level batching: commands to the same Paxos leader
        # accumulate and replicate as one CommandBatch value.
        self.batch_policy = batch or BatchPolicy()
        self._batching = self.batch_policy.enabled
        self.batchers: List[MessageBatcher] = []
        if self._batching:
            self._command_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=self._wrap_commands,
                on_flush=self._note_commands_flushed,
            )
            self._reply_batcher = MessageBatcher(
                self,
                self.batch_policy,
                wrap=lambda items: TxnDecisionBatch(decisions=items),
            )
            self.batchers = [self._command_batcher, self._reply_batcher]

    # ------------------------------------------------------------------
    # client entry point
    # ------------------------------------------------------------------
    def on_certify_request(self, msg: CertifyRequest, sender: str) -> None:
        # Baseline parity with the reconfigurable protocols: client-session
        # retries are deduplicated on the transaction id.  A decided (and
        # durable) transaction is re-answered from the decision cache; an
        # in-flight duplicate is ignored — the pending Paxos commands will
        # complete it, and the certification state machine itself dedups
        # prepare/decide commands per transaction.
        entry = self.transactions.get(msg.txn)
        if entry is not None:
            self.duplicate_certify_requests += 1
            if entry.decision is not None and entry.durable_at is not None:
                self.send(sender, TxnDecision(txn=msg.txn, decision=entry.decision))
            return
        self.certify(msg.txn, msg.payload)

    def on_certify_request_batch(self, msg: CertifyRequestBatch, sender: str) -> None:
        for request in msg.requests:
            self.on_certify_request(request, sender)

    def _reply(self, client: str, reply: TxnDecision) -> None:
        if self._batching:
            self._reply_batcher.add(client, reply)
        else:
            self.send(client, reply)

    def certify(self, txn: TxnId, payload: Any) -> _BaselineTxn:
        shards = self.directory.shards_of(txn)
        entry = _BaselineTxn(
            txn=txn, payload=payload, shards=frozenset(shards), started_at=self.now
        )
        self.transactions[txn] = entry
        if (
            not self.pipeline_commits
            and self._unpersisted
            and txn not in self._unpersisted
            and txn not in self._held_txns
        ):
            # Stop-and-wait: hold prepares until the in-flight transaction
            # is durable on every shard.
            self._held_txns.add(txn)
            self._held_certifies.append((txn, payload))
            return entry
        self._dispatch_prepares(entry, payload)
        return entry

    def _dispatch_prepares(self, entry: _BaselineTxn, payload: Any) -> None:
        txn = entry.txn
        shards = entry.shards
        if not self.pipeline_commits and shards:
            self._unpersisted.add(txn)
        # Sorted for hash-seed-independent send order (random latency
        # models draw one delay per send, so iteration order matters).
        for shard in sorted(shards):
            command = PrepareCommand(txn=txn, payload=self.scheme.project(payload, shard))
            self._send_command(txn, shard, "prepare", command)
        if not shards:
            # No shard needs to vote: commit trivially and report back.
            entry.decision = Decision.COMMIT
            entry.decided_at = entry.durable_at = self.now
            if self.directory.known(txn):
                self._reply(self.directory.client_of(txn), TxnDecision(txn, Decision.COMMIT))

    def _drain_held_certifies(self) -> None:
        while self._held_certifies and not self._unpersisted:
            txn, payload = self._held_certifies.pop(0)
            self._held_txns.discard(txn)
            entry = self.transactions.get(txn)
            if entry is None or entry.decision is not None:
                continue
            self._dispatch_prepares(entry, payload)

    def _send_command(self, txn: TxnId, shard: ShardId, kind: str, command: Any) -> None:
        if self._batching:
            self._command_batcher.add(self.shard_leaders[shard], (txn, shard, kind, command))
            return
        if kind == "prepare":
            entry = self.transactions.get(txn)
            if entry is not None:
                entry.dispatched_at = self.now
        self._next_request += 1
        self._requests[self._next_request] = (txn, shard, kind)
        self.send(self.shard_leaders[shard], RsmCommand(command=command, request_id=self._next_request))

    def _wrap_commands(self, items: Tuple[Tuple[TxnId, ShardId, str, Any], ...]) -> RsmCommand:
        """Flush hook: mint one replicated command for the whole batch and
        remember the per-element descriptors for response dispatch."""
        self._next_request += 1
        self._requests[self._next_request] = [item[:3] for item in items]
        return RsmCommand(
            command=CommandBatch(commands=tuple(item[3] for item in items)),
            request_id=self._next_request,
        )

    def _note_commands_flushed(self, dst: str, items: Tuple) -> None:
        for txn, _shard, kind, _command in items:
            if kind != "prepare":
                continue
            entry = self.transactions.get(txn)
            if entry is not None:
                entry.dispatched_at = self.now

    # ------------------------------------------------------------------
    # responses from the shard state machines
    # ------------------------------------------------------------------
    def on_rsm_response(self, msg: RsmResponse, sender: str) -> None:
        request = self._requests.pop(msg.request_id, None)
        if request is None:
            return
        if isinstance(request, list):
            # A batched command: the result vector is in batch order.
            for (txn, shard, kind), result in zip(request, msg.result):
                self._apply_response(txn, shard, kind, result)
            return
        txn, shard, kind = request
        self._apply_response(txn, shard, kind, msg.result)

    def _apply_response(self, txn: TxnId, shard: ShardId, kind: str, result: Any) -> None:
        entry = self.transactions.get(txn)
        if entry is None:
            return
        if kind == "prepare":
            entry.votes[shard] = result
            if entry.decision is None and set(entry.votes) == set(entry.shards):
                self._decide(entry)
        elif kind == "decide":
            entry.durable_shards.add(shard)
            if entry.durable_shards == set(entry.shards) and entry.durable_at is None:
                entry.durable_at = self.now
                if self.directory.known(txn):
                    client = self.directory.client_of(txn)
                    self._reply(client, TxnDecision(txn=txn, decision=entry.decision))
                if not self.pipeline_commits:
                    self._unpersisted.discard(txn)
                    self._drain_held_certifies()

    def _decide(self, entry: _BaselineTxn) -> None:
        entry.vote_complete_at = self.now
        decision = Decision.meet_all(entry.votes[s] for s in entry.shards)
        entry.decision = decision
        entry.decided_at = self.now
        # Sorted for hash-seed-independent send order (see `certify`).
        for shard in sorted(entry.shards):
            self._send_command(entry.txn, shard, "decide", DecideCommand(entry.txn, decision))
