"""Baseline protocols the paper compares against.

The "vanilla" way to implement a TCS is to run two-phase commit across
shards and make each shard simulate a reliable 2PC participant with a Paxos
replication layer over ``2f + 1`` replicas (Spanner/Scatter style).  The
paper's protocols improve on this baseline in decision latency (5 or 4
message delays instead of 7), leader load and replica count (``f + 1``
instead of ``2f + 1``).

* :mod:`repro.baselines.paxos` — a leader-based Multi-Paxos replicated
  state machine (also reused by the replicated configuration service);
* :mod:`repro.baselines.twopc` — 2PC over Paxos-replicated shards, exposing
  the same client interface as the paper protocols so that the benchmark
  harness can compare them directly.
"""

from repro.baselines.paxos import (
    PaxosReplica,
    PaxosGroup,
    StateMachine,
    RsmCommand,
    RsmResponse,
)
from repro.baselines.twopc import (
    CertificationStateMachine,
    TwoPCCoordinator,
)

__all__ = [
    "PaxosReplica",
    "PaxosGroup",
    "StateMachine",
    "RsmCommand",
    "RsmResponse",
    "CertificationStateMachine",
    "TwoPCCoordinator",
]
