"""Transactional key-value store built on top of the TCS.

This is the "transaction processing system with optimistic concurrency
control" that the paper's introduction motivates: transactions are executed
speculatively against a multi-version store, their read/write sets are
submitted to the TCS for certification, and the writes of committed
transactions are applied back to the store.

* :mod:`repro.store.kv` — the sharded multi-version key-value store;
* :mod:`repro.store.executor` — optimistic transaction execution and the
  :class:`~repro.store.executor.TransactionalStore` facade that couples the
  executor to a :class:`~repro.cluster.Cluster` (or the baseline cluster).
"""

from repro.store.kv import VersionedKVStore, VersionedValue
from repro.store.executor import (
    TransactionContext,
    TransactionOutcome,
    TransactionalStore,
)

__all__ = [
    "VersionedKVStore",
    "VersionedValue",
    "TransactionContext",
    "TransactionOutcome",
    "TransactionalStore",
]
