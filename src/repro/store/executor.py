"""Optimistic transaction execution on top of the TCS.

The execution model is the one assumed by the paper (Section 2): a
transaction is first executed speculatively against the committed state,
producing a payload ``⟨R, W, Vc⟩``; the payload is submitted to the TCS for
certification; if the TCS commits it, its writes are applied to the store at
the commit version.  Because payloads only ever read committed versions, a
history that is correct with respect to the serializability certification
function yields a serializable store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.serializability import (
    ObjectId,
    TransactionPayload,
    Version,
    version_after,
)
from repro.core.types import Decision, TxnId
from repro.store.kv import VersionedKVStore


class TransactionContext:
    """Buffered reads and writes of one speculative transaction execution."""

    def __init__(self, store: VersionedKVStore, name: str = "") -> None:
        self._store = store
        self.name = name
        self._reads: Dict[ObjectId, Version] = {}
        self._read_values: Dict[ObjectId, Any] = {}
        self._writes: Dict[ObjectId, Any] = {}

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, obj: ObjectId) -> Any:
        """Read the latest committed value of ``obj`` (or a buffered write)."""
        if obj in self._writes:
            return self._writes[obj]
        if obj not in self._reads:
            versioned = self._store.read(obj)
            self._reads[obj] = versioned.version
            self._read_values[obj] = versioned.value
        return self._read_values[obj]

    def write(self, obj: ObjectId, value: Any) -> None:
        """Buffer a write; the object is read first if it has not been yet,
        because the payload model requires every written object to be read."""
        if obj not in self._reads:
            self.read(obj)
        self._writes[obj] = value

    def increment(self, obj: ObjectId, delta: float = 1) -> Any:
        current = self.read(obj) or 0
        updated = current + delta
        self.write(obj, updated)
        return updated

    # ------------------------------------------------------------------
    # payload construction
    # ------------------------------------------------------------------
    @property
    def read_set(self) -> Dict[ObjectId, Version]:
        return dict(self._reads)

    @property
    def write_set(self) -> Dict[ObjectId, Any]:
        return dict(self._writes)

    def payload(self, tiebreak: str = "") -> TransactionPayload:
        reads = frozenset(self._reads.items())
        writes = frozenset(self._writes.items())
        commit_version = version_after(self._reads.values(), tiebreak or self.name)
        return TransactionPayload(
            read_set=reads, write_set=writes, commit_version=commit_version
        )


@dataclass
class TransactionOutcome:
    """Result of running one transaction through the store."""

    txn: TxnId
    decision: Decision
    payload: TransactionPayload
    result: Any = None

    @property
    def committed(self) -> bool:
        return self.decision is Decision.COMMIT


class TransactionalStore:
    """Couples a :class:`VersionedKVStore` with a TCS cluster.

    Works with :class:`repro.cluster.Cluster` and
    :class:`repro.baselines.cluster.BaselineCluster` alike, since both expose
    ``submit`` / ``run_until_decided`` / ``decision_of``.
    """

    def __init__(
        self,
        cluster,
        initial: Optional[Dict[ObjectId, Any]] = None,
        store: Optional[VersionedKVStore] = None,
    ) -> None:
        self.cluster = cluster
        self.store = store or VersionedKVStore(initial=initial)
        self.outcomes: List[TransactionOutcome] = []
        self._txn_counter = 0
        # Asynchronously submitted transactions awaiting their decision.
        self._pending: Dict[TxnId, tuple] = {}
        self._decide_listener_installed = False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, obj: ObjectId) -> Any:
        return self.store.value_of(obj)

    def version_of(self, obj: ObjectId) -> Version:
        return self.store.version_of(obj)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def _next_name(self) -> str:
        self._txn_counter += 1
        return f"store-txn-{self._txn_counter}"

    def execute(self, body: Callable[[TransactionContext], Any], name: str = "") -> TransactionContext:
        """Run the speculative phase only; returns the populated context."""
        context = TransactionContext(self.store, name=name or self._next_name())
        context.result = body(context)  # type: ignore[attr-defined]
        return context

    def transact(
        self,
        body: Callable[[TransactionContext], Any],
        client_index: int = 0,
    ) -> TransactionOutcome:
        """Execute, certify and (on commit) apply one transaction."""
        context = self.execute(body)
        payload = context.payload()
        txn = self.cluster.submit(payload, client_index=client_index)
        if not self.cluster.run_until_decided([txn]):
            raise RuntimeError(f"transaction {txn} was not decided")
        return self._finalize(txn, self.cluster.decision_of(txn), context, payload)

    def _finalize(
        self,
        txn: TxnId,
        decision: Decision,
        context: TransactionContext,
        payload: TransactionPayload,
    ) -> TransactionOutcome:
        """Record the outcome of a decided transaction and apply its writes."""
        outcome = TransactionOutcome(
            txn=txn,
            decision=decision,
            payload=payload,
            result=getattr(context, "result", None),
        )
        if decision is Decision.COMMIT and payload.write_set:
            self.store.apply_payload(payload)
        self.outcomes.append(outcome)
        return outcome

    def submit_async(
        self,
        body: Callable[[TransactionContext], Any],
        client_index: int = 0,
        on_decided: Optional[Callable[[TransactionOutcome], None]] = None,
    ) -> TxnId:
        """Execute speculatively and submit without driving the simulation.

        The transaction is finalized (writes applied, outcome recorded,
        ``on_decided`` called) from the history's decide event — the hook
        closed-loop clients use to overlap think times with certification.
        The caller is responsible for running the scheduler.
        """
        context = self.execute(body)
        payload = context.payload()
        txn = self.cluster.submit(payload, client_index=client_index)
        self._pending[txn] = (context, payload, on_decided)
        if not self._decide_listener_installed:
            self._decide_listener_installed = True
            self.cluster.history.add_decide_listener(self._on_history_decide)
        return txn

    def _on_history_decide(self, txn: TxnId, decision: Decision) -> None:
        entry = self._pending.pop(txn, None)
        if entry is None:
            return
        context, payload, on_decided = entry
        outcome = self._finalize(txn, decision, context, payload)
        if on_decided is not None:
            on_decided(outcome)

    def submit_read_async(
        self,
        objects: Sequence[ObjectId],
        client_index: int = 0,
        on_decided: Optional[Callable[[TransactionOutcome], None]] = None,
    ) -> TxnId:
        """Submit a read-only transaction, taking the snapshot-read fast
        path when the cluster runs an enabled read policy and the objects
        live on a single shard; multi-shard reads (and the baseline, which
        has no fast path) certify a read-only payload like any other
        transaction.  The speculative read against the client store doubles
        as the certified-path fallback payload."""
        objects = sorted(objects)
        context = TransactionContext(self.store, name=self._next_name())
        for obj in objects:
            context.read(obj)
        payload = context.payload()
        cluster = self.cluster
        policy = getattr(cluster, "read", None)
        eligible = (
            policy is not None
            and policy.enabled
            and hasattr(cluster, "submit_read")
            and len({cluster.scheme.sharding.shard_of(obj) for obj in objects}) == 1
        )
        if eligible:
            txn = cluster.submit_read(
                objects, fallback_payload=payload, client_index=client_index
            )
        else:
            txn = cluster.submit(payload, client_index=client_index)
        self._pending[txn] = (context, payload, on_decided)
        if not self._decide_listener_installed:
            self._decide_listener_installed = True
            self.cluster.history.add_decide_listener(self._on_history_decide)
        return txn

    def run_batch(
        self,
        bodies: Sequence[Callable[[TransactionContext], Any]],
        client_index: int = 0,
    ) -> List[TransactionOutcome]:
        """Execute a batch of transactions against the same snapshot and
        certify them concurrently (this is where conflicts arise)."""
        contexts = [self.execute(body) for body in bodies]
        payloads = [context.payload() for context in contexts]
        txns = [self.cluster.submit(payload, client_index=client_index) for payload in payloads]
        self.cluster.run_until_decided(txns)
        return [
            self._finalize(txn, self.cluster.decision_of(txn), context, payload)
            for context, payload, txn in zip(contexts, payloads, txns)
        ]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def committed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.committed)

    @property
    def aborted_count(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.committed)
