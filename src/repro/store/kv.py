"""Multi-version key-value store.

Objects are associated with a totally ordered set of versions (Section 2).
The store keeps the full version history of each object so that the
optimistic executor can read the latest committed version and so that tests
can inspect how committed payloads were applied.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.serializability import ObjectId, TransactionPayload, Version, VERSION_ZERO


@dataclass(frozen=True)
class VersionedValue:
    """One version of one object."""

    value: object
    version: Version


class VersionedKVStore:
    """A multi-version store of committed object values."""

    def __init__(self, initial: Optional[Dict[ObjectId, object]] = None) -> None:
        self._history: Dict[ObjectId, List[VersionedValue]] = {}
        if initial:
            for obj, value in initial.items():
                self._history[obj] = [VersionedValue(value=value, version=VERSION_ZERO)]
        self.applied_payloads: List[TransactionPayload] = []

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, obj: ObjectId) -> VersionedValue:
        """Latest committed version of ``obj`` (missing objects read as None@0)."""
        versions = self._history.get(obj)
        if not versions:
            return VersionedValue(value=None, version=VERSION_ZERO)
        return versions[-1]

    def read_at(self, obj: ObjectId, version: Version) -> Optional[VersionedValue]:
        """The newest version of ``obj`` that is <= ``version``.

        Version lists are kept sorted ascending, so the lookup is a single
        bisection (O(log n)) instead of the old linear scan.  Snapshot reads
        overwhelmingly ask at or above the object's newest version, so that
        case short-circuits without bisecting or slicing at all.
        """
        versions = self._history.get(obj)
        if not versions:
            return None
        newest = versions[-1]
        if newest.version <= version:  # hot path: reading a fresh snapshot
            return newest
        at = bisect_right(versions, version, key=lambda entry: entry.version)
        return versions[at - 1] if at else None

    def version_of(self, obj: ObjectId) -> Version:
        return self.read(obj).version

    def value_of(self, obj: ObjectId, default: object = None) -> object:
        value = self.read(obj).value
        return default if value is None else value

    def history_of(self, obj: ObjectId) -> Tuple[VersionedValue, ...]:
        return tuple(self._history.get(obj, ()))

    def objects(self) -> Iterable[ObjectId]:
        return self._history.keys()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def seed(self, obj: ObjectId, value: object) -> None:
        """Install an initial (version-zero) value for an object."""
        self._history.setdefault(obj, []).insert(
            0, VersionedValue(value=value, version=VERSION_ZERO)
        )

    def install(self, obj: ObjectId, value: object, version: Version) -> bool:
        """Install one committed value at ``version``, tolerating out-of-order
        arrival.

        Replica-side applied stores learn of commits in slot-decision order,
        which per object is not necessarily commit-version order (decisions
        for different slots race across coordinators).  ``install`` therefore
        bisect-inserts into the sorted version list instead of appending, and
        is idempotent on duplicate versions (NEW_STATE rebuilds replay the
        whole log).  Returns True when a new version was actually added.
        """
        versions = self._history.setdefault(obj, [])
        if versions and versions[-1].version < version:  # hot path: in order
            versions.append(VersionedValue(value=value, version=version))
            return True
        at = bisect_right(versions, version, key=lambda entry: entry.version)
        if at and versions[at - 1].version == version:
            return False
        versions.insert(at, VersionedValue(value=value, version=version))
        return True

    def install_payload(self, payload: TransactionPayload) -> None:
        """Install every write of a committed payload (see :meth:`install`)."""
        for obj, value in sorted(payload.write_set):
            self.install(obj, value, payload.commit_version)

    def apply_payload(self, payload: TransactionPayload) -> None:
        """Install the writes of a committed transaction at its commit version.

        Versions are installed in order; out-of-order application of an older
        commit version than the object's latest is rejected because the TCS
        guarantees committed transactions admit a serial order consistent
        with their certification.
        """
        for obj, value in sorted(payload.write_set):
            versions = self._history.setdefault(obj, [])
            if versions and versions[-1].version >= payload.commit_version:
                raise ValueError(
                    f"out-of-order application for {obj!r}: "
                    f"{payload.commit_version} after {versions[-1].version}"
                )
            versions.append(VersionedValue(value=value, version=payload.commit_version))
        self.applied_payloads.append(payload)

    def __len__(self) -> int:
        return len(self._history)
