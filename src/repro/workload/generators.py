"""Workload generators for the benchmark harness.

All generators are deterministic given a seed and produce
:class:`TransactionSpec` values — abstract descriptions of the keys a
transaction reads and writes — which the store's optimistic executor turns
into certification payloads against the current committed state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TransactionSpec:
    """Abstract transaction: keys read and key/value pairs written."""

    reads: Tuple[str, ...]
    writes: Tuple[Tuple[str, object], ...]
    label: str = ""

    def body(self) -> Callable:
        """Build an executor body that performs these operations."""

        def run(ctx):
            for key in self.reads:
                ctx.read(key)
            for key, value in self.writes:
                ctx.write(key, value)
            return self.label

        return run


class UniformKeyGenerator:
    """Keys drawn uniformly from ``key-0 .. key-(n-1)``."""

    def __init__(self, num_keys: int, seed: int = 0, prefix: str = "key") -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        self.num_keys = num_keys
        self.prefix = prefix
        self.rng = random.Random(seed)

    def key(self) -> str:
        return f"{self.prefix}-{self.rng.randrange(self.num_keys)}"

    def keys(self, count: int) -> List[str]:
        """``count`` distinct keys (or as many as the key space allows)."""
        chosen: List[str] = []
        seen = set()
        attempts = 0
        while len(chosen) < min(count, self.num_keys) and attempts < 50 * count:
            key = self.key()
            attempts += 1
            if key not in seen:
                seen.add(key)
                chosen.append(key)
        return chosen


class ZipfianKeyGenerator:
    """Zipfian-skewed key access (higher ``theta`` = more contention)."""

    def __init__(
        self, num_keys: int, theta: float = 0.9, seed: int = 0, prefix: str = "key"
    ) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.num_keys = num_keys
        self.theta = theta
        self.prefix = prefix
        self.rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(num_keys)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def key(self) -> str:
        target = self.rng.random()
        low, high = 0, self.num_keys - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return f"{self.prefix}-{low}"

    def keys(self, count: int) -> List[str]:
        chosen: List[str] = []
        seen = set()
        attempts = 0
        while len(chosen) < min(count, self.num_keys) and attempts < 50 * count + 100:
            key = self.key()
            attempts += 1
            if key not in seen:
                seen.add(key)
                chosen.append(key)
        return chosen


class ReadWriteWorkload:
    """YCSB-style transactions: read ``reads_per_txn`` keys, update a subset.

    ``read_ratio`` mixes in read-only transactions (YCSB-B/C style): each
    draw is read-only with that probability, and a read-only transaction
    reads a *single* key (a point lookup), which keeps it single-shard and
    therefore eligible for the snapshot-read fast path.  At the default
    ``read_ratio=0.0`` no ratio draw happens at all, so the RNG stream — and
    with it every existing history digest — is unchanged.
    """

    def __init__(
        self,
        key_generator,
        reads_per_txn: int = 3,
        writes_per_txn: int = 1,
        seed: int = 0,
        read_ratio: float = 0.0,
    ) -> None:
        if writes_per_txn > reads_per_txn:
            raise ValueError("writes_per_txn must not exceed reads_per_txn")
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        self.keys = key_generator
        self.reads_per_txn = reads_per_txn
        self.writes_per_txn = writes_per_txn
        self.read_ratio = read_ratio
        self.rng = random.Random(seed)
        self._counter = 0

    def next(self) -> TransactionSpec:
        self._counter += 1
        if self.read_ratio > 0.0 and self.rng.random() < self.read_ratio:
            key = self.keys.keys(1)[0]
            return TransactionSpec(reads=(key,), writes=(), label=f"ro-{self._counter}")
        keys = self.keys.keys(self.reads_per_txn)
        written = keys[: self.writes_per_txn]
        writes = tuple((key, f"v{self._counter}") for key in written)
        return TransactionSpec(reads=tuple(keys), writes=writes, label=f"rw-{self._counter}")

    def batch(self, count: int) -> List[TransactionSpec]:
        return [self.next() for _ in range(count)]


class ClosedLoopDriver:
    """Closed-loop client sessions with think times over a transactional store.

    Models ``sessions`` interactive clients: each keeps exactly one
    transaction in flight, and after its decision *thinks* for an
    exponentially distributed virtual time (mean ``think_time`` message
    delays) before submitting the next body from the shared queue.  All
    pacing runs on the simulation clock via the cluster's scheduler, so runs
    are deterministic in the seed; contrast with the default batch driver,
    which applies open pressure in fixed-size certification waves.

    ``store`` is any :class:`repro.store.executor.TransactionalStore`-shaped
    object (``submit_async`` plus a ``cluster`` exposing ``scheduler`` and
    ``run``).
    """

    def __init__(
        self,
        store,
        bodies: Sequence[Callable],
        sessions: int = 1,
        think_time: float = 0.0,
        seed: int = 0,
    ) -> None:
        if sessions < 1:
            raise ValueError("need at least one closed-loop session")
        if think_time < 0:
            raise ValueError("think_time must be >= 0")
        self.store = store
        self.bodies = list(bodies)
        self.sessions = sessions
        self.think_time = think_time
        self.rng = random.Random(seed)
        self.completed = 0
        self._next = 0

    def _think(self) -> float:
        if self.think_time <= 0:
            return 0.0
        return self.rng.expovariate(1.0 / self.think_time)

    def _submit_next(self) -> None:
        if self._next >= len(self.bodies):
            return
        body = self.bodies[self._next]
        self._next += 1
        self.store.submit_async(body, on_decided=self._on_decided)

    def _on_decided(self, outcome) -> None:
        self.completed += 1
        scheduler = self.store.cluster.scheduler
        think = self._think()
        if think > 0:
            scheduler.schedule_at(scheduler.now + think, self._submit_next)
        else:
            self._submit_next()

    def run(self, max_events: int = 1_000_000) -> int:
        """Prime the sessions and run the simulation to completion; returns
        the number of transactions decided."""
        for _ in range(min(self.sessions, len(self.bodies))):
            self._submit_next()
        self.store.cluster.run(max_events=max_events)
        return self.completed


class BankWorkload:
    """Balance transfers between accounts (read two accounts, write both)."""

    def __init__(
        self,
        num_accounts: int = 16,
        initial_balance: int = 100,
        seed: int = 0,
        hot_fraction: float = 0.0,
    ) -> None:
        if num_accounts < 2:
            raise ValueError("need at least two accounts")
        self.num_accounts = num_accounts
        self.initial_balance = initial_balance
        self.hot_fraction = hot_fraction
        self.rng = random.Random(seed)
        self._counter = 0

    def account(self, index: int) -> str:
        return f"account-{index}"

    def initial_state(self) -> Dict[str, int]:
        return {self.account(i): self.initial_balance for i in range(self.num_accounts)}

    def _pick_account(self) -> int:
        if self.hot_fraction and self.rng.random() < self.hot_fraction:
            return 0
        return self.rng.randrange(self.num_accounts)

    def next_transfer(self, amount: Optional[int] = None) -> Callable:
        """An executor body moving ``amount`` between two random accounts."""
        self._counter += 1
        src = self._pick_account()
        dst = self._pick_account()
        while dst == src:
            dst = self.rng.randrange(self.num_accounts)
        amount = amount if amount is not None else self.rng.randint(1, 10)

        def transfer(ctx):
            source_balance = ctx.read(self.account(src)) or 0
            target_balance = ctx.read(self.account(dst)) or 0
            moved = min(amount, source_balance)
            ctx.write(self.account(src), source_balance - moved)
            ctx.write(self.account(dst), target_balance + moved)
            return moved

        return transfer

    def batch(self, count: int) -> List[Callable]:
        return [self.next_transfer() for _ in range(count)]

    def total_balance(self, store) -> int:
        return sum(
            store.value_of(self.account(i)) or 0 for i in range(self.num_accounts)
        )
