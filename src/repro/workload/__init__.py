"""Synthetic workload generators.

The paper reports no experimental workloads (it is a theory paper) and
FaRM's production traces are proprietary, so the benchmark harness drives
the protocols with synthetic workloads that exercise the same code paths
with tunable contention and shard spans:

* :class:`UniformKeyGenerator` / :class:`ZipfianKeyGenerator` — key-access
  skew;
* :class:`ReadWriteWorkload` — YCSB-style read/write transactions with a
  configurable multi-shard span;
* :class:`BankWorkload` — the classic balance-transfer workload used by the
  examples and the contention benchmarks.
"""

from repro.workload.generators import (
    UniformKeyGenerator,
    ZipfianKeyGenerator,
    TransactionSpec,
    ReadWriteWorkload,
    BankWorkload,
)

__all__ = [
    "UniformKeyGenerator",
    "ZipfianKeyGenerator",
    "TransactionSpec",
    "ReadWriteWorkload",
    "BankWorkload",
]
