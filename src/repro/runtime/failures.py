"""Declarative failure injection.

Benchmarks and integration tests describe crash schedules declaratively
(*crash process X at virtual time T*, or *crash X as soon as predicate P
holds*) and the :class:`FailureInjector` arms them on the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.runtime.network import Network


@dataclass(frozen=True)
class CrashPlan:
    """A single planned crash.

    ``at_time`` crashes at an absolute virtual time; ``when`` (if given)
    crashes the first time the predicate holds at a plan-evaluation point.
    Exactly one of the two must be provided.
    """

    pid: str
    at_time: Optional[float] = None
    when: Optional[Callable[[], bool]] = None

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.when is None):
            raise ValueError("exactly one of at_time / when must be set")


class FailureInjector:
    """Arms :class:`CrashPlan` instances against a network."""

    def __init__(self, network: Network, poll_interval: float = 0.5) -> None:
        self.network = network
        self.poll_interval = poll_interval
        self.executed: List[str] = []
        self._conditional: List[CrashPlan] = []
        self._polling = False

    def crash_now(self, pid: str) -> None:
        """Crash the process immediately."""
        self.network.crash(pid)
        self.executed.append(pid)

    def arm(self, plan: CrashPlan) -> None:
        """Arm a crash plan."""
        if plan.at_time is not None:
            self.network.scheduler.schedule_at(plan.at_time, self.crash_now, plan.pid)
        else:
            self._conditional.append(plan)
            self._ensure_polling()

    def arm_all(self, plans) -> None:
        for plan in plans:
            self.arm(plan)

    def _ensure_polling(self) -> None:
        if not self._polling:
            self._polling = True
            self.network.scheduler.schedule(self.poll_interval, self._poll)

    def _poll(self) -> None:
        remaining: List[CrashPlan] = []
        for plan in self._conditional:
            if plan.when is not None and plan.when():
                self.crash_now(plan.pid)
            else:
                remaining.append(plan)
        self._conditional = remaining
        if self._conditional:
            self.network.scheduler.schedule(self.poll_interval, self._poll)
        else:
            self._polling = False
