"""Actor-style processes with crash-stop failures.

Every protocol role in the reproduction (shard replica, transaction
coordinator/client, configuration service, Paxos acceptor, ...) is a
:class:`Process`.  A process reacts to delivered messages by dispatching to
``on_<message-type>`` handler methods, mirroring the "when received ..."
clauses of the paper's pseudocode.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.runtime.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.network import Network


_CAMEL_RE = re.compile(r"(?<!^)(?=[A-Z])")


def handler_name(message: Any) -> str:
    """Map a message class name to its handler method name.

    ``PrepareAck`` -> ``on_prepare_ack``; ``PROBE`` style names are not used,
    message classes are CamelCase dataclasses.
    """
    return "on_" + _CAMEL_RE.sub("_", type(message).__name__).lower()


class Process:
    """Base class for simulated processes.

    Subclasses implement ``on_<message>`` methods for every message type they
    handle.  Unhandled messages raise, which surfaces protocol wiring bugs
    immediately in tests.
    """

    def __init__(self, pid: str) -> None:
        self.pid = pid
        self.crashed = False
        self.network: Optional["Network"] = None
        self.rdma = None  # type: ignore[assignment]  # set by RdmaManager.install

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        self.network = network
        self.on_attach()

    def on_attach(self) -> None:
        """Hook called once the process is registered with a network."""

    @property
    def scheduler(self):
        assert self.network is not None, f"{self.pid} is not attached to a network"
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.scheduler.now

    # ------------------------------------------------------------------
    # sending and timers
    # ------------------------------------------------------------------
    def send(self, dst: str, message: Any, weak: bool = False) -> None:
        """Send a message over the reliable FIFO network.

        ``weak`` marks background traffic (heartbeats) whose deliveries must
        not keep the simulation alive; see :meth:`Network.send`.
        """
        if self.crashed:
            return
        assert self.network is not None
        self.network.send(self.pid, dst, message, weak=weak)

    def send_all(self, dsts: Iterable[str], message: Any, weak: bool = False) -> None:
        """Send the same message to every destination (excluding none).

        Deliveries that land at the same virtual time share one scheduler
        event (see :meth:`Network.send_many`), so prefer this over a manual
        send loop for fan-outs.
        """
        if self.crashed:
            return
        assert self.network is not None
        self.network.send_many(self.pid, dsts, message, weak=weak)

    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a local callback; it is suppressed if the process crashed."""

        def fire() -> None:
            if not self.crashed:
                fn(*args)

        return self.scheduler.schedule(delay, fire)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def deliver(self, message: Any, sender: str) -> None:
        """Entry point used by the network; dispatches to handlers."""
        if self.crashed:
            return
        # RDMA traffic is handled by the NIC-level manager without involving
        # the "CPU" (i.e. regardless of protocol state); see runtime.rdma.
        if self.rdma is not None and self.rdma.intercept(message, sender):
            return
        self.handle(message, sender)

    def handle(self, message: Any, sender: str) -> None:
        """Dispatch a message to its ``on_<type>`` handler."""
        method = getattr(self, handler_name(message), None)
        if method is None:
            raise NotImplementedError(
                f"{type(self).__name__}({self.pid}) has no handler for "
                f"{type(message).__name__}"
            )
        method(message, sender)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop this process."""
        self.crashed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.pid} {status}>"
