"""Reliable FIFO point-to-point network.

The paper's system model (Section 3) assumes that "processes are connected
by reliable FIFO channels: messages are delivered in FIFO order, and
messages between non-faulty processes are guaranteed to be eventually
delivered".  :class:`Network` provides exactly that on top of the
discrete-event scheduler, plus the instrumentation used by the benchmark
harness (per-process and per-type message counters) and controlled fault
injection (crashes, partitions, per-channel blocking).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Set, Tuple, TYPE_CHECKING

from repro.runtime.events import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.process import Process


class LatencyModel:
    """Strategy object deciding the one-way delay of each message."""

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        raise NotImplementedError


class UnitLatency(LatencyModel):
    """Every message takes exactly one time unit.

    With this model, the virtual time elapsed between a request and the
    corresponding response equals the number of message delays on the
    critical path — the unit the paper uses for its latency claims.
    """

    def __init__(self, unit: float = 1.0) -> None:
        self.unit = unit

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return self.unit


class UniformLatency(LatencyModel):
    """Message delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class MessageStats:
    """Message accounting used by the leader-load and cost experiments."""

    sent_by_process: Counter = field(default_factory=Counter)
    received_by_process: Counter = field(default_factory=Counter)
    sent_by_type: Counter = field(default_factory=Counter)
    sent_by_process_and_type: Counter = field(default_factory=Counter)
    received_by_process_and_type: Counter = field(default_factory=Counter)
    dropped: int = 0
    total_sent: int = 0
    total_delivered: int = 0

    def record_send(self, src: str, message: Any) -> None:
        name = type(message).__name__
        self.total_sent += 1
        self.sent_by_process[src] += 1
        self.sent_by_type[name] += 1
        self.sent_by_process_and_type[(src, name)] += 1

    def record_delivery(self, dst: str, message: Any) -> None:
        name = type(message).__name__
        self.total_delivered += 1
        self.received_by_process[dst] += 1
        self.received_by_process_and_type[(dst, name)] += 1

    def handled_by(self, pid: str) -> int:
        """Total messages sent plus received by process ``pid``."""
        return self.sent_by_process[pid] + self.received_by_process[pid]


class Network:
    """Simulated network of reliable FIFO channels.

    Channels between live, non-partitioned processes deliver every message
    exactly once, in FIFO order per (source, destination) pair.  Messages to
    crashed or partitioned destinations are silently dropped, which models
    the asynchronous crash-stop setting: senders cannot distinguish a slow
    process from a failed one.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.latency = latency or UnitLatency()
        self.rng = random.Random(seed)
        self.processes: Dict[str, "Process"] = {}
        self.stats = MessageStats()
        self.trace: list[Tuple[float, str, str, Any]] = []
        self.trace_enabled = False
        self._channel_clock: Dict[Tuple[str, str], float] = {}
        self._blocked: Set[Tuple[str, str]] = set()
        self._extra_delay: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> None:
        """Attach a process to the network (and to the scheduler)."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)

    def process(self, pid: str) -> "Process":
        return self.processes[pid]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash(self, pid: str) -> None:
        """Crash-stop the process: it stops sending and receiving forever."""
        self.processes[pid].crashed = True

    def is_crashed(self, pid: str) -> bool:
        return self.processes[pid].crashed

    def block(self, src: str, dst: str) -> None:
        """Drop all future messages on the directed channel ``src -> dst``."""
        self._blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Block every channel between the two groups, in both directions."""
        group_a, group_b = list(group_a), list(group_b)
        for a in group_a:
            for b in group_b:
                self.block(a, b)
                self.block(b, a)

    def heal(self) -> None:
        """Remove all channel blocks."""
        self._blocked.clear()

    def add_extra_delay(self, src: str, dst: str, delay: float) -> None:
        """Add a fixed extra delay to the directed channel ``src -> dst``.

        Unlike :meth:`block`, messages are still delivered (eventually), so
        this models an asynchronous network being slow on one link — the tool
        the adversarial schedules (e.g. the Figure 4a counter-example) use.
        """
        if delay < 0:
            raise ValueError("extra delay must be non-negative")
        self._extra_delay[(src, dst)] = delay

    def clear_extra_delays(self) -> None:
        self._extra_delay.clear()

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------
    def _enqueue(self, src: str, dst: str, message: Any) -> Optional[float]:
        """Account for one send and compute its delivery time.

        Returns None when the message is dropped (unknown destination or
        blocked channel); the caller is responsible for scheduling the
        delivery event(s).
        """
        self.stats.record_send(src, message)
        if dst not in self.processes:
            self.stats.dropped += 1
            return None
        if (src, dst) in self._blocked:
            self.stats.dropped += 1
            return None
        delay = self.latency.delay(src, dst, message, self.rng)
        delay += self._extra_delay.get((src, dst), 0.0)
        deliver_at = self.scheduler.now + delay
        # FIFO: never deliver earlier than the previous message on the same
        # channel.  Ties in delivery time are broken by scheduling order,
        # which is send order, so FIFO is preserved.
        last = self._channel_clock.get((src, dst), 0.0)
        deliver_at = max(deliver_at, last)
        self._channel_clock[(src, dst)] = deliver_at
        return deliver_at

    def send(self, src: str, dst: str, message: Any) -> None:
        """Send ``message`` from ``src`` to ``dst`` over the FIFO channel."""
        if src in self.processes and self.processes[src].crashed:
            return
        deliver_at = self._enqueue(src, dst, message)
        if deliver_at is not None:
            self.scheduler.schedule_at(deliver_at, self._deliver, src, dst, message)

    def send_many(self, src: str, dsts: Iterable[str], message: Any) -> None:
        """Multicast ``message`` to every destination, batching deliveries.

        Destinations whose messages arrive at the same virtual time share a
        single scheduler event instead of one heap entry each, which cuts
        heap churn substantially for fan-out-heavy protocols (with the
        deterministic unit-latency model, almost every fan-out batches).

        The observable delivery order is identical to calling :meth:`send`
        in a loop: within one ``send_many`` call no other event can be
        scheduled between the individual sends, so deliveries sharing a
        timestamp would have fired back-to-back in send order anyway.
        """
        if src in self.processes and self.processes[src].crashed:
            return
        batches: Dict[float, list] = {}
        for dst in dsts:
            deliver_at = self._enqueue(src, dst, message)
            if deliver_at is None:
                continue
            group = batches.get(deliver_at)
            if group is None:
                group = batches[deliver_at] = []
                # dict preserves insertion order; schedule one event per
                # distinct delivery time, carrying the (mutable) group so
                # destinations found later in this call still join it.
                self.scheduler.schedule_at(deliver_at, self._deliver_batch, src, group, message)
            group.append(dst)

    def _deliver_batch(self, src: str, dsts: list, message: Any) -> None:
        for dst in dsts:
            self._deliver(src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        process = self.processes.get(dst)
        if process is None or process.crashed:
            self.stats.dropped += 1
            return
        if (src, dst) in self._blocked:
            self.stats.dropped += 1
            return
        self.stats.record_delivery(dst, message)
        if self.trace_enabled:
            self.trace.append((self.scheduler.now, src, dst, message))
        process.deliver(message, src)
