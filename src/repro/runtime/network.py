"""Reliable FIFO point-to-point network.

The paper's system model (Section 3) assumes that "processes are connected
by reliable FIFO channels: messages are delivered in FIFO order, and
messages between non-faulty processes are guaranteed to be eventually
delivered".  :class:`Network` provides exactly that on top of the
discrete-event scheduler, plus the instrumentation used by the benchmark
harness (per-process and per-type message counters) and controlled fault
injection (crashes, partitions, per-channel blocking).
"""

from __future__ import annotations

import math
import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Mapping, Optional, Set, Tuple, TYPE_CHECKING

from repro.runtime.events import Scheduler
from repro.runtime.wire import wire_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.process import Process


class LatencyModel:
    """Strategy object deciding the one-way delay of each message."""

    #: True when ``delay`` never consults the RNG.  Only deterministic
    #: models are eligible for the grouped (parallel-DES) engine: a shared
    #: RNG drawn in per-group execution order would diverge from the serial
    #: draw order and break byte-identical replay.
    deterministic = False

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        raise NotImplementedError

    def min_delay(self, src: str, dst: str) -> float:
        """A lower bound on ``delay`` for the directed link ``src -> dst``.

        The grouped engine's lookahead window is the minimum ``min_delay``
        over all cross-group links: no message sent inside a window can be
        delivered inside it, so groups may advance independently up to the
        barrier.  Models with unbounded-below delays return 0.0, which
        yields a zero lookahead and disqualifies them from grouped runs.
        """
        return 0.0


class UnitLatency(LatencyModel):
    """Every message takes exactly one time unit.

    With this model, the virtual time elapsed between a request and the
    corresponding response equals the number of message delays on the
    critical path — the unit the paper uses for its latency claims.
    """

    deterministic = True

    def __init__(self, unit: float = 1.0) -> None:
        self.unit = unit

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return self.unit

    def min_delay(self, src: str, dst: str) -> float:
        return self.unit


class UniformLatency(LatencyModel):
    """Message delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def min_delay(self, src: str, dst: str) -> float:
        return self.low


class LognormalLatency(LatencyModel):
    """Heavy-tailed delays: log-normal with the given *mean* and shape.

    Parameterised by the distribution mean (in message delays) rather than
    the underlying normal's location, so sweeping ``sigma`` at a fixed
    ``mean`` changes only the tail weight, not the average network cost:
    ``mu = ln(mean) - sigma^2 / 2``.
    """

    def __init__(self, mean: float = 1.0, sigma: float = 0.5) -> None:
        if mean <= 0:
            raise ValueError("lognormal mean must be positive")
        if sigma <= 0:
            raise ValueError("lognormal sigma must be positive")
        self.mean = mean
        self.sigma = sigma
        self._mu = math.log(mean) - sigma * sigma / 2.0

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)


class ExponentialLatency(LatencyModel):
    """Memoryless delays with the given mean (M/M-style network)."""

    def __init__(self, mean: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        self.mean = mean

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class JitteredLatency(LatencyModel):
    """Wrap a base model with additive uniform jitter in ``[0, jitter]``."""

    def __init__(self, base: LatencyModel, jitter: float) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.base = base
        self.jitter = jitter

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        return self.base.delay(src, dst, message, rng) + rng.uniform(0.0, self.jitter)

    def min_delay(self, src: str, dst: str) -> float:
        return self.base.min_delay(src, dst)


class RegionLatency(LatencyModel):
    """WAN topology: cheap intra-region links, per-pair inter-region delays.

    Each process lives in a named region; messages within a region take
    ``intra`` delays, messages between regions take the delay of the
    directed region pair from ``inter``.  Processes not covered by the
    ``placement`` mapping are assigned deterministically from their pid
    (see :meth:`region_of`), so the same topology applies to any cluster
    layout without enumerating every process up front.
    """

    def __init__(
        self,
        regions: Tuple[str, ...],
        intra: float = 1.0,
        inter: Optional[Mapping[Tuple[str, str], float]] = None,
        placement: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not regions:
            raise ValueError("region latency needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValueError("region names must be unique")
        if intra < 0:
            raise ValueError("intra-region delay must be non-negative")
        self.regions = tuple(regions)
        self.intra = intra
        self.inter: Dict[Tuple[str, str], float] = dict(inter or {})
        for (a, b), value in self.inter.items():
            if a not in self.regions or b not in self.regions:
                raise ValueError(f"inter-region link ({a!r}, {b!r}) names an unknown region")
            if value < 0:
                raise ValueError("inter-region delay must be non-negative")
        for a in self.regions:
            for b in self.regions:
                if a != b and (a, b) not in self.inter:
                    raise ValueError(f"missing inter-region delay for {a!r} -> {b!r}")
        for pid, region in (placement or {}).items():
            if region not in self.regions:
                raise ValueError(f"placement of {pid!r} names unknown region {region!r}")
        # Placement cache, pre-seeded with the explicit overrides.
        self._region_of: Dict[str, str] = dict(placement or {})

    def region_of(self, pid: str) -> str:
        """The region hosting ``pid``.

        Defaults, for pids not pinned by ``placement``: a shard replica
        ``shard-i/r2`` is placed by its replica index (``regions[2 % n]``),
        so every shard spans the regions — the geo-replicated deployment the
        WAN scenarios model; numbered singletons such as ``client-0`` are
        spread round-robin; everything else (``config-service``) lives in
        the first region.
        """
        region = self._region_of.get(pid)
        if region is None:
            region = self.regions[self._default_index(pid) % len(self.regions)]
            self._region_of[pid] = region
        return region

    @staticmethod
    def _default_index(pid: str) -> int:
        _, sep, member = pid.partition("/")
        tail = member if sep else pid.rpartition("-")[2]
        digits = "".join(ch for ch in tail if ch.isdigit())
        return int(digits) if digits else 0

    deterministic = True

    def delay(self, src: str, dst: str, message: Any, rng: random.Random) -> float:
        src_region = self.region_of(src)
        dst_region = self.region_of(dst)
        if src_region == dst_region:
            return self.intra
        return self.inter[(src_region, dst_region)]

    def min_delay(self, src: str, dst: str) -> float:
        src_region = self.region_of(src)
        dst_region = self.region_of(dst)
        if src_region == dst_region:
            return self.intra
        return self.inter[(src_region, dst_region)]


@dataclass(frozen=True)
class LinkSpec:
    """Per-link bandwidth and serialization cost (the queueing model).

    With a LinkSpec installed, every message additionally pays a
    *serialization time* of ``overhead + wire_size(message) / bandwidth``
    on its directed channel, and channels become FIFO *queues*: a message
    cannot start serializing before the previous message on the same
    channel has finished.  Delivery time becomes::

        propagation delay  (the latency model, plus per-channel extras)
      + queue wait         (time spent behind earlier messages on the link)
      + serialization time (overhead + bytes / bandwidth)

    Queueing and serialization only ever *add* delay on top of the
    propagation term, so the grouped engine's lookahead bound
    (:meth:`Network.min_cross_group_delay`, derived from propagation
    minima alone) remains a valid lower bound.

    ``bandwidth`` is in bytes per delay unit; ``bandwidth == 0`` disables
    the model entirely (messages are never sized, the pre-link behaviour).
    ``overhead`` is a fixed per-message serialization cost in delay units —
    the knob that makes batching pay: a batch serializes its summed bytes
    but only one overhead.
    """

    bandwidth: float = 0.0
    overhead: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.bandwidth > 0


@dataclass
class MessageStats:
    """Message accounting used by the leader-load and cost experiments."""

    sent_by_process: Counter = field(default_factory=Counter)
    received_by_process: Counter = field(default_factory=Counter)
    sent_by_type: Counter = field(default_factory=Counter)
    sent_by_process_and_type: Counter = field(default_factory=Counter)
    received_by_process_and_type: Counter = field(default_factory=Counter)
    dropped: int = 0
    total_sent: int = 0
    total_delivered: int = 0
    # Bytes accounting: populated only when a LinkSpec sizes messages
    # (``size`` is None on the pure-delay path, keeping it cost-free).
    bytes_sent: float = 0.0
    bytes_by_type: Counter = field(default_factory=Counter)

    def record_send(self, src: str, message: Any, size: Optional[float] = None) -> None:
        name = type(message).__name__
        self.total_sent += 1
        self.sent_by_process[src] += 1
        self.sent_by_type[name] += 1
        self.sent_by_process_and_type[(src, name)] += 1
        if size is not None:
            self.bytes_sent += size
            self.bytes_by_type[name] += size

    def record_delivery(self, dst: str, message: Any) -> None:
        name = type(message).__name__
        self.total_delivered += 1
        self.received_by_process[dst] += 1
        self.received_by_process_and_type[(dst, name)] += 1

    def handled_by(self, pid: str) -> int:
        """Total messages sent plus received by process ``pid``."""
        return self.sent_by_process[pid] + self.received_by_process[pid]


class Network:
    """Simulated network of reliable FIFO channels.

    Channels between live, non-partitioned processes deliver every message
    exactly once, in FIFO order per (source, destination) pair.  Messages to
    crashed or partitioned destinations are silently dropped, which models
    the asynchronous crash-stop setting: senders cannot distinguish a slow
    process from a failed one.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        link: Optional[LinkSpec] = None,
    ) -> None:
        self.scheduler = scheduler
        self.latency = latency or UnitLatency()
        self.rng = random.Random(seed)
        self.processes: Dict[str, "Process"] = {}
        self.stats = MessageStats()
        self.trace: list[Tuple[float, str, str, Any]] = []
        self.trace_enabled = False
        self.link = link
        self._link_enabled = link is not None and link.enabled
        # Link-queue accounting (populated only with an enabled LinkSpec):
        # queue waits in send order, total serialization time, and the
        # high-water per-channel queue depth.  Depth is derived from
        # *virtual* times (deliver_at values still in the future at send
        # time), never from event-execution order, so it is identical on
        # the serial and grouped engines.
        self.queue_wait_samples: list[float] = []
        self._link_serializations: list[float] = []
        self.link_max_depth: int = 0
        self._link_pending: Dict[Tuple[str, str], Deque[float]] = {}
        self._channel_clock: Dict[Tuple[str, str], float] = {}
        self._blocked: Set[Tuple[str, str]] = set()
        self._extra_delay: Dict[Tuple[str, str], float] = {}
        # Destination-process -> group index, installed by the grouped
        # (parallel-DES) engine.  When set, deliveries are routed through
        # ``scheduler.schedule_delivery`` so each lands in its destination
        # group's heap.  None on the serial engine (the common case).
        self._group_of: Optional[Dict[str, int]] = None

    @property
    def link_busy_time(self) -> float:
        """Total serialization time charged on the link.  ``math.fsum`` is
        correctly rounded whatever the summand order, so the value is
        byte-identical across the serial and grouped engines even though
        they execute sends in different wall orders."""
        return math.fsum(self._link_serializations)

    def install_groups(self, group_of: Dict[str, int]) -> None:
        """Route deliveries by destination group (grouped engine only)."""
        self._group_of = dict(group_of)

    def min_cross_group_delay(self, group_of: Dict[str, int]) -> float:
        """The lookahead bound: minimum ``min_delay`` over all directed
        process pairs whose endpoints live in different groups (including
        per-channel extra delays, which only ever add latency).

        A :class:`LinkSpec` does not tighten this bound: queue wait and
        serialization time are *added on top of* the propagation delay in
        :meth:`_enqueue`, so every delivery still lands at or beyond
        ``now + min_delay`` — the propagation minimum stays a valid
        lookahead lower bound (asserted by the grouped scheduler in debug
        runs)."""
        bound = math.inf
        pids = list(self.processes)
        for src in pids:
            for dst in pids:
                if src == dst or group_of.get(src) == group_of.get(dst):
                    continue
                link = self.latency.min_delay(src, dst)
                link += self._extra_delay.get((src, dst), 0.0)
                bound = min(bound, link)
        return 0.0 if math.isinf(bound) else bound

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> None:
        """Attach a process to the network (and to the scheduler)."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)

    def process(self, pid: str) -> "Process":
        return self.processes[pid]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash(self, pid: str) -> None:
        """Crash-stop the process: it stops sending and receiving forever."""
        self.processes[pid].crashed = True

    def is_crashed(self, pid: str) -> bool:
        return self.processes[pid].crashed

    def block(self, src: str, dst: str) -> None:
        """Drop all future messages on the directed channel ``src -> dst``."""
        self._blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Block every channel between the two groups, in both directions."""
        group_a, group_b = list(group_a), list(group_b)
        for a in group_a:
            for b in group_b:
                self.block(a, b)
                self.block(b, a)

    def heal(self) -> None:
        """Remove all channel blocks."""
        self._blocked.clear()

    def add_extra_delay(self, src: str, dst: str, delay: float) -> None:
        """Add a fixed extra delay to the directed channel ``src -> dst``.

        Unlike :meth:`block`, messages are still delivered (eventually), so
        this models an asynchronous network being slow on one link — the tool
        the adversarial schedules (e.g. the Figure 4a counter-example) use.
        """
        if delay < 0:
            raise ValueError("extra delay must be non-negative")
        self._extra_delay[(src, dst)] = delay

    def clear_extra_delays(self) -> None:
        self._extra_delay.clear()

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------
    def _enqueue(self, src: str, dst: str, message: Any) -> Optional[float]:
        """Account for one send and compute its delivery time.

        Returns None when the message is dropped (unknown destination or
        blocked channel); the caller is responsible for scheduling the
        delivery event(s).
        """
        # Messages are only sized under an enabled LinkSpec: the pure-delay
        # path never consults wire_size, so foreign message types (tests,
        # ad-hoc probes) stay legal there and the default schedule is
        # byte-for-byte what it was before the bandwidth model existed.
        size = wire_size(message) if self._link_enabled else None
        self.stats.record_send(src, message, size=size)
        if dst not in self.processes:
            self.stats.dropped += 1
            return None
        if (src, dst) in self._blocked:
            self.stats.dropped += 1
            return None
        delay = self.latency.delay(src, dst, message, self.rng)
        delay += self._extra_delay.get((src, dst), 0.0)
        arrival = self.scheduler.now + delay
        # FIFO: never deliver earlier than the previous message on the same
        # channel.  Ties in delivery time are broken by scheduling order,
        # which is send order, so FIFO is preserved.
        last = self._channel_clock.get((src, dst), 0.0)
        if size is None:
            deliver_at = max(arrival, last)
        else:
            # Queueing model: serialization starts once the message has
            # propagated *and* the channel has finished the previous
            # message; the channel is then busy for overhead + bytes/bw.
            link = self.link
            start = arrival if arrival > last else last
            serialization = link.overhead + size / link.bandwidth
            deliver_at = start + serialization
            self.queue_wait_samples.append(start - arrival)
            self._link_serializations.append(serialization)
            # Queue depth at this send: in-flight messages on the channel
            # (deliver_at still in the future) plus this one.  Channel
            # clocks are monotone, so the deque stays sorted and pruning
            # from the left is exact.
            pending = self._link_pending.get((src, dst))
            if pending is None:
                pending = self._link_pending[(src, dst)] = deque()
            now = self.scheduler.now
            while pending and pending[0] <= now:
                pending.popleft()
            pending.append(deliver_at)
            if len(pending) > self.link_max_depth:
                self.link_max_depth = len(pending)
        self._channel_clock[(src, dst)] = deliver_at
        return deliver_at

    def send(self, src: str, dst: str, message: Any, weak: bool = False) -> None:
        """Send ``message`` from ``src`` to ``dst`` over the FIFO channel.

        ``weak`` marks background traffic (heartbeats): the delivery fires
        normally while strong work is pending but does not keep the
        simulation alive on its own — without it, a link slower than the
        heartbeat interval would leave one delivery permanently in flight
        and run-to-quiescence would never terminate.
        """
        if src in self.processes and self.processes[src].crashed:
            return
        deliver_at = self._enqueue(src, dst, message)
        if deliver_at is None:
            return
        if self._group_of is None:
            if weak:
                self.scheduler.schedule_weak_at(deliver_at, self._deliver, src, dst, message)
            else:
                self.scheduler.schedule_at(deliver_at, self._deliver, src, dst, message)
        else:
            self.scheduler.schedule_delivery(
                deliver_at, self._group_of[dst], self._deliver, src, dst, message,
                weak=weak,
            )

    def send_many(self, src: str, dsts: Iterable[str], message: Any, weak: bool = False) -> None:
        """Multicast ``message`` to every destination, batching deliveries.

        Destinations whose messages arrive at the same virtual time share a
        single scheduler event instead of one heap entry each, which cuts
        heap churn substantially for fan-out-heavy protocols (with the
        deterministic unit-latency model, almost every fan-out batches).

        The observable delivery order is identical to calling :meth:`send`
        in a loop: within one ``send_many`` call no other event can be
        scheduled between the individual sends, so deliveries sharing a
        timestamp would have fired back-to-back in send order anyway.
        """
        if src in self.processes and self.processes[src].crashed:
            return
        if self._group_of is not None:
            self._send_many_grouped(src, dsts, message, weak)
            return
        batches: Dict[float, list] = {}
        for dst in dsts:
            deliver_at = self._enqueue(src, dst, message)
            if deliver_at is None:
                continue
            group = batches.get(deliver_at)
            if group is None:
                group = batches[deliver_at] = []
                # dict preserves insertion order; schedule one event per
                # distinct delivery time, carrying the (mutable) group so
                # destinations found later in this call still join it.
                if weak:
                    self.scheduler.schedule_weak_at(
                        deliver_at, self._deliver_batch, src, group, message
                    )
                else:
                    self.scheduler.schedule_at(
                        deliver_at, self._deliver_batch, src, group, message
                    )
            group.append(dst)

    def _send_many_grouped(
        self, src: str, dsts: Iterable[str], message: Any, weak: bool = False
    ) -> None:
        """Multicast under the grouped engine.

        Batches split per (delivery time, destination group) so each
        fragment can be routed to its group's scheduler independently.  The
        serial engine fires exactly one event per distinct delivery time, so
        only the first fragment of each time carries event weight; the rest
        are zero-weight, keeping ``events_fired`` byte-identical.  Delivery
        order is unaffected: the fragments of one delivery time receive
        consecutive order tags (they are effects of the same creating
        event), so they fire back-to-back in send order, and within a
        fragment the destination list keeps send order.
        """
        batches: Dict[Tuple[float, int], list] = {}
        seen_times: Set[float] = set()
        for dst in dsts:
            deliver_at = self._enqueue(src, dst, message)
            if deliver_at is None:
                continue
            key = (deliver_at, self._group_of[dst])
            group = batches.get(key)
            if group is None:
                group = batches[key] = []
                weight = 1 if deliver_at not in seen_times else 0
                seen_times.add(deliver_at)
                self.scheduler.schedule_delivery(
                    deliver_at, key[1], self._deliver_batch, src, group, message,
                    weight=weight, weak=weak,
                )
            group.append(dst)

    def _deliver_batch(self, src: str, dsts: list, message: Any) -> None:
        for dst in dsts:
            self._deliver(src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        process = self.processes.get(dst)
        if process is None or process.crashed:
            self.stats.dropped += 1
            return
        if (src, dst) in self._blocked:
            self.stats.dropped += 1
            return
        self.stats.record_delivery(dst, message)
        if self.trace_enabled:
            self.trace.append((self.scheduler.now, src, dst, message))
        process.deliver(message, src)
