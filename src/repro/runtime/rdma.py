"""Simulated one-sided RDMA communication primitive (Section 5).

The paper assumes an RDMA primitive with the following interface:

* ``send-rdma(m, pj)`` — reliably write message ``m`` into a memory region
  of ``pj`` without involving ``pj``'s CPU;
* ``ack-rdma(m, pj)`` — the sender is acknowledged by the *receiver's NIC*
  once the message has reached the receiver's memory, again without CPU
  involvement; after the ack, the receiver is guaranteed to eventually
  deliver ``m`` even if the sender crashes;
* ``deliver-rdma(m, pj)`` — the receiver's application is notified later,
  when it polls its circular buffers;
* ``open(pi)`` / ``close(pi)`` — grant / revoke ``pi``'s access to the
  caller's memory; after ``close`` completes, ``pi`` can no longer
  send-rdma to the caller;
* ``flush()`` — block until every message already acked by the caller's NIC
  has been delivered to the caller's application.

We do not have RDMA NICs, so we simulate the primitive: each process owns an
:class:`RdmaManager` holding per-sender bounded circular buffers.  Incoming
``RdmaWrite`` frames are handled at NIC level — i.e. *before* and
*independently of* the process's protocol state — which reproduces the
property the Figure 4a counter-example depends on: a process cannot refuse
an RDMA write from a sender it has not closed, even if it has moved to a
newer epoch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.runtime.process import Process


@dataclass(frozen=True)
class RdmaWrite:
    """NIC-level frame carrying an application message to remote memory."""

    write_id: int
    payload: Any


@dataclass(frozen=True)
class RdmaAck:
    """NIC-level acknowledgement that a write reached remote memory."""

    write_id: int


@dataclass
class _PendingDelivery:
    payload: Any
    sender: str
    delivered: bool = False


class RdmaManager:
    """Per-process RDMA endpoint: buffers, access control and NIC acks.

    Install on a process with :meth:`install`; afterwards the process can use
    :meth:`send`, :meth:`open`, :meth:`close`, :meth:`multiclose` and
    :meth:`flush`, mirroring the primitive of Section 5.
    """

    def __init__(
        self,
        process: Process,
        buffer_capacity: int = 4096,
        poll_delay: float = 0.0,
    ) -> None:
        self.process = process
        self.buffer_capacity = buffer_capacity
        self.poll_delay = poll_delay
        # Senders currently granted access to our memory.
        self.access_granted: Set[str] = set()
        # Per-sender circular buffers of messages acked but not yet polled.
        self.buffers: Dict[str, Deque[_PendingDelivery]] = {}
        # Outstanding writes issued by *this* process, keyed by write id.
        self._next_write_id = 0
        self._on_ack: Dict[int, Tuple[str, Any, Callable[[Any, str], None]]] = {}
        self.writes_sent = 0
        self.writes_acked = 0
        self.writes_rejected_remotely = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    @classmethod
    def install(cls, process: Process, **kwargs: Any) -> "RdmaManager":
        manager = cls(process, **kwargs)
        process.rdma = manager
        return manager

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        message: Any,
        on_ack: Optional[Callable[[Any, str], None]] = None,
    ) -> int:
        """send-rdma: write ``message`` into ``dst``'s memory.

        ``on_ack(message, dst)`` fires when the remote NIC acknowledges the
        write (ack-rdma).  If the destination has closed the connection the
        write is silently lost and no ack ever arrives.
        """
        write_id = self._next_write_id
        self._next_write_id += 1
        self.writes_sent += 1
        if on_ack is not None:
            self._on_ack[write_id] = (dst, message, on_ack)
        self.process.send(dst, RdmaWrite(write_id=write_id, payload=message))
        return write_id

    # ------------------------------------------------------------------
    # receiver side (NIC level)
    # ------------------------------------------------------------------
    def open(self, peer: str) -> None:
        """Grant ``peer`` access to this process's memory region."""
        self.access_granted.add(peer)
        self.buffers.setdefault(peer, deque())

    def close(self, peer: str) -> None:
        """Revoke ``peer``'s access; subsequent writes from it are rejected."""
        self.access_granted.discard(peer)

    def multiclose(self, peers) -> None:
        """Close a set of connections (Figure 8, lines 163-166)."""
        for peer in list(peers):
            self.close(peer)

    @property
    def connections(self) -> Set[str]:
        """Peers currently granted access (the ``connections`` variable)."""
        return set(self.access_granted)

    def flush(self) -> None:
        """Deliver every message already acked by our NIC (Figure 8, line 142)."""
        for sender, buffer in self.buffers.items():
            while buffer:
                pending = buffer.popleft()
                if pending.delivered:
                    continue
                pending.delivered = True
                self.process.handle(pending.payload, pending.sender)

    # ------------------------------------------------------------------
    # interception of NIC-level frames
    # ------------------------------------------------------------------
    def intercept(self, message: Any, sender: str) -> bool:
        """Handle NIC-level frames; return True if the frame was consumed."""
        if isinstance(message, RdmaWrite):
            self._on_write(message, sender)
            return True
        if isinstance(message, RdmaAck):
            self._on_remote_ack(message, sender)
            return True
        return False

    def _on_write(self, frame: RdmaWrite, sender: str) -> None:
        if sender not in self.access_granted:
            # Access revoked (or never granted): the write bounces and the
            # sender never receives an ack for it.
            self.writes_rejected_remotely += 1
            return
        buffer = self.buffers.setdefault(sender, deque())
        if len(buffer) >= self.buffer_capacity:
            # Full circular buffer: the sender cannot make progress until the
            # receiver polls; modelled as a silently dropped (unacked) write.
            self.writes_rejected_remotely += 1
            return
        pending = _PendingDelivery(payload=frame.payload, sender=sender)
        buffer.append(pending)
        # NIC acks without involving our CPU.
        self.process.network.send(self.process.pid, sender, RdmaAck(frame.write_id))
        # The application is notified later, when it polls the buffer.
        self.process.scheduler.schedule(self.poll_delay, self._poll_one, pending)

    def _poll_one(self, pending: _PendingDelivery) -> None:
        if pending.delivered or self.process.crashed:
            return
        pending.delivered = True
        self.process.handle(pending.payload, pending.sender)

    def _on_remote_ack(self, ack: RdmaAck, sender: str) -> None:
        self.writes_acked += 1
        entry = self._on_ack.pop(ack.write_id, None)
        if entry is None:
            return
        dst, message, callback = entry
        callback(message, dst)
