"""Simulation runtime substrate.

The paper assumes an asynchronous message-passing system of crash-stop
processes connected by reliable FIFO channels (Section 3), optionally
extended with RDMA (Section 5).  This package provides that substrate as a
deterministic discrete-event simulation:

* :mod:`repro.runtime.events` — the virtual-time event scheduler;
* :mod:`repro.runtime.network` — reliable FIFO point-to-point channels with
  pluggable latency models, partitions and message accounting;
* :mod:`repro.runtime.process` — the actor-style process model with
  crash-stop failures and timers;
* :mod:`repro.runtime.rdma` — the one-sided RDMA communication primitive
  (send-rdma / ack-rdma / deliver-rdma / open / close / flush);
* :mod:`repro.runtime.failures` — declarative failure plans.
"""

from repro.runtime.events import Scheduler, Event
from repro.runtime.network import (
    Network,
    LatencyModel,
    UnitLatency,
    UniformLatency,
    MessageStats,
)
from repro.runtime.process import Process
from repro.runtime.rdma import RdmaManager, RdmaWrite, RdmaAck
from repro.runtime.failures import CrashPlan, FailureInjector

__all__ = [
    "Scheduler",
    "Event",
    "Network",
    "LatencyModel",
    "UnitLatency",
    "UniformLatency",
    "MessageStats",
    "Process",
    "RdmaManager",
    "RdmaWrite",
    "RdmaAck",
    "CrashPlan",
    "FailureInjector",
]
