"""Deterministic discrete-event scheduler.

All protocol code runs on virtual time managed by :class:`Scheduler`.
Events scheduled for the same virtual time fire in the order they were
scheduled, which, combined with seeded randomness in the latency models,
makes every simulation run fully reproducible.

The scheduler is the innermost loop of every simulation, so its operations
are kept O(log n) or better: a live-event counter makes :attr:`idle` and
:attr:`pending` O(1) (no queue scans), cancelled events are compacted away
lazily once they dominate the heap, and :meth:`run_until` supports periodic
predicate evaluation for callers whose predicates are not O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


# Compact the heap only when it is mostly garbage and large enough for the
# rebuild to pay for itself.
_COMPACT_MIN_CANCELLED = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing counter so that ties in virtual time are broken by
    scheduling order.
    """

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    scheduler: Optional["Scheduler"] = field(compare=False, default=None, repr=False)
    # How much the event counts towards `events_fired`.  Always 1 in the
    # serial engine; the grouped engine splits multicast delivery batches
    # per destination group and zero-weights the fragments after the first,
    # so event counts stay byte-identical to a serial run.
    weight: int = field(compare=False, default=1)
    # Weak events never keep the simulation alive: `run`/`run_until` stop
    # once only weak events remain queued.  Background periodic activity
    # (heartbeat ticks) is scheduled weak so a recurring timer cannot turn
    # run-to-quiescence into an infinite loop.
    weak: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self.scheduler is not None:
                self.scheduler._note_cancelled(self)


class Scheduler:
    """A virtual-time event loop.

    The scheduler is the only source of time in the simulation.  Processes
    never block; they schedule callbacks (message deliveries, timers) and
    the scheduler fires them in timestamp order.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._live = 0  # queued events that are not cancelled
        self._live_weak = 0  # live events that are weak (background ticks)
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = Event(time=time, seq=self._allocate_seq(), fn=fn, args=args, scheduler=self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_weak(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a *weak* (background) event ``delay`` units from now.

        Weak events fire like any other while strong work is pending, but
        they do not count towards quiescence: ``run``/``run_until`` stop as
        soon as only weak events remain, leaving them queued.  They resume
        if strong work returns (queued weak events always sit at or beyond
        the current time, so time never rewinds).  A weak event that
        re-schedules itself weakly is the deterministic recurring-timer
        idiom — e.g. heartbeat ticks.
        """
        return self.schedule_weak_at(self._now + delay, fn, *args)

    def schedule_weak_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Absolute-time variant of :meth:`schedule_weak` (the form network
        deliveries use): background *traffic* — heartbeats in flight — must
        be weak like the ticks that emit it, or a link slower than the
        heartbeat interval keeps one delivery permanently pending and the
        pump can never go quiescent."""
        event = self.schedule_at(time, fn, *args)
        event.weak = True
        self._live_weak += 1
        return event

    def _allocate_seq(self) -> int:
        """The tie-breaking sequence number for the next scheduled event.

        Creation order: the serial engine's ``(time, seq)`` fire order is
        the reference the grouped (parallel-DES) engine reproduces — there,
        the ``seq`` slot carries a nested *order tag* encoding the same
        creation order (see :mod:`repro.runtime.parallel`), and events are
        built by the engine rather than through this counter.
        """
        seq = self._seq
        self._seq += 1
        return seq

    def _note_cancelled(self, event: Event) -> None:
        """Called by :meth:`Event.cancel`; keeps the live counts exact and
        compacts the heap once cancelled entries dominate it."""
        self._live -= 1
        if event.weak:
            self._live_weak -= 1
        cancelled = len(self._queue) - self._live
        if cancelled >= _COMPACT_MIN_CANCELLED and cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)

    @property
    def pending(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return self._live

    @property
    def strong_pending(self) -> int:
        """Live queued events that count towards quiescence (non-weak)."""
        return self._live - self._live_weak

    @property
    def idle(self) -> bool:
        """True when no live events remain."""
        return self._live == 0

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            if event.weak:
                self._live_weak -= 1
            # Detach so a later cancel() of the fired event (a common
            # defensive pattern for timeout timers) cannot double-decrement
            # the live counter.
            event.scheduler = None
            self._now = event.time
            self.events_fired += event.weight
            event.fn(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """The virtual time of the next live event, or None when drained.

        Discards cancelled heap heads as a side effect (same as stepping
        would).  This is the barrier primitive of the grouped engine: the
        controller computes each lookahead window from the minimum peek
        across all group schedulers.
        """
        event = self._next_live()
        return event.time if event is not None else None

    def _next_live(self) -> Optional[Event]:
        """The next event that will fire, discarding cancelled heap heads."""
        while self._queue:
            event = self._queue[0]
            if not event.cancelled:
                return event
            heapq.heappop(self._queue)
        return None

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, ``max_time`` passes or ``max_events`` fire.

        Returns the number of events fired by this call.
        """
        fired = 0
        while True:
            if self._live_weak and self.strong_pending == 0:
                # Only weak (background) events remain: the simulation is
                # quiescent.  Leave them queued — they resume if strong
                # work returns.
                break
            event = self._next_live()
            if event is None:
                break
            if max_time is not None and event.time > max_time:
                break
            if max_events is not None and fired >= max_events:
                break
            if self.step():
                fired += 1
        if max_time is not None and self._now < max_time and not self._queue:
            # Advance time to the requested horizon even if we ran dry, so
            # that callers can reason about elapsed virtual time.
            self._now = max_time
        return fired

    def call_at_instant_end(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the *current* virtual time, behind every
        event already queued for it.

        Events are ordered by ``(time, seq)`` and ``seq`` grows
        monotonically, so a zero-delay event scheduled now fires only after
        all deliveries that were already queued for this instant have
        drained — the primitive behind the batching layer's adaptive
        flush-on-idle policy.
        """
        return self.schedule(0.0, fn, *args)

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: int = 1_000_000,
        check_interval: int = 1,
    ) -> bool:
        """Run until ``predicate()`` becomes true.

        ``check_interval`` controls how often the predicate is evaluated:
        with the default of 1 it is checked before every event (exactly the
        historical behaviour); a larger interval amortises expensive
        predicates over batches of events, at the cost of firing up to
        ``check_interval - 1`` events past the satisfaction point.

        Returns True if the predicate was satisfied, False if the simulation
        ran out of events or budget first.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        fired = 0
        while not predicate():
            for _ in range(check_interval):
                if self._live_weak and self.strong_pending == 0:
                    # Quiescent modulo background (weak) events.
                    return predicate()
                if max_time is not None:
                    head = self._next_live()
                    if head is not None and head.time > max_time:
                        return False
                if fired >= max_events:
                    return False
                if not self.step():
                    return predicate()
                fired += 1
        return True


class FlushTimer:
    """A re-armable one-shot deadline, built for batching flush schedules.

    A batcher arms the timer when the first message of a batch is queued and
    cancels it when the batch flushes early (size cap reached).  ``arm`` is
    idempotent while the timer is pending, so callers can arm on every
    enqueue without tracking whether a deadline is already outstanding; the
    deadline that sticks is the one set by the batch's *first* message,
    which is exactly the linger semantics.
    """

    __slots__ = ("_scheduler", "_event")

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None

    def arm(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` from now unless already pending.

        A zero delay lands the callback at the end of the current instant
        (see :meth:`Scheduler.call_at_instant_end`).
        """
        if self._event is not None:
            return

        def fire() -> None:
            self._event = None
            fn(*args)

        if delay == 0.0:
            self._event = self._scheduler.call_at_instant_end(fire)
        else:
            self._event = self._scheduler.schedule(delay, fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
