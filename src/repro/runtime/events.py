"""Deterministic discrete-event scheduler.

All protocol code runs on virtual time managed by :class:`Scheduler`.
Events scheduled for the same virtual time fire in the order they were
scheduled, which, combined with seeded randomness in the latency models,
makes every simulation run fully reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing counter so that ties in virtual time are broken by
    scheduling order.
    """

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing when its time comes."""
        self.cancelled = True


class Scheduler:
    """A virtual-time event loop.

    The scheduler is the only source of time in the simulation.  Processes
    never block; they schedule callbacks (message deliveries, timers) and
    the scheduler fires them in timestamp order.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = Event(time=time, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when no live events remain."""
        return not any(not e.cancelled for e in self._queue)

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_fired += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, ``max_time`` passes or ``max_events`` fire.

        Returns the number of events fired by this call.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if max_time is not None and event.time > max_time:
                break
            if max_events is not None and fired >= max_events:
                break
            if self.step():
                fired += 1
        if max_time is not None and self._now < max_time and not self._queue:
            # Advance time to the requested horizon even if we ran dry, so
            # that callers can reason about elapsed virtual time.
            self._now = max_time
        return fired

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> bool:
        """Run until ``predicate()`` becomes true.

        Returns True if the predicate was satisfied, False if the simulation
        ran out of events or budget first.
        """
        fired = 0
        while not predicate():
            if max_time is not None and self._queue and self._queue[0].time > max_time:
                return False
            if fired >= max_events:
                return False
            if not self.step():
                return predicate()
            fired += 1
        return True
