"""Bytes-on-wire accounting for every simulated message type.

The bandwidth-aware link model (:class:`repro.runtime.network.LinkSpec`)
charges each message a serialization time proportional to its wire size.
This module owns that size: :func:`wire_size` maps a message instance to a
deterministic byte count built from a fixed per-message header plus a
recursive estimate of its payload fields.

Two properties matter more than the absolute byte values:

* **batches cost the sum of their parts plus one header** — a
  ``CertifyBatch`` of 32 ``Prepare`` messages carries the same payload
  bytes as 32 individual sends but saves 31 headers (and, on the link, 31
  per-message overheads), so batch-size sweeps show a real
  latency/throughput knee instead of batching being free;
* **unregistered message types fail loudly** — ``wire_size`` raises
  :class:`TypeError` for a top-level message class nobody registered, so a
  newly added protocol message breaks the unit-test battery instead of
  silently costing 0 bytes on the wire.

The registry is built lazily on first use: this module imports only the
standard library at import time so ``runtime.network`` can depend on it
without creating a cycle with the protocol modules (which themselves
import the runtime).
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Callable, Dict, Tuple

# Fixed per-message envelope: type tag, source/destination addressing and
# framing.  Charged once per top-level message and once per nested
# sub-message inside a batch.
HEADER_BYTES = 20.0

# Cost of one scalar field (numbers, enum tags, per-container length
# prefixes).  Strings and byte strings cost their length instead.
SCALAR_BYTES = 8.0

_SIZERS: Dict[type, Callable[[Any], float]] = {}
_REGISTERED = False


def _field_size(value: Any) -> float:
    """Recursive size of one payload field (no header)."""
    if value is None:
        return 0.0
    if isinstance(value, Enum):
        return SCALAR_BYTES
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return SCALAR_BYTES
    if isinstance(value, (str, bytes)):
        return float(len(value))
    if isinstance(value, dict):
        return SCALAR_BYTES + sum(
            _field_size(k) + _field_size(v) for k, v in value.items()
        )
    if isinstance(value, (tuple, list, set, frozenset)):
        return SCALAR_BYTES + sum(_field_size(item) for item in value)
    if dataclasses.is_dataclass(value):
        return SCALAR_BYTES + sum(
            _field_size(getattr(value, f.name)) for f in dataclasses.fields(value)
        )
    if hasattr(value, "__dict__"):
        return SCALAR_BYTES + sum(_field_size(v) for v in vars(value).values())
    # Opaque sentinel objects (e.g. BOTTOM) cost one scalar.
    return SCALAR_BYTES


def _flat_sizer(message: Any) -> float:
    """Header plus the recursive size of every dataclass field."""
    return HEADER_BYTES + sum(
        _field_size(getattr(message, f.name)) for f in dataclasses.fields(message)
    )


def _batch_sizer(attr: str) -> Callable[[Any], float]:
    """Batch wrappers cost one header plus the *payload* bytes of every
    element — coalescing saves the per-element headers (and, on the link,
    the per-message serialization overhead), never payload bytes."""

    def sizer(message: Any) -> float:
        payloads = sum(
            wire_size(part) - HEADER_BYTES for part in getattr(message, attr)
        )
        return HEADER_BYTES + payloads

    return sizer


def _register(cls: type, sizer: Callable[[Any], float] = _flat_sizer) -> None:
    _SIZERS[cls] = sizer


def _ensure_registered() -> None:
    """Build the registry on first use (imports the protocol modules)."""
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True

    from repro.core import messages as core
    from repro.rdma import messages as rdma
    from repro.baselines import paxos, twopc
    from repro.runtime import rdma as rdma_runtime

    # --- core message-passing protocol ---------------------------------
    for cls in (
        core.CertifyRequest,
        core.TxnDecision,
        core.ReadRequest,
        core.ReadReply,
        core.CsLeaseRequest,
        core.CsLeaseGrant,
        core.Heartbeat,
        core.SuspicionReport,
        core.CsViewChange,
        core.Prepare,
        core.PrepareAck,
        core.Accept,
        core.AcceptAck,
        core.SlotDecision,
        core.Probe,
        core.ProbeAck,
        core.NewConfig,
        core.NewState,
        core.ConfigChange,
        core.CsGetLast,
        core.CsGet,
        core.CsCompareAndSwap,
        core.CsReply,
    ):
        _register(cls)
    _register(core.CertifyRequestBatch, _batch_sizer("requests"))
    _register(core.TxnDecisionBatch, _batch_sizer("decisions"))
    _register(core.CertifyBatch, _batch_sizer("prepares"))
    _register(core.VoteBatch, _batch_sizer("acks"))
    _register(core.AcceptBatch, _batch_sizer("accepts"))
    _register(core.AcceptAckBatch, _batch_sizer("acks"))
    _register(core.DecisionBatch, _batch_sizer("decisions"))

    # --- RDMA protocol (distinct classes from core's same-named ones) ---
    for cls in (
        rdma.Accept,
        rdma.SlotDecision,
        rdma.ConfigPrepare,
        rdma.ConfigPrepareAck,
        rdma.NewConfig,
        rdma.NewState,
        rdma.Connect,
        rdma.ConnectAck,
    ):
        _register(cls)
    _register(rdma.AcceptBatch, _batch_sizer("accepts"))
    _register(rdma.DecisionBatch, _batch_sizer("decisions"))

    # NIC-level frames: an RdmaWrite carries a full protocol message as
    # its payload, so it costs a frame header plus that message's size.
    def _rdma_write_sizer(frame: Any) -> float:
        return HEADER_BYTES + SCALAR_BYTES + wire_size(frame.payload)

    _register(rdma_runtime.RdmaWrite, _rdma_write_sizer)
    _register(rdma_runtime.RdmaAck)

    # --- 2PC-over-Paxos baseline ---------------------------------------
    for cls in (
        paxos.RsmCommand,
        paxos.RsmResponse,
        paxos.Phase1a,
        paxos.Phase1b,
        paxos.Phase2a,
        paxos.Phase2b,
        paxos.Chosen,
        paxos.ForwardedCommand,
        twopc.PrepareCommand,
        twopc.DecideCommand,
    ):
        _register(cls)
    _register(twopc.CommandBatch, _batch_sizer("commands"))


def is_registered(cls: type) -> bool:
    """True when ``cls`` has an explicit wire-size entry (exact type, not
    via inheritance — every new message class must be registered itself)."""
    _ensure_registered()
    return cls in _SIZERS


def wire_size(message: Any) -> float:
    """Deterministic byte size of ``message`` on the wire.

    Raises :class:`TypeError` for an unregistered top-level message type:
    the unit-test battery enumerates every message module, so forgetting to
    register a new type is a test failure, not a free message.
    """
    _ensure_registered()
    sizer = _SIZERS.get(type(message))
    if sizer is None:
        raise TypeError(
            f"no wire size registered for message type "
            f"{type(message).__module__}.{type(message).__qualname__}; "
            "register it in repro.runtime.wire"
        )
    return sizer(message)
