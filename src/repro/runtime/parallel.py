"""Multi-core simulation: process fan-out and conservative parallel DES.

Two independent tiers, matching the two ways the workload is parallel:

**Tier A — :class:`ParallelExecutor`.**  Whole simulation runs (sweep grid
points, scenario packs, benchmark repetitions) are embarrassingly parallel:
each is a pure function of its spec.  The executor fans tasks out over a
spawn-based process pool and returns results in *input* order (never
completion order), so merged output is deterministic and diffable.  Worker
failures surface as :class:`WorkerError` carrying the child's formatted
traceback instead of a hang or an opaque ``BrokenProcessPool``.

**Tier B — :class:`GroupedScheduler`.**  Within one run, replicas partition
into weakly-coupled shard groups.  Each group owns a private event heap; a
controller advances all groups window by window, where a window is
``[T, T + lookahead)`` with ``T`` the global minimum event time and the
lookahead the minimum cross-group network delay (the classic conservative
time-barrier design; see the ``ClusterScheduler`` controller-loop exemplar
in SNIPPETS.md: independent clusters advance, the controller blocks the
fastest until the laggards catch up).  No message sent inside a window can
cross a group boundary inside it, so groups cannot affect each other until
the next barrier, and each group's window slice can be processed
independently of the others.

Byte-identical replay — the order-tag design.  The serial engine fires
events in ``(time, seq)`` order, where the integer ``seq`` records creation
order.  A grouped run fires events in a different *wall* order (group by
group within each window), so integer creation counters would diverge.
Instead, every grouped event gets an *order tag* in the ``seq`` slot — a
nested tuple encoding its creation lineage:

* a callback scheduled from driver context before anything fired (fault
  arming, workload priming) gets ``(0, j)`` with ``j`` the call counter;
* the ``k``-th effect of firing event ``E`` gets
  ``(1, (E.time, E.seq), k)``;
* a driver-context call after a mid-run stop continues the effect run of
  the last fired event (that is exactly the serial creation point:
  ``run_until`` stops at the satisfying event, so serially everything up
  to it has fired and nothing after it has).

Lexicographic order on ``(time, tag)`` then *equals* serial ``(time, seq)``
order by induction on lineage depth: events fire in creation order at each
instant, and effects order by (creator firing order, per-creator counter) —
the nested creator tag compares recursively before the counter can.  Each
per-group heap therefore pops its events in exactly the serial engine's
per-group order, whatever order groups execute in, and the recorded
history is byte-identical.  There is no barrier merge bookkeeping at all:
cross-group effects are inserted into the destination heap at creation,
correctly tagged — the lookahead windows only ensure no group has already
advanced past an effect another group may still send it.

Only deterministic latency models qualify: a random model would consume the
shared network RNG in per-group execution order and diverge from the serial
draw order.  :meth:`GroupedScheduler.install` enforces both that and a
strictly positive lookahead.
"""

from __future__ import annotations

import heapq
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.events import Event, Scheduler


# ----------------------------------------------------------------------
# Tier A: multiprocess run executor
# ----------------------------------------------------------------------

def derive_seed(seed: int, index: int) -> int:
    """A per-task seed for repetition ``index`` of a base ``seed``.

    Deterministic, collision-scattered (golden-ratio increment), and stable
    across platforms — repetition 3 gets the same seed whether it runs
    inline, in a pool of 2, or in a pool of 16.
    """
    if index < 0:
        raise ValueError("repetition index must be >= 0")
    return (seed + 0x9E3779B1 * (index + 1)) & 0x7FFF_FFFF


class WorkerError(RuntimeError):
    """A task raised in a worker process.

    The message embeds the child's formatted traceback, so the failure
    reads like a local one instead of a bare ``BrokenProcessPool``.
    """

    def __init__(self, index: int, child_traceback: str) -> None:
        self.index = index
        self.child_traceback = child_traceback
        super().__init__(
            f"parallel task #{index} failed in worker; child traceback:\n"
            f"{child_traceback}"
        )


def _guarded_call(fn: Callable[[Any], Any], item: Any) -> Tuple[bool, Any]:
    """Run one task in the worker; never let an exception cross the pickle
    boundary raw (tracebacks do not survive pickling)."""
    try:
        return True, fn(item)
    except BaseException:
        return False, traceback.format_exc()


def resolve_jobs(jobs: int) -> int:
    """``jobs=0`` means one worker per core; otherwise the value itself."""
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per core)")
    return jobs or (os.cpu_count() or 1)


class ParallelExecutor:
    """A spawn-safe process pool with deterministic result ordering.

    ``map(fn, items)`` runs ``fn`` over ``items`` on ``jobs`` workers and
    returns results in item order.  ``fn`` and every item/result must be
    picklable top-level objects (the pool uses the spawn start method, the
    only one that is fork-safe under threads and identical across
    platforms; the parent's ``sys.path`` propagates to children, so
    ``PYTHONPATH=src`` invocations keep working).  With ``jobs == 1`` tasks
    run inline in this process — no pool, no pickling, exceptions propagate
    natively — which is also the reference ordering the parallel path must
    reproduce.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            return [fn(item) for item in items]
        workers = min(self.jobs, len(items))
        context = get_context("spawn")
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [pool.submit(_guarded_call, fn, item) for item in items]
            results: List[Any] = []
            for index, future in enumerate(futures):
                ok, value = future.result()
                if not ok:
                    for pending in futures[index + 1:]:
                        pending.cancel()
                    raise WorkerError(index, value)
                results.append(value)
        return results


# ----------------------------------------------------------------------
# Tier B: conservative parallel-DES shard groups
# ----------------------------------------------------------------------

#: Routing sentinel for the control scheduler (fault schedule and other
#: driver-context timers).
CONTROL_GROUP = -1


def partition_contiguous(items: Sequence[Any], groups: int) -> Dict[Any, int]:
    """Assign ``items`` to ``groups`` contiguous, balanced blocks.

    ``partition_contiguous(shards, 2)`` keeps shard neighbourhoods intact,
    which matters because intra-shard traffic (leader <-> followers) is the
    dense part of the communication graph and should stay intra-group.
    """
    if groups < 1:
        raise ValueError("need at least one group")
    if groups > len(items):
        raise ValueError(
            f"cannot partition {len(items)} item(s) into {groups} groups"
        )
    return {
        item: index * groups // len(items)
        for index, item in enumerate(items)
    }


class _GroupScheduler(Scheduler):
    """One group's private event heap inside a :class:`GroupedScheduler`.

    Identical to the serial scheduler except that firing an event publishes
    it as the engine's execution context (the source of effect order tags)
    and keeps the engine's global clock in sync.
    """

    def __init__(self, engine: "GroupedScheduler", index: int) -> None:
        super().__init__()
        self._engine = engine
        self._index = index

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            if event.weak:
                self._live_weak -= 1
            event.scheduler = None
            self._now = event.time
            self.events_fired += event.weight
            engine = self._engine
            engine._executing = (self._index, event)
            engine._effect_counter = 0
            try:
                event.fn(*event.args)
            finally:
                engine._executing = None
                engine._last_fired = event
                if event.time > engine._now:
                    engine._now = event.time
            return True
        return False


class GroupedScheduler:
    """The conservative parallel-DES engine (drop-in for :class:`Scheduler`).

    Drives ``num_groups`` group schedulers plus a control scheduler (the
    armed fault schedule) through lookahead windows; see the module
    docstring for the design and the order-tag serial-equivalence argument.
    The public surface mirrors :class:`Scheduler` — ``now`` / ``schedule``
    / ``schedule_at`` / ``call_at_instant_end`` / ``run`` / ``run_until``
    / ``step`` / ``pending`` / ``idle`` / ``events_fired`` — so clusters,
    runners and drivers work unchanged on either engine.
    """

    def __init__(self, num_groups: int) -> None:
        if num_groups < 2:
            raise ValueError("grouped execution needs at least two groups")
        self.num_groups = num_groups
        self._control = _GroupScheduler(self, CONTROL_GROUP)
        self._groups: List[_GroupScheduler] = [
            _GroupScheduler(self, index) for index in range(num_groups)
        ]
        self._now = 0.0
        self._lookahead = 0.0
        self._installed = False
        # (group index, firing event) while an event executes, else None —
        # the lineage context new order tags derive from.
        self._executing: Optional[Tuple[int, Event]] = None
        self._effect_counter = 0
        # The most recently fired event: driver-context effects continue
        # its effect run (the effect counter is deliberately not reset
        # between the event and those calls), because that is where the
        # serial engine's creation point sits — after every event fired so
        # far, before every event still to fire.
        self._last_fired: Optional[Event] = None
        self._driver_counter = 0
        # Current window: [start, end, slot] with slot in CONTROL_GROUP..G-1,
        # or None between windows.
        self._window: Optional[List] = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, network, group_of: Dict[str, int]) -> None:
        """Bind the engine to a built network and process partition.

        Validates the two eligibility rules (deterministic latency model,
        strictly positive cross-group lookahead), derives the lookahead
        bound, and routes the network's deliveries through the engine.
        """
        if self._installed:
            raise RuntimeError("grouped scheduler is already installed")
        if not getattr(network.latency, "deterministic", False):
            raise ValueError(
                "parallel-shards requires a deterministic latency model "
                "(unit, fixed or regions without jitter): random per-message "
                "draws would leave the serial RNG order"
            )
        unknown = set(group_of.values()) - set(range(self.num_groups))
        if unknown:
            raise ValueError(f"partition names unknown groups: {sorted(unknown)}")
        lookahead = network.min_cross_group_delay(group_of)
        if lookahead <= 0.0:
            raise ValueError(
                "parallel-shards requires a strictly positive minimum "
                "cross-group delay (the lookahead window would be empty)"
            )
        self._lookahead = lookahead
        network.install_groups(group_of)
        self._installed = True

    @property
    def lookahead(self) -> float:
        return self._lookahead

    # ------------------------------------------------------------------
    # Scheduler surface: time and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._executing is not None:
            index, _ = self._executing
            sub = self._control if index == CONTROL_GROUP else self._groups[index]
            return sub.now
        return self._now

    @property
    def pending(self) -> int:
        return self._control.pending + sum(g.pending for g in self._groups)

    @property
    def strong_pending(self) -> int:
        return self._control.strong_pending + sum(
            g.strong_pending for g in self._groups
        )

    @property
    def _weak_pending(self) -> int:
        return self.pending - self.strong_pending

    @property
    def idle(self) -> bool:
        return self.pending == 0

    @property
    def events_fired(self) -> int:
        return self._control.events_fired + sum(g.events_fired for g in self._groups)

    # ------------------------------------------------------------------
    # order tags
    # ------------------------------------------------------------------
    def _next_tag(self) -> Tuple:
        """The order tag for the event being created right now.

        See the module docstring: ``(0, j)`` for pre-run driver calls,
        ``(1, (creator.time, creator.tag), k)`` for effects of a fired
        event — with driver calls after a stop continuing the last fired
        event's effect run.
        """
        if self._executing is not None:
            _, parent = self._executing
        else:
            parent = self._last_fired
        if parent is None:
            tag = (0, self._driver_counter)
            self._driver_counter += 1
            return tag
        tag = (1, (parent.time, parent.seq), self._effect_counter)
        self._effect_counter += 1
        return tag

    # ------------------------------------------------------------------
    # Scheduler surface: scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a local timer (or a driver-context callback).

        Timers set while a group event executes belong to that event's
        group (process state is group-local); driver- and control-context
        timers go to the control scheduler, which only fires at window
        starts — fault injections mutate cross-group state in place, so
        they must execute when every group has caught up to their time.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if self._executing is not None and self._executing[0] != CONTROL_GROUP:
            target = self._groups[self._executing[0]]
        else:
            target = self._control
        return self._insert(target, time, fn, args, 1)

    def schedule_weak(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a weak (background) event; see the serial engine.

        The stop-on-weak-only decision depends only on the global count of
        pending strong events — a pure function of the set of events fired
        so far, which the grouped engine replays exactly — so both engines
        stop at equivalent points and fire the same total event set.
        """
        event = self.schedule(delay, fn, *args)
        event.weak = True
        sub = event.scheduler
        assert isinstance(sub, _GroupScheduler)
        sub._live_weak += 1
        return event

    def call_at_instant_end(self, fn: Callable[..., Any], *args: Any) -> Event:
        return self.schedule(0.0, fn, *args)

    def schedule_delivery(
        self,
        time: float,
        group: int,
        fn: Callable[..., Any],
        *args: Any,
        weight: int = 1,
        weak: bool = False,
    ) -> Event:
        """Schedule a network delivery owned by destination ``group``.

        The network routes every delivery through here once installed.
        Cross-group deliveries land at or beyond the current window's end
        (the lookahead bound), so inserting them immediately is safe: the
        destination group cannot have advanced past them.  ``weak`` marks
        background traffic (heartbeats) that must not keep the run alive.
        """
        if __debug__ and self._executing is not None and self._window is not None:
            sender = self._executing[0]
            if sender != CONTROL_GROUP and sender != group:
                # The conservative-parallel correctness invariant: a delivery
                # crossing group boundaries may never land inside the current
                # window, or the destination group could already have fired
                # past it.  Queueing and serialization delays only ever ADD
                # to propagation, so an enabled LinkSpec cannot break this.
                assert time >= self._window[1], (
                    f"cross-group delivery at t={time} lands before the "
                    f"lookahead bound t={self._window[1]} "
                    f"(window start {self._window[0]}, sender group {sender}, "
                    f"destination group {group})"
                )
        return self._insert(self._groups[group], time, fn, args, weight, weak)

    def _insert(
        self,
        target: _GroupScheduler,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        weight: int,
        weak: bool = False,
    ) -> Event:
        event = Event(
            time=time, seq=self._next_tag(), fn=fn, args=args,
            scheduler=target, weight=weight, weak=weak,
        )
        heapq.heappush(target._queue, event)
        target._live += 1
        if weak:
            target._live_weak += 1
        return event

    # ------------------------------------------------------------------
    # the controller loop
    # ------------------------------------------------------------------
    def _global_min(self) -> Optional[float]:
        times = [t for t in (
            self._control.peek_time(),
            *[group.peek_time() for group in self._groups],
        ) if t is not None]
        return min(times) if times else None

    def _position(self) -> Optional[Tuple[_GroupScheduler, float]]:
        """Advance the cursor to the next fireable event without firing it.

        Idempotent: calling it repeatedly (peeks, budget checks) returns
        the same event until :meth:`step` fires it.  Window transitions
        happen here; within a window, groups run in slot order (control
        first, then group 0..G-1), each draining its events strictly below
        the window end.
        """
        while True:
            if self._window is None:
                start = self._global_min()
                if start is None:
                    return None
                self._window = [start, start + self._lookahead, CONTROL_GROUP]
            start, end, slot = self._window
            # A control event strictly inside the window closes it early:
            # control fires only at window starts (fault injections mutate
            # cross-group state in place), so the event becomes the next
            # window's start instead.
            control_at = self._control.peek_time()
            if control_at is not None and start < control_at < end:
                end = control_at
                self._window[1] = end
            while slot < self.num_groups:
                if slot == CONTROL_GROUP:
                    if control_at is not None and control_at < end:
                        return self._control, control_at
                else:
                    group = self._groups[slot]
                    at = group.peek_time()
                    if at is not None and at < end:
                        self._window[2] = slot
                        return group, at
                slot += 1
                self._window[2] = slot
            self._window = None

    def step(self) -> bool:
        """Fire the next event in grouped order; False when fully drained."""
        position = self._position()
        if position is None:
            return False
        sub, _ = position
        return sub.step()

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next event :meth:`step` would fire."""
        position = self._position()
        return position[1] if position is not None else None

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until drained / ``max_time`` / ``max_events`` (serial parity)."""
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            if self._weak_pending and self.strong_pending == 0:
                # Quiescent modulo background (weak) events; serial parity.
                break
            head = self.peek_time()
            if head is None:
                break
            if max_time is not None and head > max_time:
                break
            if not self.step():
                break
            fired += 1
        if max_time is not None and self._now < max_time and self.peek_time() is None:
            self._now = max_time
        return fired

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: int = 1_000_000,
        check_interval: int = 1,
    ) -> bool:
        """Run until ``predicate()`` holds (same contract as the serial
        engine, including stopping *exactly* at the satisfying event — the
        grouped cursor freezes mid-window and resumes on the next call).

        One caveat: at the stopping point the *set* of already-fired events
        can differ from the serial engine's (a window executes group by
        group, the serial engine interleaves groups by time), so counters
        such as ``events_fired`` agree only once the schedule drains.  The
        observable protocol state — the recorded history, every process's
        view — is nevertheless identical: the events the serial engine
        would have fired by now and this engine has not (or vice versa)
        are exactly the ones with no causal path to the satisfying event.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        fired = 0
        while not predicate():
            for _ in range(check_interval):
                if self._weak_pending and self.strong_pending == 0:
                    return predicate()
                if max_time is not None:
                    head = self.peek_time()
                    if head is not None and head > max_time:
                        return False
                if fired >= max_events:
                    return False
                if not self.step():
                    return predicate()
                fired += 1
        return True
