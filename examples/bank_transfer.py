"""Bank-transfer workload: contention, aborts and money conservation.

A classic exercise for a transaction certification service: concurrent
balance transfers between accounts must never create or destroy money, and
conflicting transfers must be aborted by certification.  The same bank
scenario runs against the message-passing protocol, the RDMA protocol and
the 2PC-over-Paxos baseline through the scenario engine.

Run with:  python examples/bank_transfer.py
"""

from repro import ScenarioRunner, get_scenario


def run_bank(protocol: str, replicas_per_shard: int) -> None:
    spec = get_scenario("bank-transfers").with_overrides(
        protocol=protocol, replicas_per_shard=replicas_per_shard, seed=11
    )
    runner = ScenarioRunner(spec)
    result = runner.run()

    accounts = spec.workload.num_accounts
    expected = accounts * spec.workload.initial_balance
    total = sum(
        runner.store.read(f"account-{i}") or 0 for i in range(accounts)
    )
    print(f"== {protocol} ({replicas_per_shard} replicas/shard) ==")
    print(f"  transactions: {result.txns_submitted}  committed: {result.committed}  "
          f"aborted: {result.aborted}")
    print(f"  total balance: {total} (expected {expected}, conserved: {total == expected})")
    if result.latency is not None:
        print(f"  client latency (delays): mean {result.latency.mean:.2f}  "
              f"p99 {result.latency.p99:.2f}")
    print(f"  history correct: {result.safety_ok}")
    print()
    assert total == expected, "money conservation violated"


def main() -> None:
    run_bank("message-passing", replicas_per_shard=2)
    run_bank("rdma", replicas_per_shard=2)
    run_bank("2pc-paxos", replicas_per_shard=3)


if __name__ == "__main__":
    main()
