"""Bank-transfer workload: contention, aborts and money conservation.

A classic exercise for a transaction certification service: concurrent
balance transfers between accounts must never create or destroy money, and
conflicting transfers must be aborted by certification.  The example runs
the same workload against the message-passing protocol, the RDMA protocol
and the 2PC-over-Paxos baseline and compares abort rates and latencies.

Run with:  python examples/bank_transfer.py
"""

from repro import BankWorkload, BaselineCluster, Cluster, TransactionalStore
from repro.analysis.metrics import summarize


def run_bank(cluster, label: str, rounds: int = 8, batch_size: int = 4) -> None:
    bank = BankWorkload(num_accounts=10, initial_balance=100, seed=7)
    store = TransactionalStore(cluster, initial=bank.initial_state())
    expected_total = bank.total_balance(store.store)

    for _ in range(rounds):
        store.run_batch(bank.batch(batch_size))

    total = bank.total_balance(store.store)
    result, _ = cluster.check()
    latencies = summarize(cluster.client_latencies())
    print(f"== {label} ==")
    print(f"  transactions: {len(store.outcomes)}  committed: {store.committed_count}  "
          f"aborted: {store.aborted_count}")
    print(f"  total balance: {total} (expected {expected_total}, conserved: {total == expected_total})")
    print(f"  client latency (delays): mean {latencies.mean:.2f}  p99 {latencies.p99:.2f}")
    print(f"  history correct: {result.ok}")
    print()


def main() -> None:
    run_bank(Cluster(num_shards=2, replicas_per_shard=2, seed=11), "reconfigurable TCS (message passing)")
    run_bank(Cluster(num_shards=2, replicas_per_shard=2, protocol="rdma", seed=11), "reconfigurable TCS (RDMA)")
    run_bank(BaselineCluster(num_shards=2, failures_tolerated=1, seed=11), "baseline: 2PC over Paxos (2f+1)")


if __name__ == "__main__":
    main()
