"""RDMA versus message passing — and why RDMA needs global reconfiguration.

Part 1 sweeps the same steady-state scenario across the two correct
protocols: both decide in 5 message delays (4 co-located), but the RDMA
variant sends no ACCEPT_ACK messages (followers are persisted by one-sided
writes) and its reconfiguration involves the whole system instead of one
shard.

Part 2 sweeps the Figure 4a counter-example scenario: the *naive*
combination of the RDMA data path with per-shard reconfiguration
externalises two contradictory decisions for the same transaction, which
the TCS checker detects; the fixed protocols survive the same adversarial
schedule.

Run with:  python examples/rdma_vs_message_passing.py
"""

from repro import ScenarioRunner, get_scenario
from repro.analysis.metrics import summarize


def compare_failure_free() -> None:
    print("== part 1: failure-free comparison ==")
    spec = get_scenario("steady-state").with_overrides(seed=3)
    for protocol in ["message-passing", "rdma"]:
        runner = ScenarioRunner(spec.with_overrides(protocol=protocol))
        runner.run()
        latency = summarize(runner.cluster.protocol_latencies())
        stats = runner.cluster.message_stats
        print(f"  {protocol:16s} latency mean {latency.mean:.1f} delays | "
              f"ACCEPT_ACK msgs: {stats.sent_by_type.get('AcceptAck', 0):4d} | "
              f"RDMA writes: {stats.sent_by_type.get('RdmaWrite', 0):4d}")
    print()


def figure_4a(protocol: str) -> None:
    spec = get_scenario("ablation-safety-demo")
    result = ScenarioRunner(
        spec.with_overrides(protocol=protocol, expect_safe=(protocol != "broken-rdma"))
    ).run()
    contradiction = result.contradictions > 0
    print(f"  {protocol:16s} contradictory decisions: {contradiction!s:5s} | "
          f"history correct: {result.check_ok} | expectation met: {result.passed}")


def main() -> None:
    compare_failure_free()
    print("== part 2: the Figure 4a schedule ==")
    for protocol in ["broken-rdma", "message-passing", "rdma"]:
        figure_4a(protocol)
    print("\n  (broken-rdma = RDMA data path + per-shard reconfiguration, the naive combination")
    print("   the paper shows to be unsafe; the fixed protocols survive the same schedule.)")


if __name__ == "__main__":
    main()
