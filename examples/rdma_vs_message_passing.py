"""RDMA versus message passing — and why RDMA needs global reconfiguration.

Part 1 compares the two correct protocols on the same workload: both decide
in 5 message delays (4 co-located), but the RDMA variant sends no
ACCEPT_ACK messages (followers are persisted by one-sided writes) and its
reconfiguration involves the whole system instead of one shard.

Part 2 reproduces the Figure 4a counter-example: the *naive* combination of
the RDMA data path with per-shard reconfiguration externalises two
contradictory decisions for the same transaction, which the TCS checker
detects; the fixed protocols survive the same adversarial schedule.

Run with:  python examples/rdma_vs_message_passing.py
"""

from repro import Cluster, TransactionPayload
from repro.analysis.metrics import summarize


def key_for(cluster, shard, hint="key"):
    for i in range(10_000):
        candidate = f"{hint}-{i}"
        if cluster.scheme.sharding.shard_of(candidate) == shard:
            return candidate
    raise RuntimeError("no key found")


def compare_failure_free() -> None:
    print("== part 1: failure-free comparison ==")
    for protocol in ["message-passing", "rdma"]:
        cluster = Cluster(num_shards=2, replicas_per_shard=2, protocol=protocol, seed=3)
        payloads = [
            TransactionPayload.make(reads=[(f"k{i}", (0, ""))], writes=[(f"k{i}", i)], tiebreak=str(i))
            for i in range(10)
        ]
        cluster.certify_many(payloads)
        cluster.run()
        latency = summarize(cluster.protocol_latencies())
        stats = cluster.message_stats
        print(f"  {protocol:16s} latency mean {latency.mean:.1f} delays | "
              f"ACCEPT_ACK msgs: {stats.sent_by_type.get('AcceptAck', 0):3d} | "
              f"RDMA writes: {stats.sent_by_type.get('RdmaWrite', 0):3d}")
    print()


def figure_4a(protocol: str) -> None:
    cluster = Cluster(num_shards=3, replicas_per_shard=2, protocol=protocol, seed=51)
    key0, key1 = key_for(cluster, "shard-0"), key_for(cluster, "shard-1")
    spanning = TransactionPayload.make(
        reads=[(key0, (0, "")), (key1, (0, ""))], writes=[(key0, 1), (key1, 1)], tiebreak="t"
    )
    coordinator = cluster.members_of("shard-2")[0]
    s2_leader = cluster.leader_of("shard-1")
    s2_follower = cluster.followers_of("shard-1")[0]

    # Delay the coordinator's ACCEPT to s2's follower and its configuration
    # updates, so it finishes processing with a stale view.
    cluster.network.add_extra_delay(coordinator, s2_follower, 60.0)
    cluster.network.add_extra_delay(cluster.config_service.pid, coordinator, 500.0)

    txn = cluster.submit(spanning, coordinator=coordinator)
    cluster.run(max_time=10.0)
    cluster.crash(s2_leader)
    if protocol == "rdma":
        cluster.reconfigure(initiator=s2_follower, suspects=[s2_leader], run=False)
    else:
        cluster.reconfigure("shard-1", initiator=s2_follower, suspects=[s2_leader], run=False)
    cluster.run(max_time=40.0)
    s1_leader = cluster.replica(cluster.leader_of("shard-0"))
    if txn in s1_leader.slot_of:
        s1_leader.retry(s1_leader.slot_of[txn])
    cluster.run(max_time=600.0)

    result, _ = cluster.check(include_invariants=False)
    contradiction = bool(cluster.history.contradictions)
    print(f"  {protocol:16s} contradictory decisions: {contradiction!s:5s} | "
          f"history correct: {result.ok}")


def main() -> None:
    compare_failure_free()
    print("== part 2: the Figure 4a schedule ==")
    for protocol in ["broken-rdma", "message-passing", "rdma"]:
        figure_4a(protocol)
    print("\n  (broken-rdma = RDMA data path + per-shard reconfiguration, the naive combination")
    print("   the paper shows to be unsafe; the fixed protocols survive the same schedule.)")


if __name__ == "__main__":
    main()
