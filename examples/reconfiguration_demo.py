"""Reconfiguration walk-through: failures, probing and state transfer.

Shows the vertical-Paxos-style reconfiguration of Section 3 in action:

1. a follower crash is repaired by drafting in a spare replica;
2. a leader crash is repaired by promoting an initialized survivor;
3. a failed reconfiguration attempt (its new leader dies before activating
   the configuration) is traversed past by the next reconfiguration, which
   finds the data in an older epoch — the scenario where FaRM-style
   single-epoch lookback would get stuck.

Run with:  python examples/reconfiguration_demo.py
"""

from repro import Cluster, TransactionPayload
from repro.core.types import Decision


def show(cluster, shard: str, note: str) -> None:
    config = cluster.current_configuration(shard)
    print(f"  [{note}] {shard}: epoch {config.epoch}, leader {config.leader}, "
          f"members {config.members}")


def payload_for(key: str, version=(0, ""), value=1, tiebreak="t") -> TransactionPayload:
    return TransactionPayload.make(reads=[(key, version)], writes=[(key, value)], tiebreak=tiebreak)


def main() -> None:
    cluster = Cluster(num_shards=2, replicas_per_shard=3, spares_per_shard=6, seed=5)
    shard = "shard-0"

    print("== initial configuration ==")
    show(cluster, shard, "bootstrap")
    first = payload_for("ledger", tiebreak="first")
    print(f"  certify(first write): {cluster.certify(first).value}")

    print("\n== 1. follower crash -> replace with a spare ==")
    crashed = cluster.crash_follower(shard)
    cluster.reconfigure(shard, suspects=[crashed])
    show(cluster, shard, f"after replacing {crashed}")
    print(f"  certification still live: {cluster.certify(payload_for('a', tiebreak='a')).value}")

    print("\n== 2. leader crash -> promote an initialized survivor ==")
    old_leader = cluster.crash_leader(shard)
    cluster.reconfigure(shard, suspects=[old_leader])
    show(cluster, shard, f"after losing leader {old_leader}")
    stale = payload_for("ledger", tiebreak="stale")  # conflicts with `first`
    print(f"  stale re-write of 'ledger' correctly aborts: {cluster.certify(stale).value}")

    print("\n== 3. probing traverses a never-activated epoch ==")
    config = cluster.current_configuration(shard)
    survivor = config.followers[0]
    # Start a reconfiguration that excludes every other member, then crash the
    # designated new leader before it can transfer state.
    others = [m for m in config.members if m != config.leader]
    cluster.reconfigure(shard, initiator=config.leader, suspects=others, run=False)

    def kill_new_leader() -> bool:
        latest = cluster.config_service.last_configuration(shard)
        if latest is not None and latest.epoch == config.epoch + 1:
            cluster.crash(latest.leader)
            return True
        return False

    cluster.scheduler.run_until(kill_new_leader, max_events=100_000)
    cluster.run()
    dead_epoch = cluster.config_service.last_configuration(shard)
    print(f"  epoch {dead_epoch.epoch} was introduced but never activated "
          f"(leader {dead_epoch.leader} died)")

    cluster.reconfigure(shard, initiator=survivor)
    show(cluster, shard, "after traversing past the dead epoch")
    print(f"  history still intact: stale write aborts again -> "
          f"{cluster.certify(payload_for('ledger', tiebreak='stale2')).value}")

    result, violations = cluster.check()
    print(f"\n== specification check: correct={result.ok}, violations={len(violations)} ==")


if __name__ == "__main__":
    main()
