"""Reconfiguration under load: crashes, epoch churn and recovery.

Shows the vertical-Paxos-style reconfiguration of Section 3 through the
scenario engine:

1. ``leader-crash-under-load`` — a leader dies mid-workload; the shard is
   reconfigured past it and coordinator recovery re-drives every stalled
   transaction (no transaction is left undecided);
2. ``rolling-reconfiguration`` — every shard changes epoch in turn while
   the workload keeps running.

Run with:  python examples/reconfiguration_demo.py
"""

from repro import ScenarioRunner, get_scenario


def show_configs(runner) -> None:
    for shard in runner.cluster.shards:
        config = runner.cluster.current_configuration(shard)
        print(f"    {shard}: epoch {config.epoch}, leader {config.leader}, "
              f"members {config.members}")


def run(name: str) -> None:
    spec = get_scenario(name)
    print(f"== {name} ==")
    print(f"  {spec.description}")
    runner = ScenarioRunner(spec)
    result = runner.run()
    print(f"  transactions: {result.committed} committed / {result.aborted} aborted"
          f" / {result.undecided} undecided")
    print("  fault schedule as executed:")
    for note in result.faults_executed:
        print(f"    {note}")
    print("  final configurations:")
    show_configs(runner)
    print(f"  history correct: {result.safety_ok}")
    print()


def main() -> None:
    run("leader-crash-under-load")
    run("rolling-reconfiguration")


if __name__ == "__main__":
    main()
