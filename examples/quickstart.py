"""Quickstart: run scenarios against the reconfigurable TCS.

Everything is driven through the scenario engine (`repro.scenarios`): a
spec describes the cluster, workload and fault schedule; the runner builds
the system, executes it deterministically and returns structured metrics.

Run with:  python examples/quickstart.py
"""

from repro import FaultStep, ScenarioSpec, WorkloadSpec, get_scenario, run_scenario


def main() -> None:
    print("== a library scenario: failure-free steady state ==")
    result = run_scenario(get_scenario("steady-state"))
    print(result.render())

    print("\n== an ad-hoc scenario: crash the leader mid-run, reconfigure, recover ==")
    spec = ScenarioSpec(
        name="quickstart-leader-crash",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=2,
        seed=1,
        workload=WorkloadSpec(kind="uniform", txns=60, batch=6, num_keys=64),
        faults=(
            FaultStep(at=30.5, action="crash-leader", shard="shard-0"),
            FaultStep(at=31.5, action="reconfigure", shard="shard-0"),
            FaultStep(at=80.5, action="retry-stalled"),
        ),
    )
    result = run_scenario(spec)
    print(result.render())

    print("\n== every scenario validates its history against the TCS spec ==")
    print(f"  safety verdict: {'SAFE' if result.safety_ok else 'UNSAFE'}; "
          f"all {result.txns_submitted} transactions decided: {result.undecided == 0}")


if __name__ == "__main__":
    main()
